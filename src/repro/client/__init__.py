"""Client-side substrate: cache, query workload, and the client machine.

* :class:`~repro.client.cache.ClientCache` -- the LRU page cache with
  invalidation + autoprefetch of [Acharya et al.], extended with
  validity-interval tracking (for the versioned cache of §4.1) and an
  optional old-version partition (multiversion caching, §4.2).
* :class:`~repro.client.query.QueryGenerator` -- Zipf read patterns over
  the client's ``ReadRange`` with think times.
* :class:`~repro.client.machine.BroadcastClient` -- the process that runs
  queries through an attached :class:`~repro.core.base.Scheme`, retries
  aborted attempts, and feeds the metrics registry.
* :class:`~repro.client.disconnect.DisconnectionModel` -- intermittent
  connectivity injection (§5.2.2).
"""

from repro.client.cache import CacheEntry, ClientCache
from repro.client.disconnect import DisconnectionModel, NeverDisconnected, RandomDisconnections
from repro.client.machine import BroadcastClient, ClientRuntime
from repro.client.query import Query, QueryGenerator

__all__ = [
    "BroadcastClient",
    "CacheEntry",
    "ClientCache",
    "ClientRuntime",
    "DisconnectionModel",
    "NeverDisconnected",
    "Query",
    "QueryGenerator",
    "RandomDisconnections",
]
