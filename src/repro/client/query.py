"""Client query workload generation (Section 5.1's client column).

A query is a fixed set of distinct items drawn Zipf-skewed from the
client's ``ReadRange`` prefix of the broadcast.  The read order is the
draw order by default; with the "transaction optimization" of Section 2.2
enabled, reads are reordered by broadcast position to minimize the span.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.config import ClientParameters
from repro.stats.zipf import ZipfGenerator


@dataclass(frozen=True)
class Query:
    """One read-only transaction's plan: the items, in access order."""

    query_id: int
    items: Sequence[int]

    @property
    def size(self) -> int:
        return len(self.items)


class QueryGenerator:
    """Draws queries according to the client parameters."""

    def __init__(
        self,
        params: ClientParameters,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.params = params
        self._rng = rng if rng is not None else random.Random()
        self._zipf = ZipfGenerator(
            n=params.read_range, theta=params.theta, rng=self._rng
        )
        self._next_id = 0

    def next_query(self) -> Query:
        """Draw the next query's item set."""
        items: List[int] = self._zipf.sample_distinct(self.params.ops_per_query)
        if self.params.sort_reads:
            items.sort()
        query = Query(query_id=self._next_id, items=tuple(items))
        self._next_id += 1
        return query

    def think_time(self) -> float:
        """Idle slots before the next read (exponential around the mean,
        so clients do not lock-step with the broadcast)."""
        mean = self.params.think_time
        if mean <= 0:
            return 0.0
        return self._rng.expovariate(1.0 / mean)
