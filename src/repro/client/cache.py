"""The client cache: LRU with invalidation + autoprefetch, and versions.

Section 4 of the paper builds three cache behaviours on one substrate:

* the plain cache -- entries are invalidated by the per-cycle report and
  *autoprefetched*: the stale value stays in place (still answering
  old-enough version queries) until the new value flies by, at which
  point it is replaced;
* the *versioned* cache (§4.1) -- every entry remembers which cycles its
  value was current for, so a marked-abort query can keep reading values
  that were current at its deadline;
* the *multiversion* cache (§4.2) -- updated entries are demoted into a
  separate old-version partition instead of being replaced, with the two
  partitions evicting independently.

Validity is tracked as an interval ``[version, valid_to]`` of broadcast
cycles (``valid_to is None`` meaning "still current"), which is exactly
the information the correctness proofs of Theorems 4 and 5 quantify over.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.broadcast.program import BroadcastProgram, ItemRecord
from repro.graph.sgraph import TxnId

if TYPE_CHECKING:  # pragma: no cover
    from repro.broadcast.channel import BroadcastChannel


@dataclass
class CacheEntry:
    """One cached value with its validity interval and arrival time."""

    item: int
    value: int
    #: Broadcast cycle at whose beginning the value became current.
    version: int
    #: Last cycle the value was current for; ``None`` = still current.
    valid_to: Optional[int]
    writer: Optional[TxnId]
    #: Simulation time from which the value is usable (autoprefetched
    #: values only exist once their bucket has flown by).
    available_at: float

    def covers(self, cycle: int) -> bool:
        """Was this value the current one at ``cycle``?"""
        if cycle < self.version:
            return False
        return self.valid_to is None or cycle <= self.valid_to

    @property
    def is_current(self) -> bool:
        return self.valid_to is None


def replace_entry(entry: CacheEntry) -> CacheEntry:
    """An independent copy of one entry (checkpoints must not alias)."""
    return replace(entry)


@dataclass
class _PendingRefresh:
    """An autoprefetch in flight: the new value and when it lands."""

    record: ItemRecord
    at_time: float


class ClientCache:
    """LRU cache over items with autoprefetch and optional old versions.

    Parameters
    ----------
    capacity:
        Total entries (the paper's ``CacheSize``).
    old_capacity:
        Entries reserved for demoted old versions (multiversion caching);
        the current partition holds ``capacity - old_capacity``.  With 0,
        updated values are *replaced* on autoprefetch (the plain/versioned
        cache of §4.1).
    """

    def __init__(self, capacity: int, old_capacity: int = 0) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0 <= old_capacity < capacity:
            raise ValueError(
                f"old_capacity must be in [0, capacity), got {old_capacity}"
            )
        self.capacity = capacity
        self.old_capacity = old_capacity
        #: Degradation controls (repro.resilience): with autoprefetch off
        #: the report still invalidates entries but no refresh is armed;
        #: bypassed, every lookup misses and every insert is dropped.
        self.autoprefetch_enabled = True
        self.bypass = False
        #: Current values, LRU order (least recent first).
        self._current: "OrderedDict[int, CacheEntry]" = OrderedDict()
        #: Old versions, LRU order, keyed by (item, version).
        self._old: "OrderedDict[Tuple[int, int], CacheEntry]" = OrderedDict()
        self._pending: Dict[int, _PendingRefresh] = {}
        self.hits = 0
        self.misses = 0

    @property
    def multiversion(self) -> bool:
        return self.old_capacity > 0

    @property
    def current_capacity(self) -> int:
        return self.capacity - self.old_capacity

    def __len__(self) -> int:
        return len(self._current) + len(self._old)

    # -- report handling (cycle start) --------------------------------------

    def handle_cycle_start(
        self, program: BroadcastProgram, channel: "BroadcastChannel"
    ) -> None:
        """Apply the invalidation report and arm autoprefetches.

        Must be called at the cycle-start instant, before any reads of the
        new cycle.  Matured autoprefetches from the previous cycle are
        materialized first.

        With autoprefetch disabled (degradation ladder), the report still
        invalidates entries -- exactly like a w-window catch-up report --
        but nothing is armed: the next demand read refreshes off the air.
        """
        if not self.autoprefetch_enabled:
            self._pending.clear()
            self.apply_missed_report(program.control.invalidation)
            return
        self._materialize(channel.env.now)
        report = program.control.invalidation
        for item in report.updated_items:
            entry = self._current.get(item)
            if entry is not None and entry.is_current:
                # The value stopped being current at the end of the
                # previous cycle: close its validity interval.
                entry.valid_to = report.cycle - 1
                if self.multiversion:
                    self._demote(entry)
                    del self._current[item]
            elif entry is None and item not in self._pending:
                continue  # nothing held for this item
            # Autoprefetch: grab the new value when its bucket flies by.
            # A pending refresh from an earlier update is *re-armed* with
            # this cycle's record -- its old record is superseded and must
            # never materialize as current (it would serve a stale value).
            try:
                slot = program.slots_of(item)[0]
            except KeyError:  # pragma: no cover - item left the broadcast
                self._pending.pop(item, None)
                continue
            self._pending[item] = _PendingRefresh(
                record=program.record_of(item),
                at_time=channel.prefetch_time(slot),
            )

    def apply_missed_report(self, report) -> None:
        """Catch up on an invalidation report the client did not hear live
        (resynchronization via the w-window retransmission, §7).

        Closes the validity interval of affected current entries; no
        autoprefetch is armed -- that cycle's broadcast is gone -- so the
        next demand read refreshes the entry off the air.
        """
        for item in report.updated_items:
            # Any in-flight autoprefetch for this item was armed before the
            # missed cycle, so its record is superseded by this report and
            # must never materialize as current.
            self._pending.pop(item, None)
            entry = self._current.get(item)
            if entry is None or not entry.is_current:
                continue
            entry.valid_to = report.cycle - 1
            if self.multiversion:
                self._demote(entry)
                del self._current[item]

    def clear(self) -> None:
        """Drop everything -- the client lost track of updates and cannot
        trust any cached value (reconnect without a covering window)."""
        self._current.clear()
        self._old.clear()
        self._pending.clear()

    def _materialize(self, now: float) -> None:
        """Apply autoprefetches whose bucket has already been delivered."""
        for item in list(self._pending):
            pending = self._pending[item]
            if pending.at_time <= now:
                del self._pending[item]
                self._install_current(pending.record, pending.at_time)

    def _install_current(self, record: ItemRecord, available_at: float) -> None:
        entry = CacheEntry(
            item=record.item,
            value=record.value,
            version=record.version,
            valid_to=None,
            writer=record.writer,
            available_at=available_at,
        )
        stale = self._current.get(record.item)
        if stale is not None and self.multiversion and not stale.is_current:
            self._demote(stale)
        self._current[record.item] = entry
        self._current.move_to_end(record.item)
        self._evict_current()

    def _demote(self, entry: CacheEntry) -> None:
        """Move a superseded value into the old-version partition."""
        if entry.valid_to is None:  # pragma: no cover - defensive
            raise ValueError("Cannot demote a still-current entry")
        self._old[(entry.item, entry.version)] = entry
        self._old.move_to_end((entry.item, entry.version))
        while len(self._old) > self.old_capacity:
            self._old.popitem(last=False)

    def _evict_current(self) -> None:
        while len(self._current) > self.current_capacity:
            _, evicted = self._current.popitem(last=False)
            self._pending.pop(evicted.item, None)

    # -- lookups -------------------------------------------------------------

    def get_current(self, item: int, now: float) -> Optional[CacheEntry]:
        """The current value of ``item`` if cached and usable at ``now``."""
        if self.bypass:
            self.misses += 1
            return None
        self._materialize(now)
        entry = self._current.get(item)
        if entry is None or not entry.is_current or entry.available_at > now:
            self.misses += 1
            return None
        self._current.move_to_end(item)
        self.hits += 1
        return entry

    def get_covering(self, item: int, cycle: int, now: float) -> Optional[CacheEntry]:
        """A cached value of ``item`` that was current at ``cycle``.

        Searches the current slot (including an invalidated entry whose
        autoprefetch has not landed yet -- the paper's "marked for
        autoprefetching" state) and the old-version partition.
        """
        if self.bypass:
            self.misses += 1
            return None
        self._materialize(now)
        entry = self._current.get(item)
        if entry is not None and entry.available_at <= now and entry.covers(cycle):
            self._current.move_to_end(item)
            self.hits += 1
            return entry
        for key in reversed(self._old):
            old = self._old[key]
            if old.item == item and old.available_at <= now and old.covers(cycle):
                self._old.move_to_end(key)
                self.hits += 1
                return old
        self.misses += 1
        return None

    # -- insertion on demand-reads --------------------------------------------

    def insert_current(self, record: ItemRecord, now: float) -> None:
        """Cache a current value just read off the air."""
        if self.bypass:
            return
        self._pending.pop(record.item, None)
        self._install_current(record, available_at=now)

    def insert_old(self, record: ItemRecord, valid_to: int, now: float) -> None:
        """Cache an old version (multiversion partition only)."""
        if not self.multiversion or self.bypass:
            return
        entry = CacheEntry(
            item=record.item,
            value=record.value,
            version=record.version,
            valid_to=valid_to,
            writer=record.writer,
            available_at=now,
        )
        self._demote(entry)

    # -- checkpointing (see repro.resilience) ---------------------------------

    def export_entries(self) -> Tuple[List[CacheEntry], List[CacheEntry]]:
        """Copies of the (current, old) partitions, LRU order preserved.

        In-flight autoprefetches are deliberately excluded: their records
        only become safe once their bucket has flown by, and a restart
        happens cycles later when that broadcast is long gone.
        """
        current = [replace_entry(e) for e in self._current.values()]
        old = [replace_entry(e) for e in self._old.values()]
        return current, old

    def restore_entries(
        self, current: List[CacheEntry], old: List[CacheEntry]
    ) -> None:
        """Reload checkpointed entries (crash-restart recovery).

        Replaces the whole contents; the caller then replays the missed
        invalidation reports (:meth:`apply_missed_report`) to close the
        validity of anything updated during the outage -- the same
        safety argument as the live resynchronization path.
        """
        self.clear()
        for entry in old:
            copied = replace_entry(entry)
            self._old[(copied.item, copied.version)] = copied
        while len(self._old) > self.old_capacity:
            self._old.popitem(last=False)
        for entry in current:
            copied = replace_entry(entry)
            self._current[copied.item] = copied
        self._evict_current()

    # -- introspection -----------------------------------------------------------

    def contents(self) -> List[CacheEntry]:
        return list(self._current.values()) + list(self._old.values())

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
