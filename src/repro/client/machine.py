"""The broadcast client: runs queries through a processing scheme.

One :class:`BroadcastClient` owns one scheme instance, one cache, and one
query generator, and executes queries sequentially: draw a query, attempt
it, retry on abort (up to ``max_attempts``), move on.  All consistency
logic lives in the scheme; the machine provides the plumbing -- think
times, read bookkeeping, retries, metrics -- and the *scalability
property*: the only inputs a client ever consumes are the broadcast
channel's cycle-start notifications and bucket deliveries.
"""

from __future__ import annotations

import random
from typing import Generator, Optional

from repro.broadcast.channel import BroadcastChannel
from repro.broadcast.program import BroadcastProgram
from repro.client.cache import ClientCache
from repro.client.disconnect import DisconnectionModel, NeverDisconnected
from repro.client.query import Query, QueryGenerator
from repro.config import ClientParameters
from repro.core.base import ReadAborted, ReadContext, Scheme
from repro.core.transaction import (
    AbortReason,
    ReadOnlyTransaction,
    TransactionStatus,
)
from repro.obs.trace import (
    EV_CACHE_FLUSH,
    EV_CLIENT_RESYNC,
    EV_CONTROL_DECODE,
    EV_QUERY_ABORT,
    EV_QUERY_ACCEPT,
    EV_QUERY_BEGIN,
    EV_QUERY_READ,
    Tracer,
    gate,
)
from repro.sim.engine import Environment
from repro.stats import names as metric_names
from repro.stats.metrics import MetricsRegistry


class ClientRuntime:
    """The narrow surface a scheme can touch (no server handle exists)."""

    def __init__(
        self,
        env: Environment,
        channel: BroadcastChannel,
        cache: Optional[ClientCache],
        metrics: MetricsRegistry,
        params: ClientParameters,
    ) -> None:
        self.env = env
        self.channel = channel
        self.cache = cache
        self.metrics = metrics
        self.params = params


class BroadcastClient:
    """One client process: queries, retries, metrics."""

    def __init__(
        self,
        env: Environment,
        channel: BroadcastChannel,
        scheme: Scheme,
        params: ClientParameters,
        metrics: Optional[MetricsRegistry] = None,
        rng: Optional[random.Random] = None,
        disconnect: Optional[DisconnectionModel] = None,
        client_id: int = 0,
        warmup_cycles: int = 0,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.env = env
        self.channel = channel
        self.scheme = scheme
        self.params = params
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.rng = rng if rng is not None else random.Random()
        self.disconnect = disconnect if disconnect is not None else NeverDisconnected()
        self.client_id = client_id
        self.warmup_cycles = warmup_cycles
        #: Gated tracer references: ``None`` unless the level covers the
        #: event class, so the disabled path costs one ``is None`` test.
        self._trace_q = gate(tracer, "queries")
        self._trace_r = gate(tracer, "reads")

        self.cache: Optional[ClientCache] = None
        if scheme.use_cache and params.cache_size > 0:
            old_capacity = 0
            if scheme.requirements().needs_versions_on_items:
                old_capacity = int(params.cache_size * params.old_version_fraction)
            self.cache = ClientCache(params.cache_size, old_capacity=old_capacity)

        self.generator = QueryGenerator(params, rng=self.rng)
        self.listening = True
        self.last_heard_cycle = 0
        self.missed_cycles = 0
        #: Was the current deaf spell caused by the fault layer (lost or
        #: corrupted control info) rather than the disconnection model?
        self._fault_desynced = False
        #: The attempt currently executing, for fault-abort attribution.
        self._current_txn: Optional[ReadOnlyTransaction] = None
        self._txn_counter = 0
        #: Every finished attempt, in completion order (the correctness
        #: oracle in the test suite replays these against the database).
        self.completed: list = []

        runtime = ClientRuntime(env, channel, self.cache, self.metrics, params)
        scheme.attach(ReadContext(runtime))
        channel.subscribe(self)
        self.process = env.process(self.run())

    # -- channel listener -----------------------------------------------------

    def on_cycle_start(self, program: BroadcastProgram) -> None:
        cycle = program.cycle
        if not self.disconnect.is_listening(cycle):
            self._miss_cycle(cycle, fault=False)
            return
        if not self.listening:
            self._resynchronize(program)
            if self._fault_desynced:
                self.metrics.count(metric_names.FAULT_RECOVERIES)
                self._fault_desynced = False
        self.listening = True
        self.last_heard_cycle = cycle
        if self._trace_r is not None:
            control = program.control
            self._trace_r.emit(
                EV_CONTROL_DECODE,
                client=self.client_id,
                cycle=cycle,
                invalidated=len(control.invalidation.updated_items),
                has_graph_diff=control.graph_diff is not None,
            )
        if self.cache is not None:
            self.cache.handle_cycle_start(program, self.channel)
        self.scheme.on_cycle_start(program)

    def on_interim_report(self, report) -> None:
        """Forward a mid-cycle report to the scheme (if listening)."""
        if self.listening:
            self.scheme.on_interim_report(report)

    def on_signal_lost(self, cycle: int) -> None:
        """The fault layer dropped this cycle's control information.

        Without the report nothing heard this cycle can be validated, so
        the cycle counts as missed -- the same conservative degrade as a
        disconnection, which reuses the resynchronization path (and its
        safety argument) on the next heard cycle.
        """
        self._miss_cycle(cycle, fault=True)

    def _miss_cycle(self, cycle: int, fault: bool) -> None:
        if self.listening and not fault:
            self.metrics.count(metric_names.CLIENT_DISCONNECTIONS)
        self.listening = False
        self.missed_cycles += 1
        if fault:
            self._fault_desynced = True
        txn = self._current_txn
        was_active = txn is not None and txn.status is TransactionStatus.ACTIVE
        self.scheme.on_missed_cycle(cycle)
        if (
            fault
            and was_active
            and txn is not None
            and txn.status is TransactionStatus.ABORTED
        ):
            self.metrics.count(metric_names.FAULT_FORCED_ABORTS)
            # The scheme recorded *what* killed the query (a missed cycle);
            # record *why* the cycle was missed so the chain bottoms out at
            # the injected fault.
            txn.cause_chain.append({"event": "fault_forced", "cycle": cycle})

    def _resynchronize(self, program: BroadcastProgram) -> None:
        """Reconnect after missed cycles: the cache cannot be trusted.

        If the control segment retransmits reports covering every missed
        cycle (the w-window extension, §7), replay them in order; else
        drop the cache entirely -- stale entries would otherwise serve
        values the client wrongly believes current.
        """
        if self.cache is None:
            return
        self.metrics.count(metric_names.CLIENT_RESYNCS)
        if self._trace_q is not None:
            self._trace_q.emit(
                EV_CLIENT_RESYNC,
                client=self.client_id,
                cycle=program.cycle,
                last_heard=self.last_heard_cycle,
            )
        control = program.control
        if control.missed_window_ok(self.last_heard_cycle):
            for missed in range(self.last_heard_cycle + 1, program.cycle):
                report = control.report_covering(missed)
                if report is not None:
                    self.cache.apply_missed_report(report)
        else:
            self.cache.clear()
            self.metrics.count(metric_names.CLIENT_CACHE_DROPS)
            if self._trace_q is not None:
                self._trace_q.emit(
                    EV_CACHE_FLUSH,
                    client=self.client_id,
                    cycle=program.cycle,
                    reason="resync_window_exceeded",
                )

    # -- the client loop ---------------------------------------------------------

    def run(self) -> Generator:
        if not self.channel.on_air:
            yield self.channel.cycle_started()
        while True:
            query = self.generator.next_query()
            yield from self._run_query(query)

    def _run_query(self, query: Query) -> Generator:
        attempts = 0
        committed = False
        measured = self.channel.current_cycle > self.warmup_cycles
        while attempts < self.params.max_attempts and not committed:
            attempts += 1
            txn = self._new_transaction(query)
            if self._trace_q is not None:
                self._trace_q.emit(
                    EV_QUERY_BEGIN,
                    client=self.client_id,
                    txn=txn.txn_id,
                    cycle=txn.start_cycle,
                    items=list(txn.items),
                    attempt=attempts,
                    measured=measured,
                )
            yield from self._attempt(txn)
            self.completed.append(txn)
            committed = txn.status is TransactionStatus.COMMITTED
            if self._trace_q is not None:
                self._emit_outcome(txn, attempts, measured)
            if measured:
                self._record_attempt(txn)
        if measured:
            self.metrics.record_outcome(metric_names.QUERY_COMPLETED, committed)
            self.metrics.observe(metric_names.QUERY_ATTEMPTS, attempts)
            if self.cache is not None:
                self.metrics.observe(
                    metric_names.CACHE_HIT_RATIO, self.cache.hit_ratio
                )

    def _emit_outcome(
        self, txn: ReadOnlyTransaction, attempt: int, measured: bool
    ) -> None:
        """Emit the accept/abort event for one finished attempt.

        The ``measured`` flag is the same one gating the metrics path, so
        ``TraceAnalyzer.abort_breakdown(measured_only=True)`` agrees with
        the ``abort.*`` counters exactly.
        """
        tracer = self._trace_q
        assert tracer is not None
        if txn.status is TransactionStatus.COMMITTED:
            tracer.emit(
                EV_QUERY_ACCEPT,
                client=self.client_id,
                txn=txn.txn_id,
                cycle=txn.end_cycle,
                attempt=attempt,
                measured=measured,
                span=txn.span,
            )
        else:
            reason = txn.abort_reason or AbortReason.INVALIDATED
            tracer.emit(
                EV_QUERY_ABORT,
                client=self.client_id,
                txn=txn.txn_id,
                cycle=txn.end_cycle,
                attempt=attempt,
                measured=measured,
                reason=reason.value,
                cause=list(txn.cause_chain),
            )

    def _new_transaction(self, query: Query) -> ReadOnlyTransaction:
        self._txn_counter += 1
        return ReadOnlyTransaction(
            txn_id=f"c{self.client_id}.q{query.query_id}.a{self._txn_counter}",
            items=list(query.items),
            start_time=self.env.now,
            start_cycle=self.channel.current_cycle,
        )

    def _attempt(self, txn: ReadOnlyTransaction) -> Generator:
        self._current_txn = txn
        self.scheme.begin(txn)
        try:
            for item in txn.items:
                think = self.generator.think_time()
                if think > 0:
                    yield self.env.timeout(think)
                # A disconnected client receives nothing: block until the
                # first cycle start it actually hears (its cache is also
                # unsafe until the resynchronization there has run).
                while not self.listening:
                    yield self.channel.cycle_started()
                self._raise_if_doomed(txn)
                result = yield from self.scheme.read(txn, item)
                self._raise_if_doomed(txn)
                txn.record_read(result)
                if self._trace_r is not None:
                    self._trace_r.emit(
                        EV_QUERY_READ,
                        client=self.client_id,
                        txn=txn.txn_id,
                        item=result.item,
                        version=result.version,
                        cycle=result.read_cycle,
                        from_cache=result.from_cache,
                    )
            self._raise_if_doomed(txn)
            self.scheme.finish(txn)
            txn.commit(self.env.now, self.channel.current_cycle)
        except ReadAborted as aborted:
            if txn.status is not TransactionStatus.ABORTED:
                txn.abort(
                    aborted.reason,
                    self.env.now,
                    self.channel.current_cycle,
                    cause=aborted.cause,
                )
        finally:
            self.scheme.end(txn)
            self._current_txn = None
        return txn

    def _raise_if_doomed(self, txn: ReadOnlyTransaction) -> None:
        """An invalidation report may have aborted the transaction while
        it was thinking or waiting on the channel."""
        if txn.status is TransactionStatus.ABORTED:
            raise ReadAborted(
                txn.abort_reason or AbortReason.INVALIDATED,
                f"{txn.txn_id} was aborted between operations",
            )

    # -- metrics ---------------------------------------------------------------------

    def _record_attempt(self, txn: ReadOnlyTransaction) -> None:
        committed = txn.status is TransactionStatus.COMMITTED
        self.metrics.record_outcome(metric_names.ATTEMPT_COMMITTED, committed)
        if committed:
            self.metrics.observe(
                metric_names.TXN_LATENCY_CYCLES, txn.latency_cycles
            )
            self.metrics.observe(
                metric_names.TXN_LATENCY_SLOTS,
                (txn.end_time or 0.0) - txn.start_time,
            )
            self.metrics.observe(metric_names.TXN_SPAN, txn.span)
            cache_reads = sum(1 for r in txn.reads.values() if r.from_cache)
            self.metrics.observe(metric_names.TXN_CACHE_READS, cache_reads)
            state_cycle = self.scheme.state_cycle(txn)
            if state_cycle is not None and txn.end_cycle is not None:
                # Currency (Table 1): how far behind the commit-time state
                # the transaction's consistent view is.
                self.metrics.observe(
                    metric_names.TXN_CURRENCY_LAG, txn.end_cycle - state_cycle
                )
        else:
            reason = txn.abort_reason or AbortReason.INVALIDATED
            self.metrics.count(metric_names.abort_metric(reason.value))
