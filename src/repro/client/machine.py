"""The broadcast client: runs queries through a processing scheme.

One :class:`BroadcastClient` owns one scheme instance, one cache, and one
query generator, and executes queries sequentially: draw a query, attempt
it, retry on abort (up to ``max_attempts``), move on.  All consistency
logic lives in the scheme; the machine provides the plumbing -- think
times, read bookkeeping, retries, metrics -- and the *scalability
property*: the only inputs a client ever consumes are the broadcast
channel's cycle-start notifications and bucket deliveries.
"""

from __future__ import annotations

import random
from typing import Generator, Optional

from repro.broadcast.channel import BroadcastChannel
from repro.broadcast.program import BroadcastProgram
from repro.client.cache import ClientCache
from repro.client.disconnect import DisconnectionModel, NeverDisconnected
from repro.client.query import Query, QueryGenerator
from repro.config import ClientParameters
from repro.core.base import ReadAborted, ReadContext, Scheme
from repro.core.transaction import (
    AbortReason,
    ReadOnlyTransaction,
    TransactionStatus,
)
from repro.sim.engine import Environment
from repro.stats import metrics as metric_names
from repro.stats.metrics import MetricsRegistry


class ClientRuntime:
    """The narrow surface a scheme can touch (no server handle exists)."""

    def __init__(
        self,
        env: Environment,
        channel: BroadcastChannel,
        cache: Optional[ClientCache],
        metrics: MetricsRegistry,
        params: ClientParameters,
    ) -> None:
        self.env = env
        self.channel = channel
        self.cache = cache
        self.metrics = metrics
        self.params = params


class BroadcastClient:
    """One client process: queries, retries, metrics."""

    def __init__(
        self,
        env: Environment,
        channel: BroadcastChannel,
        scheme: Scheme,
        params: ClientParameters,
        metrics: Optional[MetricsRegistry] = None,
        rng: Optional[random.Random] = None,
        disconnect: Optional[DisconnectionModel] = None,
        client_id: int = 0,
        warmup_cycles: int = 0,
    ) -> None:
        self.env = env
        self.channel = channel
        self.scheme = scheme
        self.params = params
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.rng = rng if rng is not None else random.Random()
        self.disconnect = disconnect if disconnect is not None else NeverDisconnected()
        self.client_id = client_id
        self.warmup_cycles = warmup_cycles

        self.cache: Optional[ClientCache] = None
        if scheme.use_cache and params.cache_size > 0:
            old_capacity = 0
            if scheme.requirements().needs_versions_on_items:
                old_capacity = int(params.cache_size * params.old_version_fraction)
            self.cache = ClientCache(params.cache_size, old_capacity=old_capacity)

        self.generator = QueryGenerator(params, rng=self.rng)
        self.listening = True
        self.last_heard_cycle = 0
        self.missed_cycles = 0
        #: Was the current deaf spell caused by the fault layer (lost or
        #: corrupted control info) rather than the disconnection model?
        self._fault_desynced = False
        #: The attempt currently executing, for fault-abort attribution.
        self._current_txn: Optional[ReadOnlyTransaction] = None
        self._txn_counter = 0
        #: Every finished attempt, in completion order (the correctness
        #: oracle in the test suite replays these against the database).
        self.completed: list = []

        runtime = ClientRuntime(env, channel, self.cache, self.metrics, params)
        scheme.attach(ReadContext(runtime))
        channel.subscribe(self)
        self.process = env.process(self.run())

    # -- channel listener -----------------------------------------------------

    def on_cycle_start(self, program: BroadcastProgram) -> None:
        cycle = program.cycle
        if not self.disconnect.is_listening(cycle):
            self._miss_cycle(cycle, fault=False)
            return
        if not self.listening:
            self._resynchronize(program)
            if self._fault_desynced:
                self.metrics.count(metric_names.FAULT_RECOVERIES)
                self._fault_desynced = False
        self.listening = True
        self.last_heard_cycle = cycle
        if self.cache is not None:
            self.cache.handle_cycle_start(program, self.channel)
        self.scheme.on_cycle_start(program)

    def on_interim_report(self, report) -> None:
        """Forward a mid-cycle report to the scheme (if listening)."""
        if self.listening:
            self.scheme.on_interim_report(report)

    def on_signal_lost(self, cycle: int) -> None:
        """The fault layer dropped this cycle's control information.

        Without the report nothing heard this cycle can be validated, so
        the cycle counts as missed -- the same conservative degrade as a
        disconnection, which reuses the resynchronization path (and its
        safety argument) on the next heard cycle.
        """
        self._miss_cycle(cycle, fault=True)

    def _miss_cycle(self, cycle: int, fault: bool) -> None:
        if self.listening and not fault:
            self.metrics.count("client.disconnections")
        self.listening = False
        self.missed_cycles += 1
        if fault:
            self._fault_desynced = True
        txn = self._current_txn
        was_active = txn is not None and txn.status is TransactionStatus.ACTIVE
        self.scheme.on_missed_cycle(cycle)
        if (
            fault
            and was_active
            and txn is not None
            and txn.status is TransactionStatus.ABORTED
        ):
            self.metrics.count(metric_names.FAULT_FORCED_ABORTS)

    def _resynchronize(self, program: BroadcastProgram) -> None:
        """Reconnect after missed cycles: the cache cannot be trusted.

        If the control segment retransmits reports covering every missed
        cycle (the w-window extension, §7), replay them in order; else
        drop the cache entirely -- stale entries would otherwise serve
        values the client wrongly believes current.
        """
        if self.cache is None:
            return
        self.metrics.count("client.resyncs")
        control = program.control
        if control.missed_window_ok(self.last_heard_cycle):
            for missed in range(self.last_heard_cycle + 1, program.cycle):
                report = control.report_covering(missed)
                if report is not None:
                    self.cache.apply_missed_report(report)
        else:
            self.cache.clear()
            self.metrics.count("client.cache_drops")

    # -- the client loop ---------------------------------------------------------

    def run(self) -> Generator:
        if not self.channel.on_air:
            yield self.channel.cycle_started()
        while True:
            query = self.generator.next_query()
            yield from self._run_query(query)

    def _run_query(self, query: Query) -> Generator:
        attempts = 0
        committed = False
        measured = self.channel.current_cycle > self.warmup_cycles
        while attempts < self.params.max_attempts and not committed:
            attempts += 1
            txn = self._new_transaction(query)
            yield from self._attempt(txn)
            self.completed.append(txn)
            committed = txn.status is TransactionStatus.COMMITTED
            if measured:
                self._record_attempt(txn)
        if measured:
            self.metrics.record_outcome("query.completed", committed)
            self.metrics.observe("query.attempts", attempts)
            if self.cache is not None:
                self.metrics.observe("cache.hit_ratio", self.cache.hit_ratio)

    def _new_transaction(self, query: Query) -> ReadOnlyTransaction:
        self._txn_counter += 1
        return ReadOnlyTransaction(
            txn_id=f"c{self.client_id}.q{query.query_id}.a{self._txn_counter}",
            items=list(query.items),
            start_time=self.env.now,
            start_cycle=self.channel.current_cycle,
        )

    def _attempt(self, txn: ReadOnlyTransaction) -> Generator:
        self._current_txn = txn
        self.scheme.begin(txn)
        try:
            for item in txn.items:
                think = self.generator.think_time()
                if think > 0:
                    yield self.env.timeout(think)
                # A disconnected client receives nothing: block until the
                # first cycle start it actually hears (its cache is also
                # unsafe until the resynchronization there has run).
                while not self.listening:
                    yield self.channel.cycle_started()
                self._raise_if_doomed(txn)
                result = yield from self.scheme.read(txn, item)
                self._raise_if_doomed(txn)
                txn.record_read(result)
            self._raise_if_doomed(txn)
            self.scheme.finish(txn)
            txn.commit(self.env.now, self.channel.current_cycle)
        except ReadAborted as aborted:
            if txn.status is not TransactionStatus.ABORTED:
                txn.abort(aborted.reason, self.env.now, self.channel.current_cycle)
        finally:
            self.scheme.end(txn)
            self._current_txn = None
        return txn

    def _raise_if_doomed(self, txn: ReadOnlyTransaction) -> None:
        """An invalidation report may have aborted the transaction while
        it was thinking or waiting on the channel."""
        if txn.status is TransactionStatus.ABORTED:
            raise ReadAborted(
                txn.abort_reason or AbortReason.INVALIDATED,
                f"{txn.txn_id} was aborted between operations",
            )

    # -- metrics ---------------------------------------------------------------------

    def _record_attempt(self, txn: ReadOnlyTransaction) -> None:
        committed = txn.status is TransactionStatus.COMMITTED
        self.metrics.record_outcome("attempt.committed", committed)
        if committed:
            self.metrics.observe("txn.latency_cycles", txn.latency_cycles)
            self.metrics.observe(
                "txn.latency_slots", (txn.end_time or 0.0) - txn.start_time
            )
            self.metrics.observe("txn.span", txn.span)
            cache_reads = sum(1 for r in txn.reads.values() if r.from_cache)
            self.metrics.observe("txn.cache_reads", cache_reads)
            state_cycle = self.scheme.state_cycle(txn)
            if state_cycle is not None and txn.end_cycle is not None:
                # Currency (Table 1): how far behind the commit-time state
                # the transaction's consistent view is.
                self.metrics.observe(
                    "txn.currency_lag", txn.end_cycle - state_cycle
                )
        else:
            reason = txn.abort_reason or AbortReason.INVALIDATED
            self.metrics.count(f"abort.{reason.value}")
