"""The broadcast client: runs queries through a processing scheme.

One :class:`BroadcastClient` owns one scheme instance, one cache, and one
query generator, and executes queries sequentially: draw a query, attempt
it, retry on abort (up to ``max_attempts``), move on.  All consistency
logic lives in the scheme; the machine provides the plumbing -- think
times, read bookkeeping, retries, metrics -- and the *scalability
property*: the only inputs a client ever consumes are the broadcast
channel's cycle-start notifications and bucket deliveries.

With a :class:`~repro.resilience.ClientResilience` bundle attached, the
machine additionally routes every retry through the bundle's policy
(waiting out the decided number of heard cycles), enforces query
deadlines, feeds the starvation watchdog, takes periodic checkpoints,
injects crash-restart outages (wiping cache + scheme control state,
then choosing incremental catch-up vs flush-and-rejoin on restart), and
walks the degradation ladder as the channel sickens and heals.  Without
a bundle (the default) every one of those paths is behind a single
``is None`` test, so the seed behaviour -- and its benchmarks -- are
untouched.
"""

from __future__ import annotations

import random
from typing import Generator, Optional

from repro.broadcast.channel import BroadcastChannel
from repro.broadcast.program import BroadcastProgram
from repro.client.cache import ClientCache
from repro.client.disconnect import DisconnectionModel, NeverDisconnected
from repro.client.query import Query, QueryGenerator
from repro.config import ClientParameters
from repro.core.base import ReadAborted, ReadContext, Scheme
from repro.core.transaction import (
    AbortReason,
    ReadOnlyTransaction,
    TransactionStatus,
)
from repro.obs.trace import (
    EV_CACHE_FLUSH,
    EV_CLIENT_RESYNC,
    EV_CONTROL_DECODE,
    EV_QUERY_ABORT,
    EV_QUERY_ACCEPT,
    EV_QUERY_BEGIN,
    EV_QUERY_READ,
    EV_RESILIENCE_CHECKPOINT,
    EV_RESILIENCE_CRASH,
    EV_RESILIENCE_DEADLINE,
    EV_RESILIENCE_DEGRADE,
    EV_RESILIENCE_RESTART,
    EV_RESILIENCE_RESTORE,
    EV_RESILIENCE_RETRY,
    EV_RESILIENCE_WATCHDOG,
    Tracer,
    gate,
)
from repro.resilience import ClientResilience
from repro.resilience.checkpoint import ClientCheckpoint, select_resync
from repro.resilience.degradation import DegradationLevel
from repro.sim.engine import Environment
from repro.stats import names as metric_names
from repro.stats.metrics import MetricsRegistry


class ClientRuntime:
    """The narrow surface a scheme can touch (no server handle exists)."""

    def __init__(
        self,
        env: Environment,
        channel: BroadcastChannel,
        cache: Optional[ClientCache],
        metrics: MetricsRegistry,
        params: ClientParameters,
    ) -> None:
        self.env = env
        self.channel = channel
        self.cache = cache
        self.metrics = metrics
        self.params = params


class BroadcastClient:
    """One client process: queries, retries, metrics."""

    def __init__(
        self,
        env: Environment,
        channel: BroadcastChannel,
        scheme: Scheme,
        params: ClientParameters,
        metrics: Optional[MetricsRegistry] = None,
        rng: Optional[random.Random] = None,
        disconnect: Optional[DisconnectionModel] = None,
        client_id: int = 0,
        warmup_cycles: int = 0,
        tracer: Optional[Tracer] = None,
        resilience: Optional[ClientResilience] = None,
    ) -> None:
        self.env = env
        self.channel = channel
        self.scheme = scheme
        self.params = params
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.rng = rng if rng is not None else random.Random()
        self.disconnect = disconnect if disconnect is not None else NeverDisconnected()
        self.client_id = client_id
        self.warmup_cycles = warmup_cycles
        #: Gated tracer references: ``None`` unless the level covers the
        #: event class, so the disabled path costs one ``is None`` test.
        self._trace_q = gate(tracer, "queries")
        self._trace_r = gate(tracer, "reads")

        self.cache: Optional[ClientCache] = None
        if scheme.use_cache and params.cache_size > 0:
            old_capacity = 0
            if scheme.requirements().needs_versions_on_items:
                old_capacity = int(params.cache_size * params.old_version_fraction)
            self.cache = ClientCache(params.cache_size, old_capacity=old_capacity)

        self.generator = QueryGenerator(params, rng=self.rng)
        self.listening = True
        self.last_heard_cycle = 0
        self.missed_cycles = 0
        #: Was the current deaf spell caused by the fault layer (lost or
        #: corrupted control info) rather than the disconnection model?
        self._fault_desynced = False
        #: Resilience bundle; ``None`` keeps the seed behaviour exactly.
        self.resilience = resilience
        #: Last cycle of the crash outage in progress, or ``None``.
        self._down_until: Optional[int] = None
        #: Cycle at which the client reconnected/restarted, armed until
        #: the first commit after it (the time-to-recover sample).
        self._recover_since: Optional[int] = None
        #: The attempt currently executing, for fault-abort attribution.
        self._current_txn: Optional[ReadOnlyTransaction] = None
        self._txn_counter = 0
        #: Every finished attempt, in completion order (the correctness
        #: oracle in the test suite replays these against the database).
        self.completed: list = []

        runtime = ClientRuntime(env, channel, self.cache, self.metrics, params)
        scheme.attach(ReadContext(runtime))
        channel.subscribe(self)
        self.process = env.process(self.run())

    # -- channel listener -----------------------------------------------------

    def on_cycle_start(self, program: BroadcastProgram) -> None:
        cycle = program.cycle
        res = self.resilience
        if res is not None:
            if self._consume_down_cycle(cycle):
                return
            if self._down_until is not None:
                self._restart(program)
        if not self.disconnect.is_listening(cycle):
            self._miss_cycle(cycle, fault=False)
            return
        if not self.listening:
            self._resynchronize(program)
            if self._fault_desynced:
                self.metrics.count(metric_names.FAULT_RECOVERIES)
                self._fault_desynced = False
            if res is not None:
                self._recover_since = cycle
        self.listening = True
        self.last_heard_cycle = cycle
        if self._trace_r is not None:
            control = program.control
            self._trace_r.emit(
                EV_CONTROL_DECODE,
                client=self.client_id,
                cycle=cycle,
                invalidated=len(control.invalidation.updated_items),
                has_graph_diff=control.graph_diff is not None,
            )
        if self.cache is not None:
            self.cache.handle_cycle_start(program, self.channel)
        self.scheme.on_cycle_start(program)
        if res is not None:
            self._after_heard_cycle(cycle)

    def on_interim_report(self, report) -> None:
        """Forward a mid-cycle report to the scheme (if listening)."""
        if self.listening:
            self.scheme.on_interim_report(report)

    def on_signal_lost(self, cycle: int) -> None:
        """The fault layer dropped this cycle's control information.

        Without the report nothing heard this cycle can be validated, so
        the cycle counts as missed -- the same conservative degrade as a
        disconnection, which reuses the resynchronization path (and its
        safety argument) on the next heard cycle.
        """
        if self.resilience is not None:
            if self._consume_down_cycle(cycle):
                return
            if self._down_until is not None:
                # The would-be restart cycle's control was lost too: the
                # client cannot resync off it, so the outage extends one
                # cycle and the next heard control triggers the restart.
                self.missed_cycles += 1
                return
        self._miss_cycle(cycle, fault=True)

    def _miss_cycle(self, cycle: int, fault: bool) -> None:
        if self.listening and not fault:
            self.metrics.count(metric_names.CLIENT_DISCONNECTIONS)
        self.listening = False
        self.missed_cycles += 1
        if fault:
            self._fault_desynced = True
        res = self.resilience
        if res is not None and res.ladder is not None:
            self._apply_ladder(res.ladder.record_cycle(faulty=True), cycle)
        txn = self._current_txn
        was_active = txn is not None and txn.status is TransactionStatus.ACTIVE
        self.scheme.on_missed_cycle(cycle)
        if (
            fault
            and was_active
            and txn is not None
            and txn.status is TransactionStatus.ABORTED
        ):
            self.metrics.count(metric_names.FAULT_FORCED_ABORTS)
            # The scheme recorded *what* killed the query (a missed cycle);
            # record *why* the cycle was missed so the chain bottoms out at
            # the injected fault.
            txn.cause_chain.append({"event": "fault_forced", "cycle": cycle})

    def _resynchronize(self, program: BroadcastProgram) -> None:
        """Reconnect after missed cycles: the cache cannot be trusted.

        If the control segment retransmits reports covering every missed
        cycle (the w-window extension, §7), replay them in order; else
        drop the cache entirely -- stale entries would otherwise serve
        values the client wrongly believes current.
        """
        if self.cache is None:
            return
        self.metrics.count(metric_names.CLIENT_RESYNCS)
        if self._trace_q is not None:
            self._trace_q.emit(
                EV_CLIENT_RESYNC,
                client=self.client_id,
                cycle=program.cycle,
                last_heard=self.last_heard_cycle,
            )
        control = program.control
        if control.missed_window_ok(self.last_heard_cycle):
            for missed in range(self.last_heard_cycle + 1, program.cycle):
                report = control.report_covering(missed)
                if report is not None:
                    self.cache.apply_missed_report(report)
        else:
            self.cache.clear()
            self.metrics.count(metric_names.CLIENT_CACHE_DROPS)
            if self._trace_q is not None:
                self._trace_q.emit(
                    EV_CACHE_FLUSH,
                    client=self.client_id,
                    cycle=program.cycle,
                    reason="resync_window_exceeded",
                )

    # -- crash / restart / degradation (resilience bundle only) ---------------

    def _consume_down_cycle(self, cycle: int) -> bool:
        """Handle one cycle while crashed-down; True when consumed.

        A down client is off: no scheme hooks run, nothing is heard.  A
        crash *starting* at this cycle is also triggered here, so the
        caller (heard or signal-lost path alike) stops processing.
        """
        res = self.resilience
        if self._down_until is not None:
            if cycle <= self._down_until:
                self.missed_cycles += 1
                return True
            return False
        if res.crashes is not None:
            window = res.crashes.crash_starting_at(cycle)
            if window is not None:
                self._crash(cycle, window[1])
                return True
        return False

    def _crash(self, cycle: int, down_until: int) -> None:
        """Lose all in-memory state and go off the air until restart."""
        self.metrics.count(metric_names.RESILIENCE_CRASHES)
        if self._trace_q is not None:
            self._trace_q.emit(
                EV_RESILIENCE_CRASH,
                client=self.client_id,
                cycle=cycle,
                down_until=down_until,
            )
        txn = self._current_txn
        if txn is not None and txn.status is TransactionStatus.ACTIVE:
            txn.abort(
                AbortReason.DISCONNECTED,
                self.env.now,
                cycle,
                cause={"event": "crash", "cycle": cycle},
            )
        self.scheme.reset_state()
        if self.cache is not None:
            self.cache.clear()
        self.listening = False
        self._fault_desynced = False
        self.missed_cycles += 1
        self._down_until = down_until

    def _restart(self, program: BroadcastProgram) -> None:
        """First heard cycle after a crash outage: rejoin the broadcast.

        The cache is cleared first (an in-flight read may have leaked an
        air value into it mid-outage), then the resync protocol is
        chosen: *catch-up* restores the latest checkpoint and replays
        the w-window's retransmitted reports over it -- the same safety
        argument as the live resynchronization path -- while *rejoin*
        starts cold.  Scheme control state goes through
        :meth:`~repro.core.base.Scheme.restore_state`, which knows how
        much of it survives a gap.
        """
        res = self.resilience
        cycle = program.cycle
        self._down_until = None
        if self.cache is not None:
            self.cache.clear()
        checkpoint = (
            res.checkpoints.latest if res.checkpoints is not None else None
        )
        control = program.control
        covered = checkpoint is not None and control.missed_window_ok(
            checkpoint.cycle
        )
        protocol = select_resync(
            checkpoint, cycle, res.params.catchup_window, covered
        )
        if protocol == "catchup":
            assert checkpoint is not None
            self.metrics.count(metric_names.RESILIENCE_CHECKPOINT_RESTORES)
            if self.cache is not None:
                self.cache.restore_entries(
                    checkpoint.cache_current, checkpoint.cache_old
                )
                for missed in range(checkpoint.cycle + 1, cycle):
                    report = control.report_covering(missed)
                    if report is not None:
                        self.cache.apply_missed_report(report)
            if checkpoint.scheme_state is not None:
                self.scheme.restore_state(
                    checkpoint.scheme_state, cycle - checkpoint.cycle - 1
                )
            if self._trace_q is not None:
                self._trace_q.emit(
                    EV_RESILIENCE_RESTORE,
                    client=self.client_id,
                    cycle=cycle,
                    checkpoint_cycle=checkpoint.cycle,
                    entries=len(checkpoint.cache_current)
                    + len(checkpoint.cache_old),
                )
        if self._trace_q is not None:
            self._trace_q.emit(
                EV_RESILIENCE_RESTART,
                client=self.client_id,
                cycle=cycle,
                protocol=protocol,
            )
        # Resynchronized by construction: skip the legacy resync branch.
        self.listening = True
        self._recover_since = cycle

    def _after_heard_cycle(self, cycle: int) -> None:
        """Resilience bookkeeping on a fully heard cycle."""
        res = self.resilience
        if res.ladder is not None:
            self._apply_ladder(res.ladder.record_cycle(faulty=False), cycle)
        if res.checkpoints is not None and res.checkpoints.due(cycle):
            self._save_checkpoint(cycle)

    def _save_checkpoint(self, cycle: int) -> None:
        res = self.resilience
        current: list = []
        old: list = []
        if self.cache is not None:
            current, old = self.cache.export_entries()
        state = self.scheme.export_state()
        res.checkpoints.save(
            ClientCheckpoint(
                cycle=cycle,
                cache_current=current,
                cache_old=old,
                scheme_state=dict(state) if state is not None else None,
            )
        )
        self.metrics.count(metric_names.RESILIENCE_CHECKPOINT_SAVES)
        if self._trace_q is not None:
            self._trace_q.emit(
                EV_RESILIENCE_CHECKPOINT,
                client=self.client_id,
                cycle=cycle,
                entries=len(current) + len(old),
            )

    def _apply_ladder(self, transition, cycle: int) -> None:
        """Apply one degradation-ladder transition to the cache."""
        if transition is None:
            return
        old_level, new_level = transition
        self.metrics.count(metric_names.RESILIENCE_DEGRADATION_TRANSITIONS)
        if self._trace_q is not None:
            self._trace_q.emit(
                EV_RESILIENCE_DEGRADE,
                client=self.client_id,
                cycle=cycle,
                from_level=old_level.name,
                to_level=new_level.name,
            )
        if self.cache is None:
            return
        if new_level is DegradationLevel.NORMAL:
            self.cache.autoprefetch_enabled = True
            self.cache.bypass = False
        elif new_level is DegradationLevel.NO_PREFETCH:
            self.cache.autoprefetch_enabled = False
            self.cache.bypass = False
        else:  # BYPASS_CACHE: flushed and blind -- nothing can go stale.
            self.cache.autoprefetch_enabled = False
            self.cache.bypass = True
            self.cache.clear()

    # -- the client loop ---------------------------------------------------------

    def run(self) -> Generator:
        if not self.channel.on_air:
            yield self.channel.cycle_started()
        while True:
            query = self.generator.next_query()
            yield from self._run_query(query)

    def _run_query(self, query: Query) -> Generator:
        res = self.resilience
        attempts = 0
        committed = False
        start_cycle = self.channel.current_cycle
        measured = start_cycle > self.warmup_cycles
        if res is not None:
            res.policy.new_query()
        while attempts < self.params.max_attempts and not committed:
            attempts += 1
            txn = self._new_transaction(query)
            if self._trace_q is not None:
                self._trace_q.emit(
                    EV_QUERY_BEGIN,
                    client=self.client_id,
                    txn=txn.txn_id,
                    cycle=txn.start_cycle,
                    items=list(txn.items),
                    attempt=attempts,
                    measured=measured,
                )
            yield from self._attempt(txn)
            self.completed.append(txn)
            committed = txn.status is TransactionStatus.COMMITTED
            if self._trace_q is not None:
                self._emit_outcome(txn, attempts, measured)
            if measured:
                self._record_attempt(txn)
            if committed and self._recover_since is not None:
                # Time-to-recover: cycles from reconnect/restart to the
                # first commit proving the client is productive again.
                self.metrics.observe(
                    metric_names.TIME_TO_RECOVER_CYCLES,
                    max(0, (txn.end_cycle or 0) - self._recover_since),
                )
                self._recover_since = None
            if res is not None:
                if res.watchdog is not None and res.watchdog.record_attempt(
                    committed
                ):
                    self._escalate(txn)
                if not committed and attempts < self.params.max_attempts:
                    if not (yield from self._between_attempts(res, txn, attempts, start_cycle)):
                        break
        if measured:
            self.metrics.record_outcome(metric_names.QUERY_COMPLETED, committed)
            self.metrics.observe(metric_names.QUERY_ATTEMPTS, attempts)
            if self.cache is not None:
                self.metrics.observe(
                    metric_names.CACHE_HIT_RATIO, self.cache.hit_ratio
                )

    def _between_attempts(
        self,
        res: ClientResilience,
        txn: ReadOnlyTransaction,
        attempts: int,
        start_cycle: int,
    ) -> Generator:
        """Deadline check + policy routing after one aborted attempt.

        Returns True to retry (after waiting out the decided delay),
        False to give the query up.  This replaces the seed's blind
        immediate retry, which could burn the whole ``max_attempts``
        budget inside a single dead or contended cycle.
        """
        deadline = res.params.deadline_cycles
        if deadline > 0 and self.channel.current_cycle - start_cycle >= deadline:
            self.metrics.count(metric_names.RESILIENCE_DEADLINE_ABANDONED)
            if self._trace_q is not None:
                self._trace_q.emit(
                    EV_RESILIENCE_DEADLINE,
                    client=self.client_id,
                    txn=txn.txn_id,
                    cycle=self.channel.current_cycle,
                    started=start_cycle,
                )
            return False
        decision = res.policy.decide(attempts, txn.abort_reason)
        if not decision.retry:
            return False
        self.metrics.count(metric_names.RESILIENCE_RETRIES)
        self.metrics.observe(
            metric_names.RESILIENCE_RETRY_DELAY, decision.delay_cycles
        )
        if self._trace_q is not None:
            reason = txn.abort_reason
            self._trace_q.emit(
                EV_RESILIENCE_RETRY,
                client=self.client_id,
                txn=txn.txn_id,
                cycle=self.channel.current_cycle,
                attempt=attempts,
                delay=decision.delay_cycles,
                reason=reason.value if reason is not None else None,
            )
        for _ in range(decision.delay_cycles):
            yield self.channel.cycle_started()
        return True

    def _escalate(self, txn: ReadOnlyTransaction) -> None:
        """Watchdog escalation: the client is starving -- reset what a
        poisoned cache could be contributing and step the ladder down."""
        res = self.resilience
        cycle = self.channel.current_cycle
        self.metrics.count(metric_names.RESILIENCE_WATCHDOG_ESCALATIONS)
        if self._trace_q is not None:
            self._trace_q.emit(
                EV_RESILIENCE_WATCHDOG,
                client=self.client_id,
                txn=txn.txn_id,
                cycle=cycle,
                threshold=res.watchdog.threshold,
            )
        if self.cache is not None and not self.cache.bypass:
            self.cache.clear()
            if self._trace_q is not None:
                self._trace_q.emit(
                    EV_CACHE_FLUSH,
                    client=self.client_id,
                    cycle=cycle,
                    reason="watchdog_escalation",
                )
        if res.ladder is not None:
            self._apply_ladder(res.ladder.force_step_down(), cycle)

    def _emit_outcome(
        self, txn: ReadOnlyTransaction, attempt: int, measured: bool
    ) -> None:
        """Emit the accept/abort event for one finished attempt.

        The ``measured`` flag is the same one gating the metrics path, so
        ``TraceAnalyzer.abort_breakdown(measured_only=True)`` agrees with
        the ``abort.*`` counters exactly.
        """
        tracer = self._trace_q
        assert tracer is not None
        if txn.status is TransactionStatus.COMMITTED:
            tracer.emit(
                EV_QUERY_ACCEPT,
                client=self.client_id,
                txn=txn.txn_id,
                cycle=txn.end_cycle,
                attempt=attempt,
                measured=measured,
                span=txn.span,
            )
        else:
            reason = txn.abort_reason or AbortReason.INVALIDATED
            tracer.emit(
                EV_QUERY_ABORT,
                client=self.client_id,
                txn=txn.txn_id,
                cycle=txn.end_cycle,
                attempt=attempt,
                measured=measured,
                reason=reason.value,
                cause=list(txn.cause_chain),
            )

    def _new_transaction(self, query: Query) -> ReadOnlyTransaction:
        self._txn_counter += 1
        return ReadOnlyTransaction(
            txn_id=f"c{self.client_id}.q{query.query_id}.a{self._txn_counter}",
            items=list(query.items),
            start_time=self.env.now,
            start_cycle=self.channel.current_cycle,
        )

    def _attempt(self, txn: ReadOnlyTransaction) -> Generator:
        self._current_txn = txn
        self.scheme.begin(txn)
        try:
            for item in txn.items:
                think = self.generator.think_time()
                if think > 0:
                    yield self.env.timeout(think)
                # A disconnected client receives nothing: block until the
                # first cycle start it actually hears (its cache is also
                # unsafe until the resynchronization there has run).
                if not self.listening:
                    yield from self._await_readable(item)
                self._raise_if_doomed(txn)
                result = yield from self.scheme.read(txn, item)
                self._raise_if_doomed(txn)
                txn.record_read(result)
                if self._trace_r is not None:
                    self._trace_r.emit(
                        EV_QUERY_READ,
                        client=self.client_id,
                        txn=txn.txn_id,
                        item=result.item,
                        version=result.version,
                        cycle=result.read_cycle,
                        from_cache=result.from_cache,
                    )
            self._raise_if_doomed(txn)
            self.scheme.finish(txn)
            txn.commit(self.env.now, self.channel.current_cycle)
        except ReadAborted as aborted:
            if txn.status is not TransactionStatus.ABORTED:
                txn.abort(
                    aborted.reason,
                    self.env.now,
                    self.channel.current_cycle,
                    cause=aborted.cause,
                )
        finally:
            self.scheme.end(txn)
            self._current_txn = None
        return txn

    def _await_readable(self, item: int) -> Generator:
        """Block until the channel serving ``item`` is heard again.

        The single-channel client listens to exactly one channel, so this
        waits for its next heard cycle start.  The multi-tuner client
        (:class:`repro.shard.ShardedClient`) overrides it to wait only on
        the shard that carries ``item``.
        """
        while not self.listening:
            yield self.channel.cycle_started()

    def _raise_if_doomed(self, txn: ReadOnlyTransaction) -> None:
        """An invalidation report may have aborted the transaction while
        it was thinking or waiting on the channel."""
        if txn.status is TransactionStatus.ABORTED:
            raise ReadAborted(
                txn.abort_reason or AbortReason.INVALIDATED,
                f"{txn.txn_id} was aborted between operations",
            )

    # -- metrics ---------------------------------------------------------------------

    def _record_attempt(self, txn: ReadOnlyTransaction) -> None:
        committed = txn.status is TransactionStatus.COMMITTED
        self.metrics.record_outcome(metric_names.ATTEMPT_COMMITTED, committed)
        if committed:
            self.metrics.observe(
                metric_names.TXN_LATENCY_CYCLES, txn.latency_cycles
            )
            self.metrics.observe(
                metric_names.TXN_LATENCY_SLOTS,
                (txn.end_time or 0.0) - txn.start_time,
            )
            self.metrics.observe(metric_names.TXN_SPAN, txn.span)
            cache_reads = sum(1 for r in txn.reads.values() if r.from_cache)
            self.metrics.observe(metric_names.TXN_CACHE_READS, cache_reads)
            state_cycle = self.scheme.state_cycle(txn)
            if state_cycle is not None and txn.end_cycle is not None:
                # Currency (Table 1): how far behind the commit-time state
                # the transaction's consistent view is.
                self.metrics.observe(
                    metric_names.TXN_CURRENCY_LAG, txn.end_cycle - state_cycle
                )
        else:
            reason = txn.abort_reason or AbortReason.INVALIDATED
            self.metrics.count(metric_names.abort_metric(reason.value))
