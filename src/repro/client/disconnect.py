"""Intermittent-connectivity models (Section 5.2.2).

Wireless clients miss broadcast cycles: batteries, money, and fading all
argue against continuous listening.  A disconnection model decides, for
each broadcast cycle, whether the client hears it.  The client machine
consults the model at every cycle start; a missed cycle means neither the
control information nor any data of that cycle reach the client, and the
scheme's :meth:`~repro.core.base.Scheme.on_missed_cycle` hook fires
instead.
"""

from __future__ import annotations

import random
from typing import Optional


class DisconnectionModel:
    """Base: decides per-cycle whether the client is listening."""

    def is_listening(self, cycle: int) -> bool:
        raise NotImplementedError


class NeverDisconnected(DisconnectionModel):
    """The wired/base case: the client hears every cycle."""

    def is_listening(self, cycle: int) -> bool:
        return True


class RandomDisconnections(DisconnectionModel):
    """Geometric disconnection windows.

    Each listening cycle, the client disconnects with probability
    ``p_disconnect`` for a window of ``1 + Geometric(p_reconnect)`` cycles
    -- short fades are common, long outages rare, which matches the
    wireless setting the paper argues about.
    """

    def __init__(
        self,
        p_disconnect: float,
        mean_outage_cycles: float = 1.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not 0.0 <= p_disconnect <= 1.0:
            raise ValueError(f"p_disconnect must be in [0, 1], got {p_disconnect}")
        if mean_outage_cycles < 1.0:
            raise ValueError("mean_outage_cycles must be at least 1")
        self.p_disconnect = p_disconnect
        self.mean_outage_cycles = mean_outage_cycles
        self._rng = rng if rng is not None else random.Random()
        self._deaf_until: Optional[int] = None

    def is_listening(self, cycle: int) -> bool:
        if self._deaf_until is not None:
            if cycle < self._deaf_until:
                return False
            self._deaf_until = None
        if self._rng.random() < self.p_disconnect:
            # Window length >= 1, geometric tail around the mean.
            length = 1
            p_stop = 1.0 / self.mean_outage_cycles
            while self._rng.random() > p_stop:
                length += 1
            self._deaf_until = cycle + length
            return False
        return True


class UnionDisconnections(DisconnectionModel):
    """Deaf whenever *any* member model is deaf.

    Composes independent outage causes -- e.g. a client's own battery
    behaviour (:class:`RandomDisconnections`) with a cell-wide disconnect
    storm from the fault layer.  Every member is consulted every cycle
    (no short-circuiting) so each model's RNG stream advances identically
    regardless of what the others decide.
    """

    def __init__(self, models) -> None:
        self.models = [model for model in models if model is not None]

    def is_listening(self, cycle: int) -> bool:
        return all([model.is_listening(cycle) for model in self.models])


class ScheduledDisconnections(DisconnectionModel):
    """Deterministic outage windows -- used by tests and examples.

    ``outages`` is an iterable of ``(first, last)`` inclusive cycle ranges
    during which the client is deaf.
    """

    def __init__(self, outages) -> None:
        self.outages = [(int(a), int(b)) for a, b in outages]
        for first, last in self.outages:
            if first > last:
                raise ValueError(f"Empty outage window {first}..{last}")

    def is_listening(self, cycle: int) -> bool:
        return not any(first <= cycle <= last for first, last in self.outages)
