"""repro -- Scalable Processing of Read-Only Transactions in Broadcast Push.

A from-scratch reproduction of Pitoura & Chrysanthis (ICDCS 1999): a
broadcast-push data server, clients that run consistent read-only
transactions without ever contacting the server, and the paper's full
suite of consistency protocols (invalidation-only, versioned cache,
multiversion broadcast, serialization-graph testing, multiversion
caching), evaluated by a discrete-event simulation.

Quickstart::

    from repro import ModelParameters, Simulation
    from repro.core import SerializationGraphTesting

    params = ModelParameters().with_sim(num_cycles=60)
    sim = Simulation(params, scheme_factory=lambda: SerializationGraphTesting(use_cache=True))
    result = sim.run()
    print(result.abort_rate, result.mean_latency_cycles)
"""

from repro.config import (
    ClientParameters,
    DEFAULTS,
    FaultParameters,
    ModelParameters,
    ResilienceParameters,
    ServerParameters,
    SimulationParameters,
)
from repro.runtime import Simulation, SimulationResult
from repro.verify import check_transaction, violations

__version__ = "1.0.0"

__all__ = [
    "ClientParameters",
    "DEFAULTS",
    "FaultParameters",
    "ModelParameters",
    "ResilienceParameters",
    "ServerParameters",
    "Simulation",
    "SimulationParameters",
    "SimulationResult",
    "__version__",
    "check_transaction",
    "violations",
]
