"""Correctness verification oracles.

The paper's correctness criterion (Section 2.2): the readset of every
committed read-only transaction must be a subset of a consistent
database state.  This module checks that criterion from ground truth --
the server's full version chains and (optionally) its recorded operation
history:

* :func:`snapshot_cycle_of` / :func:`readset_matches_snapshot` -- the
  *snapshot* test: does some broadcast state ``DS^c`` contain the whole
  readset?  Sufficient for the snapshot-pinning schemes (Theorems 1, 2,
  4, 5).
* :func:`is_serializable_with_server` -- the general *serializability*
  test used for SGT (Theorem 3): fold the query into the complete
  conflict graph and test acyclicity.  SGT legitimately commits readsets
  that match no broadcast snapshot yet pass this test.
* :func:`check_transaction` -- the union: snapshot match or (when a
  history is available) serializability.

These run on the simulation's server-side ground truth, so they belong
in test harnesses and examples -- a real client could not run them (it
would need the server!).  They are the executable statement of what the
protocols guarantee.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.core.transaction import ReadOnlyTransaction, TransactionStatus
from repro.graph.history import History
from repro.server.database import Database


def readset_matches_snapshot(
    txn: ReadOnlyTransaction, database: Database, cycle: int
) -> bool:
    """Does every value ``txn`` read equal the item's value in ``DS^cycle``?"""
    for item, result in txn.reads.items():
        if database.value_at(item, cycle).value != result.value:
            return False
    return True


def snapshot_cycle_of(
    txn: ReadOnlyTransaction, database: Database
) -> Optional[int]:
    """The smallest broadcast cycle whose state contains the readset.

    ``None`` means no broadcast snapshot matches; for the snapshot-based
    schemes that is a correctness violation, for SGT it may still be a
    legitimate (serializable) commit.
    """
    if not txn.reads:
        return 0
    low = min(result.version for result in txn.reads.values())
    high = max(txn.cycles_touched) if txn.cycles_touched else low
    for cycle in range(low, high + 1):
        if readset_matches_snapshot(txn, database, cycle):
            return cycle
    return None


def is_serializable_with_server(
    txn: ReadOnlyTransaction,
    database: Database,
    history: History,
    base_graph=None,
) -> bool:
    """Is the committed query serializable against the full history?

    Builds the complete server conflict graph, then folds the query in: a
    dependency edge from the writer of each version it read, and a
    precedence edge toward every committed transaction that wrote the
    item *after* that version.  Correct iff the result is acyclic
    (the serialization theorem).

    ``base_graph`` lets callers checking many transactions reuse one
    pre-built server graph (see :func:`violations`); it is copied, never
    mutated.
    """
    graph = (
        base_graph.copy() if base_graph is not None else history.serialization_graph()
    )
    node = txn.txn_id
    graph.add_node(node)
    for item, result in txn.reads.items():
        chain = database.chain_of(item)
        read_version = None
        for version in chain:
            if version.value == result.value:
                read_version = version
                break
        if read_version is None:
            # The client read a value the server never committed.
            return False
        if read_version.writer is not None:
            graph.add_edge(read_version.writer, node)
        for version in chain:
            if version.value > read_version.value and version.writer is not None:
                if not graph.has_edge(node, version.writer):
                    graph.add_edge(node, version.writer)
    return not graph.has_cycle()


def check_transaction(
    txn: ReadOnlyTransaction,
    database: Database,
    history: Optional[History] = None,
    base_graph=None,
) -> bool:
    """The full correctness criterion for one committed transaction."""
    if snapshot_cycle_of(txn, database) is not None:
        return True
    if history is not None:
        return is_serializable_with_server(
            txn, database, history, base_graph=base_graph
        )
    return False


def violations(
    clients: Iterable,
    database: Database,
    history: Optional[History] = None,
) -> List[ReadOnlyTransaction]:
    """All committed transactions across ``clients`` that violate the
    correctness criterion (empty for every paper scheme).

    The server conflict graph is built once and reused across all the
    transactions checked.
    """
    base_graph = history.serialization_graph() if history is not None else None
    bad: List[ReadOnlyTransaction] = []
    for client in clients:
        for txn in client.completed:
            if txn.status is not TransactionStatus.COMMITTED:
                continue
            if not check_transaction(txn, database, history, base_graph):
                bad.append(txn)
    return bad
