"""Composable, seeded fault models for the broadcast air interface.

The paper's performance model assumes a perfect downstream channel; real
wireless links lose buckets to noise and fading, corrupt control
segments, cut cycles short, and disconnect whole cells at once.  Each
class here models one independent impairment as a deterministic function
of its own seeded RNG, and a pipeline of models is folded over a
:class:`CycleFate` at every cycle start to decide what one *client*
actually receives of that cycle:

* :class:`SlotLoss` -- i.i.d. per-slot bucket loss (thermal noise);
* :class:`BurstLoss` -- Gilbert-style two-state fading: losses arrive in
  runs whose mean length is configurable;
* :class:`ControlCorruption` -- the control bucket fails its checksum and
  is dropped, so the whole cycle is unusable for validation;
* :class:`TruncatedCycle` -- the tail of the cycle never reaches the
  client (transmitter handoff, deep fade at end of cycle);
* :class:`ReportDelay` -- the control segment decodes late: the client
  synchronizes mid-cycle and the slots that flew before are gone;
* :class:`StormDisconnections` -- correlated multi-cycle outages hitting
  a fraction of all clients at once (cell-wide fades), composed with the
  regular :class:`~repro.client.disconnect.DisconnectionModel` machinery.

Everything is seeded: same parameters + same seed = bit-identical fault
schedule, which the differential test suite relies on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from repro.client.disconnect import DisconnectionModel


@dataclass
class CycleFate:
    """What one client receives of one broadcast cycle.

    Built fresh at every cycle start and passed through the fault
    pipeline; each model only ever *degrades* the fate (adds lost slots,
    sets flags), so model order does not matter for correctness.
    """

    cycle: int
    total_slots: int
    control_slots: int
    #: The control segment was lost or corrupted: the client cannot
    #: validate anything this cycle and must treat it as missed.
    control_lost: bool = False
    #: Slots (cycle-relative) whose buckets never reach the client.
    lost_slots: Set[int] = field(default_factory=set)
    #: The control segment decodes only this many slots into the cycle.
    control_delay: float = 0.0
    #: A truncation model cut this cycle short (metrics flag).
    truncated: bool = False

    def lose_range(self, first: int, last: int) -> None:
        """Mark every slot in ``[first, last)`` as lost."""
        self.lost_slots.update(range(max(0, first), min(last, self.total_slots)))

    @property
    def data_slots_lost(self) -> int:
        """Lost slots outside the control segment (metric input)."""
        return sum(1 for s in self.lost_slots if s >= self.control_slots)


class FaultModel:
    """One impairment; owns its RNG so models stay independently seeded."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng

    def apply(self, fate: CycleFate) -> None:
        raise NotImplementedError


class SlotLoss(FaultModel):
    """Independent per-slot loss with probability ``p``.

    Control slots are ordinary buckets on the air, so they are lost with
    the same probability -- a lost control slot surfaces as
    ``control_lost`` (the checksum catches the gap).
    """

    def __init__(self, p: float, rng: random.Random) -> None:
        super().__init__(rng)
        self.p = p

    def apply(self, fate: CycleFate) -> None:
        for slot in range(fate.total_slots):
            if self.rng.random() < self.p:
                fate.lost_slots.add(slot)


class BurstLoss(FaultModel):
    """Two-state (Gilbert) fading: bad states lose every slot.

    ``p_start`` is the per-slot probability of entering the bad state;
    once bad, the state exits with probability ``1 / mean_length`` per
    slot, giving geometrically distributed burst lengths.  The state
    persists across cycle boundaries, as real fades do.
    """

    def __init__(self, p_start: float, mean_length: float, rng: random.Random) -> None:
        super().__init__(rng)
        self.p_start = p_start
        self.p_stop = 1.0 / max(1.0, mean_length)
        self._bad = False

    def apply(self, fate: CycleFate) -> None:
        for slot in range(fate.total_slots):
            if not self._bad and self.rng.random() < self.p_start:
                self._bad = True
            if self._bad:
                fate.lost_slots.add(slot)
                if self.rng.random() < self.p_stop:
                    self._bad = False


class ControlCorruption(FaultModel):
    """The control bucket fails its checksum with probability ``p``."""

    def __init__(self, p: float, rng: random.Random) -> None:
        super().__init__(rng)
        self.p = p

    def apply(self, fate: CycleFate) -> None:
        if self.rng.random() < self.p:
            fate.control_lost = True


class TruncatedCycle(FaultModel):
    """With probability ``p`` the cycle's tail is cut off.

    The cut point is uniform in ``[min_fraction, 1)`` of the cycle (never
    before the control segment: a truncation that ate the control is a
    control loss, which :class:`ControlCorruption` models separately).
    """

    def __init__(self, p: float, min_fraction: float, rng: random.Random) -> None:
        super().__init__(rng)
        self.p = p
        self.min_fraction = min_fraction

    def apply(self, fate: CycleFate) -> None:
        if self.rng.random() >= self.p:
            return
        cut = self.rng.uniform(self.min_fraction, 1.0)
        first_lost = max(fate.control_slots, int(cut * fate.total_slots))
        if first_lost < fate.total_slots:
            fate.lose_range(first_lost, fate.total_slots)
            fate.truncated = True


class ReportDelay(FaultModel):
    """With probability ``p`` the control segment decodes late.

    The delay is uniform in ``[1, max_delay]`` slots; every bucket that
    flew before the client synchronized is lost to it.  A delay reaching
    the end of the cycle degenerates to a control loss (handled by the
    faulty channel).
    """

    def __init__(self, p: float, max_delay: float, rng: random.Random) -> None:
        super().__init__(rng)
        self.p = p
        self.max_delay = max_delay

    def apply(self, fate: CycleFate) -> None:
        if self.rng.random() < self.p:
            delay = self.rng.uniform(1.0, self.max_delay)
            fate.control_delay = max(fate.control_delay, delay)


#: Inclusive cycle ranges during which a storm is in progress.
StormWindows = Sequence[Tuple[int, int]]


def compute_storm_windows(
    rng: random.Random,
    num_cycles: int,
    rate: float,
    mean_length: float,
) -> List[Tuple[int, int]]:
    """Draw the shared storm schedule for one simulation run.

    Storms start at any cycle with probability ``rate`` and last
    ``1 + Geometric(1 / mean_length)`` cycles; the schedule is global --
    every client sees the same windows -- because a storm is a property
    of the cell, not of one receiver.
    """
    windows: List[Tuple[int, int]] = []
    p_stop = 1.0 / max(1.0, mean_length)
    cycle = 1
    while cycle <= num_cycles:
        if rng.random() < rate:
            length = 1
            while rng.random() > p_stop:
                length += 1
            windows.append((cycle, cycle + length - 1))
            cycle += length
        else:
            cycle += 1
    return windows


class StormDisconnections(DisconnectionModel):
    """Per-client participation in the shared storm windows.

    Whether a given client is inside a storm's footprint is decided once
    per window (with probability ``participation``), so a hit client is
    deaf for the storm's whole duration -- the correlated outage pattern
    that distinguishes storms from the independent
    :class:`~repro.client.disconnect.RandomDisconnections`.
    """

    def __init__(
        self,
        windows: StormWindows,
        participation: float,
        rng: random.Random,
        metrics=None,
    ) -> None:
        self.windows = list(windows)
        self.participation = participation
        self.rng = rng
        self.metrics = metrics
        self._hit: dict = {}

    def is_listening(self, cycle: int) -> bool:
        for index, (first, last) in enumerate(self.windows):
            if first <= cycle <= last:
                hit = self._hit.get(index)
                if hit is None:
                    hit = self._hit[index] = self.rng.random() < self.participation
                    if hit and self.metrics is not None:
                        self.metrics.count("fault.storm_outages")
                return not hit
        return True


def build_pipeline(faults, rng: random.Random) -> List[FaultModel]:
    """One client's fault pipeline from a :class:`FaultParameters`.

    Every model draws its own sub-seed in a fixed order, so adding or
    removing one impairment never perturbs the others' schedules.
    """
    seeds = [random.Random(rng.getrandbits(64)) for _ in range(5)]
    pipeline: List[FaultModel] = []
    if faults.slot_loss > 0:
        pipeline.append(SlotLoss(faults.slot_loss, seeds[0]))
    if faults.burst_rate > 0:
        pipeline.append(BurstLoss(faults.burst_rate, faults.burst_length, seeds[1]))
    if faults.control_loss > 0:
        pipeline.append(ControlCorruption(faults.control_loss, seeds[2]))
    if faults.truncation > 0:
        pipeline.append(
            TruncatedCycle(faults.truncation, faults.truncation_min_fraction, seeds[3])
        )
    if faults.report_delay > 0:
        pipeline.append(ReportDelay(faults.report_delay, faults.report_max_delay, seeds[4]))
    return pipeline
