"""Simulation-level wiring of the fault subsystem.

One :class:`FaultInjector` per simulation owns the fault RNG tree: a
master seed (``FaultParameters.seed``, or derived from the simulation
seed) feeds the shared storm schedule and one independent sub-seed per
client, so

* the same parameters and seed reproduce the exact same fault pattern
  (the determinism regression test pins this down), and
* the workload RNG stream (client queries, server updates) is untouched:
  a faulty run and its fault-free twin process *identical* workloads,
  which is what makes abort-vs-loss curves differential rather than
  noise.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.broadcast.channel import BroadcastChannel
from repro.client.disconnect import DisconnectionModel
from repro.config import FaultParameters, SimulationParameters
from repro.faults.channel import FaultyChannel
from repro.faults.models import (
    StormDisconnections,
    build_pipeline,
    compute_storm_windows,
)
from repro.obs.trace import Tracer
from repro.stats.metrics import MetricsRegistry

#: Offset mixed into the simulation seed when no explicit fault seed is
#: given, so fault randomness never collides with the workload stream.
_SEED_SALT = 0x5EED_FA17


class FaultInjector:
    """Builds per-client faulty channels and storm disconnection models."""

    def __init__(
        self,
        faults: FaultParameters,
        sim: SimulationParameters,
        metrics: MetricsRegistry,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.faults = faults
        self.metrics = metrics
        self.tracer = tracer
        seed = faults.seed if faults.seed is not None else sim.seed ^ _SEED_SALT
        self._rng = random.Random(seed)
        self.storm_windows: List = []
        if faults.storm_rate > 0:
            self.storm_windows = compute_storm_windows(
                random.Random(self._rng.getrandbits(64)),
                sim.num_cycles,
                faults.storm_rate,
                faults.storm_length,
            )

    def pipeline_for(self, client_id: int):
        """This client's seeded fault-model pipeline.

        Consumes exactly one draw from the injector RNG, like
        :meth:`wrap`, so cohort-mode clients see the same fault streams
        as discrete ones.
        """
        return build_pipeline(
            self.faults, random.Random(self._rng.getrandbits(64))
        )

    def wrap(self, channel: BroadcastChannel, client_id: int) -> FaultyChannel:
        """A fresh lossy view of ``channel`` for one client."""
        pipeline = self.pipeline_for(client_id)
        return FaultyChannel(
            channel,
            pipeline,
            self.metrics,
            client_id=client_id,
            tracer=self.tracer,
        )

    def disconnections_for(self, client_id: int) -> Optional[DisconnectionModel]:
        """This client's share of the storm schedule (``None`` if no
        storms are configured)."""
        if not self.storm_windows:
            return None
        return StormDisconnections(
            self.storm_windows,
            self.faults.storm_participation,
            random.Random(self._rng.getrandbits(64)),
            metrics=self.metrics,
        )
