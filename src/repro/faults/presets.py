"""Named, seeded fault scenarios: the chaos-proxy registry seam.

Each preset packages one reproducible channel pathology as a complete
:class:`~repro.config.FaultParameters` with a *pinned* fault seed: the
scenario itself (which slots fade, which controls corrupt, when storms
hit) is identical across runs and sweeps, while the workload seed keeps
varying underneath it.  That makes presets citable -- "deep-fade at
severity 0.5" names one exact schedule -- and gives the experiment
harness (``repro experiments faults --preset``) and the CLI
(``repro run --preset``) a shared vocabulary.

Severity scaling multiplies every probability knob (capped at 1) while
leaving the shape parameters -- burst lengths, storm durations -- alone,
so a scaled preset is "the same weather, more often".
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from repro.config import FaultParameters, ModelParameters

#: The probability knobs severity scaling applies to; shape parameters
#: (burst/storm lengths, delay bounds, fractions) stay fixed.
_PROBABILITY_FIELDS = (
    "slot_loss",
    "burst_rate",
    "control_loss",
    "truncation",
    "report_delay",
    "storm_rate",
)


@dataclass(frozen=True)
class ScenarioPreset:
    """One named fault scenario with a pinned schedule seed."""

    name: str
    description: str
    faults: FaultParameters

    def scaled(self, severity: float) -> FaultParameters:
        """The preset's faults with every probability scaled by
        ``severity`` (0 = perfect channel, 1 = the preset as named)."""
        if severity < 0:
            raise ValueError(f"severity must be non-negative, got {severity}")
        overrides = {
            name: min(1.0, getattr(self.faults, name) * severity)
            for name in _PROBABILITY_FIELDS
        }
        return replace(self.faults, **overrides)

    def apply(
        self, params: ModelParameters, severity: float = 1.0
    ) -> ModelParameters:
        """``params`` under this scenario (replaces any fault settings)."""
        return replace(params, faults=self.scaled(severity))


def _preset(name: str, description: str, seed: int, **knobs) -> ScenarioPreset:
    return ScenarioPreset(
        name=name,
        description=description,
        faults=FaultParameters(seed=seed, **knobs),
    )


#: The registry.  Seeds are arbitrary but pinned: renaming or reseeding a
#: preset is a breaking change to every experiment citing it.
PRESETS: Dict[str, ScenarioPreset] = {
    preset.name: preset
    for preset in (
        _preset(
            "urban-noise",
            "steady thermal noise: independent 5% slot loss",
            0xF001,
            slot_loss=0.05,
        ),
        _preset(
            "deep-fade",
            "Gilbert fading: rare but long loss bursts",
            0xF002,
            burst_rate=0.02,
            burst_length=8.0,
        ),
        _preset(
            "flaky-control",
            "corrupted/delayed control segments; data mostly intact",
            0xF003,
            control_loss=0.10,
            report_delay=0.20,
            report_max_delay=6.0,
        ),
        _preset(
            "storm-season",
            "correlated cell-wide outages hitting most clients",
            0xF004,
            storm_rate=0.08,
            storm_length=3.0,
            storm_participation=0.9,
        ),
        _preset(
            "kitchen-sink",
            "every impairment at once (the PR 1 oracle mix)",
            0xF005,
            slot_loss=0.05,
            burst_rate=0.02,
            control_loss=0.05,
            truncation=0.1,
            report_delay=0.1,
            storm_rate=0.05,
        ),
    )
}


def preset_names() -> Tuple[str, ...]:
    return tuple(PRESETS)


def get_preset(name: str) -> ScenarioPreset:
    try:
        return PRESETS[name]
    except KeyError:
        known = ", ".join(PRESETS)
        raise ValueError(f"Unknown fault preset {name!r}; known: {known}")
