"""Deterministic fault injection for the broadcast channel.

The seed simulator models a perfect, lossless air interface; this
package degrades it on purpose.  Seeded, composable fault models
(:mod:`repro.faults.models`) are folded into a per-client
:class:`~repro.faults.channel.FaultyChannel` by the
:class:`~repro.faults.injector.FaultInjector`, which
:class:`~repro.runtime.Simulation` wires in whenever
``ModelParameters.faults`` is active.

The load-bearing invariant -- enforced by
``tests/integration/test_fault_oracle.py`` -- is that every scheme
degrades *safely*: a client that misses control information may abort or
fall back conservatively, but a committed readset always passes the
ground-truth oracle of :mod:`repro.verify`.
"""

from repro.faults.channel import FaultyChannel
from repro.faults.injector import FaultInjector
from repro.faults.presets import (
    PRESETS,
    ScenarioPreset,
    get_preset,
    preset_names,
)
from repro.faults.models import (
    BurstLoss,
    ControlCorruption,
    CycleFate,
    FaultModel,
    ReportDelay,
    SlotLoss,
    StormDisconnections,
    TruncatedCycle,
    build_pipeline,
    compute_storm_windows,
)

__all__ = [
    "BurstLoss",
    "ControlCorruption",
    "CycleFate",
    "FaultInjector",
    "FaultModel",
    "FaultyChannel",
    "PRESETS",
    "ReportDelay",
    "ScenarioPreset",
    "SlotLoss",
    "StormDisconnections",
    "TruncatedCycle",
    "build_pipeline",
    "compute_storm_windows",
    "get_preset",
    "preset_names",
]
