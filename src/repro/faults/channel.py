"""A per-client lossy view of the broadcast channel.

:class:`FaultyChannel` sits between one :class:`~repro.client.machine.
BroadcastClient` and the shared :class:`~repro.broadcast.channel.
BroadcastChannel`.  It exposes the same client-side surface (subscribe,
``cycle_started``, ``await_item``, ``await_old_version``, the timing
helpers), but filters everything through a pipeline of
:class:`~repro.faults.models.FaultModel` s:

* a cycle whose control segment is lost is never *installed*: the view
  keeps showing the previous cycle, reads block until the next heard
  cycle, and the client's listener is told via ``on_signal_lost`` so the
  scheme can doom its active queries exactly as it would for a
  disconnection -- reusing the (proved-safe) resynchronization path;
* a delayed control segment installs mid-cycle, with every slot that
  flew before synchronization marked lost;
* lost data slots cost the client the wait (it tunes in and hears
  noise), then force a retry on the item's next repetition or cycle;
  cache autoprefetches armed on lost slots never materialize
  (:meth:`prefetch_time` returns ``inf``).

The wrapper never touches the server side: faults are strictly a
receiver property, so the paper's scalability argument -- no client
influences the broadcast -- survives injection by construction.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.broadcast.channel import BroadcastChannel, ChannelListener
from repro.broadcast.program import BroadcastProgram, ItemRecord
from repro.faults.models import CycleFate, FaultModel
from repro.obs.trace import (
    EV_FAULT_READ_LOST,
    EV_FAULT_REPORT_DELAYED,
    EV_FAULT_REPORT_MISSED,
    EV_FAULT_TRUNCATED,
    Tracer,
    gate,
)
from repro.sim.events import Event
from repro.stats.metrics import (
    FAULT_CYCLES_TRUNCATED,
    FAULT_READS_LOST,
    FAULT_REPORTS_DELAYED,
    FAULT_REPORTS_MISSED,
    FAULT_SLOTS_LOST,
    MetricsRegistry,
)


class FaultyChannel:
    """Wraps a :class:`BroadcastChannel` with client-local fault injection."""

    def __init__(
        self,
        inner: BroadcastChannel,
        pipeline: Sequence[FaultModel],
        metrics: Optional[MetricsRegistry] = None,
        client_id: int = 0,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.inner = inner
        self.env = inner.env
        self.pipeline = list(pipeline)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.client_id = client_id
        self._trace_q = gate(tracer, "queries")
        self._trace_r = gate(tracer, "reads")
        self._listeners: List[ChannelListener] = []
        #: Bound ``on_interim_report`` methods, resolved at subscribe time
        #: (mirrors :class:`BroadcastChannel`: no per-publish getattr).
        self._interim_handlers: List = []
        self._cycle_started: Event = self.env.event()
        #: The last program whose control segment the client decoded --
        #: the client's *knowledge*, not what is physically on the air.
        self._program: Optional[BroadcastProgram] = None
        self._cycle_start_time = 0.0
        self._lost_slots: frozenset = frozenset()
        #: True while the installed program is the one currently on air.
        self._synced = False
        self._generation = 0
        inner.subscribe(self)

    # -- fed by the real channel -------------------------------------------

    def on_cycle_start(self, program: BroadcastProgram) -> None:
        self._generation += 1
        self._synced = False
        fate = CycleFate(
            cycle=program.cycle,
            total_slots=program.total_slots,
            control_slots=program.control_slots,
        )
        for model in self.pipeline:
            model.apply(fate)
        # A control segment that decodes only after the cycle ended, or a
        # lost control slot, degenerates to a lost control segment.
        if fate.control_delay >= program.total_slots:
            fate.control_lost = True
        if any(slot < program.control_slots for slot in fate.lost_slots):
            fate.control_lost = True
        if fate.truncated:
            self.metrics.count(FAULT_CYCLES_TRUNCATED)
            if self._trace_q is not None:
                self._trace_q.emit(
                    EV_FAULT_TRUNCATED,
                    client=self.client_id,
                    cycle=program.cycle,
                    lost_slots=fate.data_slots_lost,
                )
        self.metrics.count(FAULT_SLOTS_LOST, fate.data_slots_lost)

        if fate.control_lost:
            self.metrics.count(FAULT_REPORTS_MISSED)
            if self._trace_q is not None:
                self._trace_q.emit(
                    EV_FAULT_REPORT_MISSED,
                    client=self.client_id,
                    cycle=program.cycle,
                )
            self._signal_lost(program.cycle)
            return
        lost = frozenset(fate.lost_slots)
        if fate.control_delay > 0:
            self.metrics.count(FAULT_REPORTS_DELAYED)
            if self._trace_q is not None:
                self._trace_q.emit(
                    EV_FAULT_REPORT_DELAYED,
                    client=self.client_id,
                    cycle=program.cycle,
                    delay=fate.control_delay,
                )
            # Everything that flew before synchronization is gone too.
            lost = lost | frozenset(
                slot
                for slot in range(program.total_slots)
                if slot + 0.5 < fate.control_delay
            )
            self.env.process(
                self._install_later(program, lost, fate.control_delay)
            )
            return
        self._install(program, lost)

    def on_interim_report(self, report) -> None:
        """Mid-cycle reports only reach a synchronized client.

        Dropping one is safe by construction: the next cycle-start report
        covers every update of the cycle, so a missed interim report only
        delays an abort, never enables a bad commit.
        """
        if not self._synced:
            return
        for handler in list(self._interim_handlers):
            handler(report)

    def _install_later(self, program, lost, delay):
        generation = self._generation
        yield self.env.timeout(delay)
        if generation != self._generation:  # pragma: no cover - defensive;
            return  # the delay is clamped below one cycle in on_cycle_start
        self._install(program, lost)

    def _install(self, program: BroadcastProgram, lost: frozenset) -> None:
        self._program = program
        # Slot timing is anchored at the true cycle start even when the
        # control segment decoded late: the air does not wait.
        self._cycle_start_time = self.inner.cycle_start_time
        self._lost_slots = lost
        self._synced = True
        for listener in list(self._listeners):
            listener.on_cycle_start(program)
        event, self._cycle_started = self._cycle_started, self.env.event()
        event.succeed(program)

    def _signal_lost(self, cycle: int) -> None:
        for listener in list(self._listeners):
            handler = getattr(listener, "on_signal_lost", None)
            if handler is not None:
                handler(cycle)

    # -- client-side surface (mirrors BroadcastChannel) ---------------------

    def subscribe(self, listener: ChannelListener) -> None:
        self._listeners.append(listener)
        handler = getattr(listener, "on_interim_report", None)
        if handler is not None:
            self._interim_handlers.append(handler)

    def unsubscribe(self, listener: ChannelListener) -> None:
        """Idempotent, like :meth:`BroadcastChannel.unsubscribe`."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            return
        handler = getattr(listener, "on_interim_report", None)
        if handler is not None:
            try:
                self._interim_handlers.remove(handler)
            except ValueError:  # pragma: no cover - defensive
                pass

    @property
    def program(self) -> BroadcastProgram:
        if self._program is None:
            raise RuntimeError("The channel is not broadcasting yet")
        return self._program

    @property
    def on_air(self) -> bool:
        return self._program is not None

    @property
    def current_cycle(self) -> int:
        return self.program.cycle

    @property
    def cycle_start_time(self) -> float:
        return self._cycle_start_time

    def cycle_started(self) -> Event:
        """Event firing at the next cycle start the client *hears*."""
        return self._cycle_started

    def delivery_time(self, slot: int) -> float:
        return self._cycle_start_time + slot + 0.5

    def prefetch_time(self, slot: int) -> float:
        """Autoprefetches armed on a lost bucket never land."""
        if slot in self._lost_slots:
            return math.inf
        return self.delivery_time(slot)

    def relative_now(self) -> float:
        return self.env.now - self._cycle_start_time

    # -- client-side tuning ---------------------------------------------------

    def _receivable(self, slot: int) -> bool:
        if slot in self._lost_slots:
            self.metrics.count(FAULT_READS_LOST)
            if self._trace_r is not None:
                self._trace_r.emit(
                    EV_FAULT_READ_LOST,
                    client=self.client_id,
                    cycle=self.program.cycle,
                    slot=slot,
                )
            return False
        return True

    def await_item(self, item: int):
        """Process: wait for ``item``; lost buckets cost the wait and force
        a retry on the next repetition or the next heard cycle."""
        while True:
            if self._program is not None and self._synced:
                program = self._program
                slot = program.next_slot_of(item, self.relative_now())
                while slot is not None:
                    yield self.env.timeout(self.delivery_time(slot) - self.env.now)
                    if self._receivable(slot):
                        return (program.record_of(item), program.cycle)
                    # This copy was lost.  The delivery instant is
                    # inclusive, so re-asking at the same instant would
                    # return the same slot forever; resume strictly
                    # after it (integer slots: next copy >= slot + 1).
                    slot = program.next_slot_of(item, slot + 1)
            yield self.cycle_started()

    def await_old_version(self, item: int, cycle: int):
        """Process: like :meth:`BroadcastChannel.await_old_version`, with
        per-slot loss applied to both the current and the overflow copy."""
        while True:
            if self._program is None or not self._synced:
                yield self.cycle_started()
                continue
            program = self._program
            now_rel = self.relative_now()

            current = program.record_of(item)
            if current.version <= cycle:
                slot = program.next_slot_of(item, now_rel)
                while slot is not None:
                    yield self.env.timeout(self.delivery_time(slot) - self.env.now)
                    if self._receivable(slot):
                        return (current, True, None)
                    # Lost copy: resume strictly after it (the inclusive
                    # delivery instant would yield the same slot again).
                    slot = program.next_slot_of(item, slot + 1)
            else:
                hit = program.old_version_at(item, cycle)
                if hit is None:
                    # Required version discarded from the air: abort.
                    return (None, False, None)
                old, slot = hit
                # Delivery-instant inclusive (see BroadcastChannel).
                if slot + 0.5 >= now_rel:
                    yield self.env.timeout(self.delivery_time(slot) - self.env.now)
                    if self._receivable(slot):
                        record = ItemRecord(
                            item=old.item,
                            value=old.value,
                            version=old.version,
                            writer=old.writer,
                        )
                        return (record, True, old.valid_to)
                    # An old version rides exactly one slot per cycle;
                    # losing it means waiting for the next heard cycle.
            # Missed this cycle's copy; try again next heard cycle.
            yield self.cycle_started()
