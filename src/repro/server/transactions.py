"""The server's update workload: strict-2PL transactions with Zipf access.

Each broadcast cycle, ``N`` transactions commit at the server.  Following
the performance model of Section 5.1:

* updates are drawn from a Zipf distribution over ``1..UpdateRange``
  rotated by ``offset`` (the deviation from the client read pattern);
* server reads are four times as frequent as updates, drawn from the full
  broadcast range with "zero offset with the update set" -- i.e. rotated
  by the *same* offset so the server's read and write hot-spots coincide;
* every transaction reads an item before writing it (the paper's standing
  assumption in Section 3.3), so the write set is a subset of the read
  set.

Transactions are executed under strict two-phase locking.  Since strict
2PL histories are conflict-equivalent to the commit-order serial history,
we execute the transactions serially in commit order while recording the
conflict (dependency / precedence) edges the SGT method needs.  Claim 1 of
the paper -- no edges flow backwards into earlier cycles -- holds by
construction, exactly as it does for any strict history.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.config import ServerParameters
from repro.graph.history import History
from repro.graph.sgraph import GraphDiff, SerializationGraph, TxnId
from repro.server.database import Database, Version
from repro.server.versions import VersionStore
from repro.stats.zipf import OffsetZipfGenerator


@dataclass(frozen=True)
class ServerTransaction:
    """A committed server transaction: its id, read set and write set."""

    tid: TxnId
    readset: FrozenSet[int]
    writeset: FrozenSet[int]

    def __post_init__(self) -> None:
        if not self.writeset <= self.readset:
            raise ValueError(
                f"{self.tid}: write set must be a subset of the read set"
            )


@dataclass(frozen=True)
class CycleOutcome:
    """Everything the broadcast builder needs about one cycle's commits.

    Attributes
    ----------
    cycle:
        The cycle *during* which these transactions committed.  Their
        values become visible (broadcast) at cycle ``cycle + 1``.
    transactions:
        The committed transactions, in commit order.
    updated_items:
        Union of the write sets.
    first_writers:
        For each updated item, the first transaction of this cycle that
        wrote it (the augmented invalidation report of Section 3.3).
    diff:
        The serialization-graph difference to broadcast: every conflict
        edge whose head committed this cycle.
    """

    cycle: int
    transactions: Tuple[ServerTransaction, ...]
    updated_items: FrozenSet[int]
    first_writers: Dict[int, TxnId]
    diff: GraphDiff


def merge_outcomes(parts: List[CycleOutcome]) -> CycleOutcome:
    """Combine the per-interval partial outcomes of one cycle (§7's
    sub-cycle report extension) into the full cycle outcome the next
    cycle's main report announces."""
    if not parts:
        raise ValueError("Nothing to merge")
    cycle = parts[0].cycle
    if any(p.cycle != cycle for p in parts):
        raise ValueError("Cannot merge outcomes from different cycles")
    transactions: List[ServerTransaction] = []
    updated: Set[int] = set()
    first_writers: Dict[int, TxnId] = {}
    nodes: Set[TxnId] = set()
    edges: Set[Tuple[TxnId, TxnId]] = set()
    for part in parts:
        transactions.extend(part.transactions)
        updated |= part.updated_items
        for item, tid in part.first_writers.items():
            # Earlier intervals ran first: keep the earliest writer.
            if item not in first_writers:
                first_writers[item] = tid
        nodes |= part.diff.nodes
        edges |= part.diff.edges
    return CycleOutcome(
        cycle=cycle,
        transactions=tuple(transactions),
        updated_items=frozenset(updated),
        first_writers=first_writers,
        diff=GraphDiff(cycle=cycle, nodes=frozenset(nodes), edges=frozenset(edges)),
    )


class _RestrictedGenerator:
    """A Zipf generator restricted to a subset of its support.

    The sharded server (:mod:`repro.shard`) gives each shard its own
    engine but wants the *global* Zipf access skew: draws from the
    underlying generator are kept only when they land on this shard's
    items, so an item's relative popularity within the shard matches its
    global popularity exactly.  Rejection is capped; the rare exhausted
    draw falls back onto the allowed support deterministically (indexed
    by the last rejected item) so the engine can never stall.
    """

    _REJECT_CAP = 64

    def __init__(self, inner: OffsetZipfGenerator, allowed: FrozenSet[int]) -> None:
        self._inner = inner
        self._allowed = allowed
        self._support = sorted(item for item in inner.support() if item in allowed)
        if not self._support:
            raise ValueError("restriction leaves the generator with no support")

    def support(self) -> List[int]:
        return list(self._support)

    def probability(self, item: int) -> float:
        return self._inner.probability(item) if item in self._allowed else 0.0

    def sample(self) -> int:
        item = 0
        for _ in range(self._REJECT_CAP):
            item = self._inner.sample()
            if item in self._allowed:
                return item
        return self._support[(item - 1) % len(self._support)]

    def sample_distinct(self, count: int) -> List[int]:
        count = min(count, len(self._support))
        picked: List[int] = []
        seen: Set[int] = set()
        budget = self._REJECT_CAP * count + self._REJECT_CAP
        while len(picked) < count and budget > 0:
            budget -= 1
            item = self._inner.sample()
            if item in self._allowed and item not in seen:
                seen.add(item)
                picked.append(item)
        if len(picked) < count:
            # Deterministic fill from the hottest remaining allowed items.
            ranked = sorted(
                (item for item in self._support if item not in seen),
                key=lambda item: (-self._inner.probability(item), item),
            )
            picked.extend(ranked[: count - len(picked)])
        return picked


class TransactionEngine:
    """Generates and executes the per-cycle server update workload."""

    def __init__(
        self,
        params: ServerParameters,
        database: Database,
        version_store: Optional[VersionStore] = None,
        rng: Optional[random.Random] = None,
        keep_history: bool = False,
        interleaved: bool = False,
        restrict_items: Optional[FrozenSet[int]] = None,
    ) -> None:
        self.params = params
        self.database = database
        self.version_store = version_store
        self._rng = rng if rng is not None else random.Random()
        self._executor = None
        #: Diagnostics of the most recent interleaved batch.
        self.last_interleave = None
        if interleaved:
            from repro.server.interleave import InterleavedExecutor

            self._executor = InterleavedExecutor(
                rng=random.Random(self._rng.getrandbits(64))
            )
        self._update_gen = OffsetZipfGenerator(
            n=params.update_range,
            theta=params.theta,
            offset=params.offset,
            universe=params.broadcast_size,
            rng=self._rng,
        )
        self._read_gen = OffsetZipfGenerator(
            n=params.broadcast_size,
            theta=params.theta,
            offset=params.offset,
            universe=params.broadcast_size,
            rng=self._rng,
        )
        if restrict_items is not None:
            # Sharded server (repro.shard): this engine owns one shard's
            # slice of the item space; every draw is filtered onto it.
            self._update_gen = _RestrictedGenerator(
                self._update_gen, restrict_items
            )
            self._read_gen = _RestrictedGenerator(
                self._read_gen, restrict_items
            )
        #: Cross-cycle conflict bookkeeping.
        self._last_writer: Dict[int, TxnId] = {}
        self._readers_since_write: Dict[int, Set[TxnId]] = {}
        #: Full committed-transaction graph, for tests and Table 1 stats.
        self.graph = SerializationGraph()
        #: Optional complete operation history (oracle for tests).
        self.history: Optional[History] = History() if keep_history else None
        self._outcomes: List[CycleOutcome] = []

    # -- workload generation ----------------------------------------------

    def _generate_transaction(self, tid: TxnId) -> ServerTransaction:
        """Draw one transaction's read and write sets."""
        n_updates = self.params.updates_per_transaction
        n_extra_reads = n_updates * (self.params.reads_per_update - 1)
        writes = self._update_gen.sample_distinct(n_updates)
        reads: List[int] = list(writes)
        seen = set(writes)
        attempts = 0
        while len(reads) < n_updates + n_extra_reads and attempts < 50 * (
            n_extra_reads + 1
        ):
            item = self._read_gen.sample()
            attempts += 1
            if item not in seen:
                seen.add(item)
                reads.append(item)
        return ServerTransaction(
            tid=tid, readset=frozenset(reads), writeset=frozenset(writes)
        )

    # -- execution ----------------------------------------------------------

    def run_cycle(self, cycle: int) -> CycleOutcome:
        """Commit this cycle's ``N`` transactions and return the outcome.

        Values written become visible at cycle ``cycle + 1``.
        """
        outcome = self.run_batch(
            cycle, range(self.params.transactions_per_cycle)
        )
        self._outcomes.append(outcome)
        return outcome

    def run_batch(self, cycle: int, seqs) -> CycleOutcome:
        """Commit the transactions with sequence numbers ``seqs`` of cycle
        ``cycle``.

        Used directly by the sub-cycle report extension (§7): the server
        loop splits a cycle's commits over the report intervals and merges
        the partial outcomes with :func:`merge_outcomes`.
        """
        visible_at = cycle + 1
        committed: List[ServerTransaction] = []
        updated: Set[int] = set()
        first_writers: Dict[int, TxnId] = {}
        diff_edges: Set[Tuple[TxnId, TxnId]] = set()
        diff_nodes: Set[TxnId] = set()

        generated = [
            self._generate_transaction(TxnId(cycle=cycle, seq=seq)) for seq in seqs
        ]
        if self._executor is not None:
            # Interleaved strict-2PL execution: the commit order emerges
            # from actual lock contention; the bookkeeping below then runs
            # in that order (conflict-equivalent by strictness).
            result = self._executor.run(generated)
            generated = result.commit_order
            self.last_interleave = result

        for txn in generated:
            tid = txn.tid
            committed.append(txn)
            diff_nodes.add(tid)
            self.graph.add_node(tid, cycle=cycle)

            # Reads first (strict 2PL, read-before-write): dependency edges
            # from the last writer of each item read.
            for item in sorted(txn.readset):
                if self.history is not None:
                    self.history.read(tid, item)
                writer = self._last_writer.get(item)
                if writer is not None and writer != tid:
                    diff_edges.add((writer, tid))
                    self.graph.add_edge(writer, tid)
                self._readers_since_write.setdefault(item, set()).add(tid)

            # Then the writes: ww edge from the last writer, rw (precedence)
            # edges from every reader since that write.
            for item in sorted(txn.writeset):
                if self.history is not None:
                    self.history.write(tid, item)
                writer = self._last_writer.get(item)
                if writer is not None and writer != tid:
                    diff_edges.add((writer, tid))
                    self.graph.add_edge(writer, tid)
                for reader in self._readers_since_write.get(item, ()):
                    if reader != tid:
                        diff_edges.add((reader, tid))
                        self.graph.add_edge(reader, tid)
                self._readers_since_write[item] = set()
                self._last_writer[item] = tid

                previous = self.database.current(item)
                self.database.write(item, visible_cycle=visible_at, writer=tid)
                if self.version_store is not None and previous.cycle < visible_at:
                    # The previous value was current up to this cycle; park
                    # it in the old-version area of the broadcast.
                    self.version_store.record_supersedure(
                        previous, superseded_at=visible_at
                    )

                updated.add(item)
                first_writers.setdefault(item, tid)

            if self.history is not None:
                self.history.commit(tid)

        if self.version_store is not None:
            self.version_store.evict_expired(visible_at)

        return CycleOutcome(
            cycle=cycle,
            transactions=tuple(committed),
            updated_items=frozenset(updated),
            first_writers=first_writers,
            diff=GraphDiff(
                cycle=cycle,
                nodes=frozenset(diff_nodes),
                edges=frozenset(diff_edges),
            ),
        )

    def record_outcome(self, outcome: CycleOutcome) -> None:
        """Log a (possibly merged) cycle outcome for later inspection."""
        self._outcomes.append(outcome)

    # -- inspection ----------------------------------------------------------

    @property
    def outcomes(self) -> List[CycleOutcome]:
        return list(self._outcomes)

    def last_writer_of(self, item: int) -> Optional[TxnId]:
        """Committed last writer of ``item`` (broadcast item tag)."""
        return self._last_writer.get(item)

    def prune_graph_before(self, cycle: int) -> int:
        """Bound server-side graph memory (mirrors the client's Lemma 1)."""
        return self.graph.prune_before(cycle)
