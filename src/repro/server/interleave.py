"""Interleaved execution of server transactions under strict 2PL.

The default engine executes each cycle's transactions in commit order --
sound, because every strict-2PL history is conflict-equivalent to the
serial history in commit order.  This module supplies the mechanism that
justifies that shortcut: it actually *runs* the transactions
concurrently (one operation per scheduling step, round-robin) against a
:class:`~repro.server.locking.LockManager`, resolving deadlocks by
victim restart, and returns

* the commit order that emerged (which the engine then uses for its
  bookkeeping, keeping broadcast content identical in distribution), and
* the genuine interleaved :class:`~repro.graph.history.History`, which
  the test suite checks for strictness and for conflict-equivalence with
  the commit order.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.graph.history import History, OpType
from repro.graph.sgraph import TxnId
from repro.server.locking import LockManager, LockMode, LockOutcome
from repro.server.transactions import ServerTransaction


@dataclass
class InterleaveStats:
    """What happened while executing one batch."""

    deadlocks: int = 0
    blocks: int = 0
    steps: int = 0
    serial_fallback: bool = False


@dataclass
class InterleaveResult:
    """Outcome of one interleaved batch execution."""

    commit_order: List[ServerTransaction]
    history: History
    stats: InterleaveStats


class _Plan:
    """One transaction's operation list and progress cursor."""

    def __init__(self, txn: ServerTransaction, rng: random.Random) -> None:
        self.txn = txn
        self._rng = rng
        self.ops: List[Tuple[OpType, int, LockMode]] = self._make_ops()
        self.cursor = 0
        self.restarts = 0

    def _make_ops(self) -> List[Tuple[OpType, int, LockMode]]:
        # Read-before-write (the paper's standing assumption): all reads
        # first, then the writes in key order.  Reads of items that will
        # later be written take an exclusive lock immediately (the classic
        # update-lock discipline) -- lock *upgrades* under contention
        # stall behind queued waiters in a way the waits-for graph cannot
        # see, so they are avoided rather than resolved.
        reads = list(self.txn.readset)
        self._rng.shuffle(reads)
        return [
            (
                OpType.READ,
                item,
                LockMode.EXCLUSIVE if item in self.txn.writeset else LockMode.SHARED,
            )
            for item in reads
        ] + [
            (OpType.WRITE, item, LockMode.EXCLUSIVE)
            for item in sorted(self.txn.writeset)
        ]

    @property
    def finished(self) -> bool:
        return self.cursor >= len(self.ops)

    @property
    def next_op(self) -> Tuple[OpType, int, LockMode]:
        return self.ops[self.cursor]

    def restart(self) -> None:
        """Start over with a *reshuffled* read order.

        Replaying the identical acquisition order lets the same waits-for
        cycle re-form indefinitely (two symmetric victims can ping-pong
        until the step budget runs out); a fresh shuffle breaks the
        symmetry, so repeated livelock has vanishing probability.
        """
        self.cursor = 0
        self.restarts += 1
        self.ops = self._make_ops()


class InterleavedExecutor:
    """Runs a batch of transactions concurrently under strict 2PL."""

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self._rng = rng if rng is not None else random.Random()

    def run(self, transactions: Sequence[ServerTransaction]) -> InterleaveResult:
        """Execute ``transactions`` to commit and return the emerged order.

        Every transaction commits (read-only deadlock victims restart);
        should scheduling ever stall past a generous step budget, the
        remaining transactions are finished serially (recorded in
        ``stats.serial_fallback`` -- the test suite asserts this never
        triggers at model scale).
        """
        stats = InterleaveStats()
        history = History()
        manager = LockManager()
        plans: Dict[TxnId, _Plan] = {
            txn.tid: _Plan(txn, self._rng) for txn in transactions
        }
        runnable: Deque[TxnId] = deque(plan.txn.tid for plan in plans.values())
        blocked: Set[TxnId] = set()
        committed: List[ServerTransaction] = []
        budget = 50 * sum(len(p.ops) + 1 for p in plans.values()) + 100

        def commit(tid: TxnId) -> None:
            history.commit(tid)
            committed.append(plans[tid].txn)
            for woken, _item in manager.release_all(tid):
                if woken in blocked:
                    blocked.discard(woken)
                    runnable.append(woken)

        while len(committed) < len(plans) and stats.steps < budget:
            stats.steps += 1
            if not runnable:
                # Everyone is blocked -- impossible while the waits-for
                # graph is kept acyclic, but guard anyway.
                break
            tid = runnable.popleft()
            plan = plans[tid]
            if plan.finished:
                continue
            op_type, item, mode = plan.next_op
            outcome = manager.acquire(tid, item, mode)
            if outcome is LockOutcome.GRANTED:
                if op_type is OpType.READ:
                    history.read(tid, item)
                else:
                    history.write(tid, item)
                plan.cursor += 1
                if plan.finished:
                    commit(tid)
                else:
                    runnable.append(tid)
            elif outcome is LockOutcome.BLOCKED:
                stats.blocks += 1
                blocked.add(tid)
            else:  # deadlock victim: release everything and start over
                stats.deadlocks += 1
                plan.restart()
                self._undo(history, tid)
                for woken, _item in manager.release_all(tid):
                    if woken in blocked:
                        blocked.discard(woken)
                        runnable.append(woken)
                runnable.append(tid)

        if len(committed) < len(plans):
            # Serial completion of whatever is left (never expected).
            stats.serial_fallback = True
            for tid, plan in plans.items():
                if plan.txn in committed:
                    continue
                self._undo(history, tid)
                for op_type, item, _mode in plan.ops:
                    if op_type is OpType.READ:
                        history.read(tid, item)
                    else:
                        history.write(tid, item)
                history.commit(tid)
                committed.append(plan.txn)

        return InterleaveResult(
            commit_order=committed, history=history, stats=stats
        )

    @staticmethod
    def _undo(history: History, tid: TxnId) -> None:
        """Erase a restarted victim's partial operations.

        A restarted transaction re-executes from scratch; since it held
        its locks strictly, nobody observed its footprint, so erasing
        keeps the recorded history equivalent to one in which the victim
        simply started later.
        """
        history.discard(tid)
