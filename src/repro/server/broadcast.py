"""Assembling each cycle's broadcast program.

The builder turns the server's state (database snapshot, retained old
versions, the previous cycle's commit outcome) into the physical
:class:`~repro.broadcast.program.BroadcastProgram` the channel transmits,
honouring the merged :class:`~repro.core.control.BroadcastRequirements`
of the attached clients and charging every segment its wire size so the
latency results reflect the size results.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.broadcast.program import (
    BroadcastProgram,
    Bucket,
    ItemRecord,
    MultiversionOrganization,
    OldVersionRecord,
)
from repro.broadcast.schedule import FlatSchedule, Schedule
from repro.config import ServerParameters
from repro.core.control import (
    BroadcastRequirements,
    ControlInfo,
    InvalidationReport,
    report_from_updates,
)
from repro.graph.sgraph import GraphDiff
from repro.obs.trace import EV_PROGRAM_BUILD, Tracer, gate
from repro.server.database import Database
from repro.server.itemstate import ItemStateStore
from repro.server.sizing import SizeModel
from repro.server.transactions import CycleOutcome


def bucket_of_item(item: int, items_per_bucket: int) -> int:
    """Logical page number of ``item`` in the flat layout (cache grain)."""
    return (item - 1) // items_per_bucket


class ProgramBuilder:
    """Builds one :class:`BroadcastProgram` per cycle.

    In the flat and overflow organizations every item keeps its position
    inside the data segment from cycle to cycle, so the builder maintains
    a *persistent* per-item slot index and copy-on-writes only the
    buckets whose records actually changed that cycle -- the items the
    commit outcome updated plus the items whose on-air old-version set
    changed (supersedure or retention eviction, tracked by the item-state
    store's dirty feed).  The clustered organization interleaves old
    versions with the data, shifting positions whenever the retained set
    changes, and keeps the full per-cycle rebuild.  ``incremental=False``
    forces the full rebuild everywhere; the differential test suite and
    the ``repro bench hotpath`` suite compare the two paths.

    When ``item_state`` is a columnar store (``item_state.columnar``),
    record construction and report-bucket projection run off its dense
    arrays instead of per-item version-chain searches; the dict-backed
    reference path is bit-identical (pinned by the columnar oracle
    suite).  ``version_store`` remains the old-version store and is
    ``None`` for schemes that broadcast no old versions -- it may be the
    same object as ``item_state``.
    """

    def __init__(
        self,
        params: ServerParameters,
        database: Database,
        version_store: Optional[ItemStateStore] = None,
        schedule: Optional[Schedule] = None,
        requirements: Optional[BroadcastRequirements] = None,
        bits_per_unit: int = 32,
        tracer: Optional[Tracer] = None,
        incremental: bool = True,
        item_state: Optional[ItemStateStore] = None,
    ) -> None:
        self.params = params
        self.database = database
        self.version_store = version_store
        self.item_state = item_state if item_state is not None else version_store
        #: The columnar store to read fast paths off, or None for the
        #: dict-backed reference path.
        self._columnar = (
            self.item_state
            if self.item_state is not None and self.item_state.columnar
            else None
        )
        self.schedule = schedule or FlatSchedule(params.broadcast_size)
        self.requirements = requirements or BroadcastRequirements()
        self.size_model = SizeModel(params, bits_per_unit=bits_per_unit)
        self.incremental = incremental
        self._trace_c = gate(tracer, "cycles")
        self._recent_reports: Deque[InvalidationReport] = deque(
            maxlen=max(1, self.requirements.report_window)
        )
        # -- persistent cycle-build state (flat/overflow layouts only) ----
        #: The item order the cached layout was computed for.
        self._layout_order: Optional[List[int]] = None
        #: item -> sorted tuple of data-bucket offsets (shared, read-only).
        self._layout: Optional[Dict[int, Tuple[int, ...]]] = None
        #: data-bucket offset -> the items riding in that bucket.
        self._bucket_chunks: List[Tuple[int, ...]] = []
        #: The previous cycle's data buckets and records (COW sources).
        self._cached_buckets: List[Bucket] = []
        self._cached_records: Dict[int, ItemRecord] = {}

        if self.requirements.needs_old_versions and self.version_store is None:
            raise ValueError(
                "Old versions requested but no VersionStore supplied"
            )

    # -- control segment -----------------------------------------------------

    def _build_report(
        self, cycle: int, outcome: Optional[CycleOutcome]
    ) -> InvalidationReport:
        if outcome is None:
            return InvalidationReport(cycle=cycle)
        store = self._columnar
        buckets_of = (
            store.buckets_of
            if store is not None and store.has_bucket_column
            else None
        )
        return report_from_updates(
            cycle=cycle,
            updated_items=outcome.updated_items,
            first_writers=(
                outcome.first_writers if self.requirements.needs_sgt else None
            ),
            items_per_bucket=self.params.items_per_bucket,
            buckets_of=buckets_of,
        )

    def _control_units(self, report: InvalidationReport, diff: Optional[GraphDiff]) -> int:
        p = self.params
        units = len(report.updated_items) * p.key_size
        if self.requirements.needs_sgt and diff is not None:
            span = self.version_store.retention if self.version_store else 8
            edge_bits = (
                self.size_model.tid_bits()
                + self.size_model.tid_with_cycle_bits(max(2, span))
            )
            units += math.ceil(
                diff.edge_count * edge_bits / self.size_model.bits_per_unit
            )
            units += len(report.first_writers) * p.key_size
        for windowed in self._recent_reports:
            units += len(windowed.updated_items) * p.key_size
        return max(1, units)

    # -- data segment -----------------------------------------------------------

    def _item_record(self, item: int, cycle: int) -> ItemRecord:
        version = self.database.value_at(item, cycle)
        has_old = bool(
            self.version_store is not None
            and self.requirements.needs_old_versions
            and self.version_store.on_air(item)
        )
        return ItemRecord(
            item=item,
            value=version.value,
            version=version.cycle,
            writer=version.writer,
            has_old_versions=has_old,
        )

    def _old_records(self) -> List[OldVersionRecord]:
        """All retained versions, newest supersedure first (Figure 2(b))."""
        assert self.version_store is not None
        if self.version_store.columnar:
            # The columnar store keeps the directory incrementally, in
            # exactly this order (cohorts by descending supersedure
            # cycle, items ascending within a cohort).
            return list(self.version_store.overflow_records())
        records: List[Tuple[int, OldVersionRecord]] = []
        for item, retained in self.version_store.all_on_air().items():
            for rv in retained:
                records.append(
                    (
                        rv.superseded_at,
                        OldVersionRecord(
                            item=item,
                            value=rv.version.value,
                            version=rv.version.cycle,
                            valid_to=rv.valid_to,
                            writer=rv.version.writer,
                        ),
                    )
                )
        records.sort(key=lambda pair: (-pair[0], pair[1].item))
        return [record for _, record in records]

    # -- assembly ---------------------------------------------------------------

    def build(self, cycle: int, outcome: Optional[CycleOutcome]) -> BroadcastProgram:
        """Build the program for broadcast cycle ``cycle``.

        ``outcome`` is the commit outcome of cycle ``cycle - 1`` (None for
        the very first cycle): its updates are what the invalidation
        report announces and its values are what this cycle's snapshot
        carries.
        """
        p = self.params
        report = self._build_report(cycle, outcome)
        diff = outcome.diff if (outcome and self.requirements.needs_sgt) else None

        control = ControlInfo(
            cycle=cycle,
            invalidation=report,
            graph_diff=diff,
            window=tuple(self._recent_reports),
            size_units=0,  # replaced below once computed
        )
        control_units = self._control_units(report, diff)
        control = ControlInfo(
            cycle=cycle,
            invalidation=report,
            graph_diff=diff,
            window=tuple(self._recent_reports),
            size_units=control_units,
        )
        control_slots = max(1, math.ceil(control_units / p.bucket_size))

        organization = MultiversionOrganization.NONE
        index_slots = 0
        overflow_buckets: List[Bucket] = []
        order = self.schedule.item_order()

        if self.requirements.needs_old_versions:
            organization = (
                MultiversionOrganization.CLUSTERED
                if self.requirements.organization == "clustered"
                else MultiversionOrganization.OVERFLOW
            )

        layout: Optional[Dict[int, Tuple[int, ...]]] = None
        records: Optional[Dict[int, ItemRecord]] = None
        if organization is MultiversionOrganization.CLUSTERED:
            data_buckets = self._clustered_data_buckets(order, cycle)
            # Item positions shift, so a directory segment rides along.
            span = self.version_store.retention if self.version_store else 1
            index_units = self.size_model.multiversion_clustered(
                len(report.updated_items), max(1, span)
            ).index_units
            index_slots = max(1, math.ceil(index_units / p.bucket_size))
        else:
            data_buckets, layout, records = self._cycle_data_buckets(
                order, cycle, outcome
            )
            if organization is MultiversionOrganization.OVERFLOW:
                overflow_buckets = self._overflow_buckets()

        self._recent_reports.append(report)

        program = BroadcastProgram(
            cycle=cycle,
            control=control,
            data_buckets=data_buckets,
            overflow_buckets=overflow_buckets,
            control_slots=control_slots,
            index_slots=index_slots,
            organization=organization,
            layout=layout,
            records=records,
        )
        if self._trace_c is not None:
            self._trace_c.emit(
                EV_PROGRAM_BUILD,
                cycle=cycle,
                control_units=control_units,
                updated=len(report.updated_items),
                old_versions=program.total_old_versions,
                organization=organization.value,
                **program.slot_breakdown(),
            )
        return program

    def _flat_data_buckets(self, order: List[int], cycle: int) -> List[Bucket]:
        per_bucket = self.params.items_per_bucket
        store = self._columnar
        buckets: List[Bucket] = []
        if store is not None:
            needs_old = (
                self.version_store is not None
                and self.requirements.needs_old_versions
            )
            records_for = store.records_for
            for index, start in enumerate(range(0, len(order), per_bucket)):
                chunk = order[start : start + per_bucket]
                buckets.append(
                    Bucket(
                        index=index,
                        records=records_for(chunk, cycle, needs_old),
                    )
                )
            return buckets
        for index, start in enumerate(range(0, len(order), per_bucket)):
            chunk = order[start : start + per_bucket]
            records = tuple(self._item_record(item, cycle) for item in chunk)
            buckets.append(Bucket(index=index, records=records))
        return buckets

    def _cycle_data_buckets(
        self, order: List[int], cycle: int, outcome: Optional[CycleOutcome]
    ) -> Tuple[List[Bucket], Optional[Dict[int, Tuple[int, ...]]], Optional[Dict[int, ItemRecord]]]:
        """The flat/overflow data segment, rebuilt copy-on-write.

        Returns ``(buckets, layout, records)``; layout and records feed
        the program's index directly so it never re-scans the buckets.
        The first cycle (and any cycle whose schedule order changed, or a
        builder with ``incremental=False``) pays the full O(DbSize) build;
        afterwards only the buckets holding changed records are recreated.
        """
        # Items whose on-air old-version set changed since the last build:
        # their records' has_old_versions pointer must be recomputed even
        # when the value itself did not change (retention evictions).
        dirty = (
            self.version_store.consume_dirty()
            if self.version_store is not None
            else frozenset()
        )
        if not self.incremental:
            return self._flat_data_buckets(order, cycle), None, None
        if self._layout is None or order != self._layout_order:
            buckets = self._flat_data_buckets(order, cycle)
            self._prime_layout(order, buckets)
            records = {
                record.item: record
                for bucket in buckets
                for record in bucket.records
            }
        else:
            changed = set(outcome.updated_items) if outcome is not None else set()
            changed |= dirty
            # Copy-on-write: the previous program keeps its own records
            # dict and bucket list untouched (a desynced faulty client may
            # still be reading the old cycle's view).
            records = dict(self._cached_records)
            buckets = self._cached_buckets
            if changed:
                buckets = list(buckets)
                touched: set = set()
                layout = self._layout
                store = self._columnar
                needs_old = (
                    self.version_store is not None
                    and self.requirements.needs_old_versions
                )
                for item in changed:
                    offsets = layout.get(item)
                    if offsets is None:
                        continue  # updated item is not on the air
                    records[item] = (
                        store.item_record(item, cycle, needs_old)
                        if store is not None
                        else self._item_record(item, cycle)
                    )
                    touched.update(offsets)
                for offset in touched:
                    chunk = self._bucket_chunks[offset]
                    buckets[offset] = Bucket(
                        index=offset,
                        records=tuple(records[item] for item in chunk),
                    )
        self._cached_buckets = buckets
        self._cached_records = records
        return buckets, self._layout, records

    def _prime_layout(self, order: List[int], buckets: List[Bucket]) -> None:
        """Build the persistent per-item slot index from a full layout."""
        layout: Dict[int, List[int]] = {}
        chunks: List[Tuple[int, ...]] = []
        for offset, bucket in enumerate(buckets):
            chunk = bucket.items
            chunks.append(chunk)
            for item in chunk:
                layout.setdefault(item, []).append(offset)
        self._layout = {item: tuple(offs) for item, offs in layout.items()}
        self._bucket_chunks = chunks
        self._layout_order = list(order)

    def _clustered_data_buckets(self, order: List[int], cycle: int) -> List[Bucket]:
        """Figure 2(a): each item immediately followed by its old versions.

        Buckets are filled greedily by record count; current and old
        records share bucket capacity, so positions drift between cycles.
        """
        assert self.version_store is not None
        # Drain the change feed even though clustered rebuilds fully:
        # only the incremental flat/overflow path consumes it, so without
        # this the dirty set grows for the whole run.
        self.version_store.consume_dirty()
        store = self._columnar
        per_bucket = self.params.items_per_bucket
        buckets: List[Bucket] = []
        cur_records: List[ItemRecord] = []
        cur_old: List[OldVersionRecord] = []
        used = 0

        def flush() -> None:
            nonlocal cur_records, cur_old, used
            if cur_records or cur_old:
                buckets.append(
                    Bucket(
                        index=len(buckets),
                        records=tuple(cur_records),
                        old_records=tuple(cur_old),
                    )
                )
            cur_records, cur_old, used = [], [], 0

        for item in order:
            olds = [
                OldVersionRecord(
                    item=item,
                    value=rv.version.value,
                    version=rv.version.cycle,
                    valid_to=rv.valid_to,
                    writer=rv.version.writer,
                )
                for rv in reversed(self.version_store.on_air(item))
            ]
            needed = 1 + len(olds)
            if used and used + needed > per_bucket:
                flush()
            cur_records.append(
                store.item_record(item, cycle, True)
                if store is not None
                else self._item_record(item, cycle)
            )
            cur_old.extend(olds)
            used += needed
            if used >= per_bucket:
                flush()
        flush()
        return buckets

    def _overflow_buckets(self) -> List[Bucket]:
        per_bucket = self.params.items_per_bucket
        old_records = self._old_records()
        buckets: List[Bucket] = []
        for index, start in enumerate(range(0, len(old_records), per_bucket)):
            chunk = tuple(old_records[start : start + per_bucket])
            buckets.append(Bucket(index=index, old_records=chunk))
        return buckets
