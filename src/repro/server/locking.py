"""Strict two-phase locking: lock table, waits-for graph, deadlocks.

The paper assumes nothing about server concurrency control beyond "a
more practical method, e.g., most probably two-phase locking, may be
employed" (Section 3.3).  The default engine executes transactions in
commit order (every strict-2PL history is conflict-equivalent to one);
this module provides the *actual* mechanism so that the interleaved
engine mode can execute genuinely concurrent server transactions:

* :class:`LockManager` -- shared/exclusive locks per item, FIFO wait
  queues with the standard compatibility matrix, lock upgrades;
* deadlock detection via an explicit waits-for graph (a victim is chosen
  and its requests cancelled);
* strictness: all locks are held until commit/abort, which is what makes
  Claim 1 (no edges into earlier cycles) hold for the histories we put
  on the air.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Hashable, List, Optional, Set, Tuple

from repro.graph.sgraph import SerializationGraph

Txn = Hashable


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"

    def compatible_with(self, other: "LockMode") -> bool:
        return self is LockMode.SHARED and other is LockMode.SHARED


class LockOutcome(enum.Enum):
    """Result of a lock request."""

    GRANTED = "granted"
    #: Must wait; the request is queued.
    BLOCKED = "blocked"
    #: Granting would deadlock and the requester was chosen as victim.
    DEADLOCK = "deadlock"


@dataclass
class _LockRequest:
    txn: Txn
    mode: LockMode


@dataclass
class _ItemLock:
    """Lock state of one item: current holders plus a FIFO wait queue."""

    holders: Dict[Txn, LockMode] = field(default_factory=dict)
    queue: Deque[_LockRequest] = field(default_factory=deque)

    @property
    def mode(self) -> Optional[LockMode]:
        if not self.holders:
            return None
        if any(m is LockMode.EXCLUSIVE for m in self.holders.values()):
            return LockMode.EXCLUSIVE
        return LockMode.SHARED


class DeadlockError(Exception):
    """Raised (optionally) when a request would close a waits-for cycle."""

    def __init__(self, victim: Txn) -> None:
        super().__init__(f"Transaction {victim!r} chosen as deadlock victim")
        self.victim = victim


class LockManager:
    """A strict 2PL lock table with waits-for deadlock detection.

    Locks are requested with :meth:`acquire` (returning a
    :class:`LockOutcome`) and only ever released in bulk by
    :meth:`release_all` at transaction end -- strictness is enforced by
    construction, there is no per-item unlock.
    """

    def __init__(self) -> None:
        self._items: Dict[int, _ItemLock] = {}
        #: edges waiter -> holder (the waits-for graph).
        self._waits_for = SerializationGraph()
        #: items each transaction holds or awaits, for cleanup.
        self._touched: Dict[Txn, Set[int]] = {}

    # -- introspection -----------------------------------------------------

    def holders_of(self, item: int) -> Dict[Txn, LockMode]:
        lock = self._items.get(item)
        return dict(lock.holders) if lock else {}

    def waiters_of(self, item: int) -> List[Txn]:
        lock = self._items.get(item)
        return [req.txn for req in lock.queue] if lock else []

    def holds(self, txn: Txn, item: int, mode: Optional[LockMode] = None) -> bool:
        lock = self._items.get(item)
        if lock is None or txn not in lock.holders:
            return False
        if mode is None:
            return True
        held = lock.holders[txn]
        return held is mode or held is LockMode.EXCLUSIVE

    # -- acquisition ---------------------------------------------------------

    def acquire(self, txn: Txn, item: int, mode: LockMode) -> LockOutcome:
        """Request ``mode`` on ``item`` for ``txn``.

        Returns GRANTED / BLOCKED / DEADLOCK.  A blocked request stays in
        the item's FIFO queue; the caller retries via :meth:`granted`
        after other transactions release (the engine drives this loop).
        """
        lock = self._items.setdefault(item, _ItemLock())
        self._touched.setdefault(txn, set()).add(item)

        held = lock.holders.get(txn)
        if held is not None:
            if held is LockMode.EXCLUSIVE or mode is LockMode.SHARED:
                return LockOutcome.GRANTED
            # Upgrade S -> X: possible only as the sole holder.
            if len(lock.holders) == 1 and not lock.queue:
                lock.holders[txn] = LockMode.EXCLUSIVE
                return LockOutcome.GRANTED
            return self._block(txn, lock, mode)

        if self._grantable(lock, mode):
            lock.holders[txn] = mode
            return LockOutcome.GRANTED
        return self._block(txn, lock, mode)

    def _grantable(self, lock: _ItemLock, mode: LockMode) -> bool:
        if lock.queue:
            # FIFO fairness: no overtaking queued requests.
            return False
        current = lock.mode
        return current is None or (
            mode.compatible_with(current) and current.compatible_with(mode)
        )

    def _block(self, txn: Txn, lock: _ItemLock, mode: LockMode) -> LockOutcome:
        # The requester waits on every incompatible holder AND on every
        # already-queued request (FIFO: they all precede it).  Missing the
        # queue edges would hide queue-based wait cycles from the
        # detector and stall the whole schedule.
        predecessors = [
            holder
            for holder, held in lock.holders.items()
            if holder != txn and not mode.compatible_with(held)
        ] + [req.txn for req in lock.queue if req.txn != txn]
        for predecessor in predecessors:
            if self._waits_for.would_close_cycle(txn, predecessor):
                # Granting the wait would deadlock: txn is the victim.
                self._cancel_waits(txn)
                return LockOutcome.DEADLOCK
        for predecessor in predecessors:
            if not self._waits_for.has_edge(txn, predecessor):
                self._waits_for.add_edge(txn, predecessor)
        if not any(req.txn == txn for req in lock.queue):
            lock.queue.append(_LockRequest(txn=txn, mode=mode))
        return LockOutcome.BLOCKED

    # -- release and queue advancement ------------------------------------------

    def release_all(self, txn: Txn) -> List[Tuple[Txn, int]]:
        """Drop every lock and queued request of ``txn`` (commit/abort).

        Returns the ``(transaction, item)`` pairs newly granted from the
        wait queues, so the engine can resume them.
        """
        granted: List[Tuple[Txn, int]] = []
        for item in self._touched.pop(txn, set()):
            lock = self._items.get(item)
            if lock is None:
                continue
            lock.holders.pop(txn, None)
            lock.queue = deque(req for req in lock.queue if req.txn != txn)
            granted.extend(
                (advanced, item) for advanced in self._advance(item, lock)
            )
            if not lock.holders and not lock.queue:
                del self._items[item]
        self._cancel_waits(txn)
        self._waits_for.remove_node(txn)
        return granted

    def _advance(self, item: int, lock: _ItemLock) -> List[Txn]:
        """Grant queued requests now compatible (FIFO order)."""
        woken: List[Txn] = []
        while lock.queue:
            head = lock.queue[0]
            current = lock.mode
            compatible = current is None or (
                head.mode.compatible_with(current)
                and current.compatible_with(head.mode)
            )
            upgrade = (
                head.txn in lock.holders
                and len(lock.holders) == 1
            )
            if compatible or upgrade:
                lock.queue.popleft()
                lock.holders[head.txn] = (
                    LockMode.EXCLUSIVE
                    if upgrade and head.mode is LockMode.EXCLUSIVE
                    else head.mode
                )
                self._clear_wait_edges(head.txn)
                woken.append(head.txn)
            else:
                break
        return woken

    def _cancel_waits(self, txn: Txn) -> None:
        """Remove txn's queued requests and outgoing waits-for edges."""
        for item in self._touched.get(txn, set()):
            lock = self._items.get(item)
            if lock is not None:
                lock.queue = deque(req for req in lock.queue if req.txn != txn)
        self._clear_wait_edges(txn)

    def _clear_wait_edges(self, txn: Txn) -> None:
        if txn in self._waits_for:
            for holder in self._waits_for.successors(txn):
                # Removing and re-adding the node clears only outgoing
                # edges; incoming (others waiting on txn) must survive.
                pass
            # Rebuild: drop outgoing edges of txn.
            incoming = self._waits_for.predecessors(txn)
            self._waits_for.remove_node(txn)
            for waiter in incoming:
                self._waits_for.add_edge(waiter, txn)

    # -- invariants (used by tests) ------------------------------------------------

    def assert_consistent(self) -> None:
        """Internal invariants: compatible co-holders, acyclic waits-for."""
        for item, lock in self._items.items():
            modes = list(lock.holders.values())
            if len(modes) > 1:
                assert all(m is LockMode.SHARED for m in modes), (
                    f"incompatible holders on item {item}"
                )
        assert not self._waits_for.has_cycle(), "waits-for graph has a cycle"
