"""The item-state seam: one contract, two interchangeable stores.

Every per-cycle control structure of the paper -- invalidation reports,
version directories, the ``has_old_versions`` pointers of Figure 2(b) --
is a function over the whole item universe.  The reference
implementation (:class:`~repro.server.versions.VersionStore`) keeps that
state in per-object dicts and lists; the columnar implementation
(:class:`~repro.server.columnar.ColumnarVersionStore`) keeps it in
contiguous arrays indexed by *dense ids* so report and directory
assembly become slice operations (ROADMAP item 4; Faleiro & Abadi's
batched multiversion bookkeeping is the model).

:class:`ItemStateStore` is the seam between them: the program builder,
transaction engine, sharded runtime and cohort trace recorder only ever
talk to this interface, so the two stores are *differentially testable*
-- ``tests/server/test_columnar_oracle.py`` pins bit-identity of every
program, report and metrics registry across the scheme x seed x fault
matrix, and the Hypothesis suite replays arbitrary update/evict
sequences through both.

Seam contract (matches the transaction engine's call pattern):

* ``record_supersedure(old, superseded_at)`` is called at most once per
  ``(item, superseded_at)`` pair -- the engine skips the second write of
  an item within one cycle -- and ``superseded_at`` is non-decreasing
  per item.
* ``evict_expired(c)`` is called with non-decreasing ``c`` on the server
  loop; arbitrary ``c`` sequences must still converge to the same
  retained set as the reference store.
* Every ``Database.write`` is observed (the columnar store registers
  itself as a database observer), so the current-value columns never go
  stale.
* ``consume_dirty()`` drains the change feed; ordering of the returned
  set is unspecified (no consumer is order-sensitive), membership is
  exact: an item is dirty iff its on-air old-version set changed.
* ``all_on_air()`` ordering is likewise unspecified; the only consumer
  (overflow-directory assembly) sorts.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Dict, List, Optional, Set

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.server.database import Database, Version
    from repro.server.versions import RetainedVersion


class ItemStateStore(ABC):
    """Contract between the server substrate and its item-state store.

    Implementations bundle two concerns that the hot path always touches
    together: the *current* value of every item (what the data segment
    carries) and the *retained old versions* (what the multiversion
    organizations carry, with ``retention`` = the paper's ``S``/``V``).
    """

    #: Whether this store keeps columnar (dense-array) state; the
    #: program builder selects its fast paths off this flag.
    columnar: bool = False
    database: "Database"
    retention: int

    # -- current-value state ----------------------------------------------

    def note_write(self, version: "Version") -> None:
        """Observe one committed write (keeps current-value columns in
        sync).  The dict-backed reference reads the database directly,
        so its implementation is a no-op."""

    # -- old-version bookkeeping (the VersionStore API) --------------------

    @abstractmethod
    def record_supersedure(self, old: "Version", superseded_at: int) -> None:
        """Note that ``old`` stopped being current at ``superseded_at``."""

    @abstractmethod
    def evict_expired(self, current_cycle: int) -> int:
        """Drop versions whose on-air window has passed; returns count."""

    @abstractmethod
    def consume_dirty(self) -> Set[int]:
        """Drain and return the items whose on-air old-version set
        changed since the last call."""

    @abstractmethod
    def on_air(self, item: int) -> List["RetainedVersion"]:
        """Old versions of ``item`` currently broadcast (oldest first)."""

    @abstractmethod
    def all_on_air(self) -> Dict[int, List["RetainedVersion"]]:
        """Old versions per item (ordering unspecified, see module doc)."""

    @abstractmethod
    def best_version_at(self, item: int, cycle: int) -> Optional["Version"]:
        """Largest on-air version of ``item`` current at ``cycle``."""

    @property
    @abstractmethod
    def total_retained(self) -> int:
        """Number of old versions currently on the air (sizing input)."""


def make_item_state(
    database: "Database",
    retention: int,
    columnar: bool = True,
    items: Optional[object] = None,
    items_per_bucket: Optional[int] = None,
) -> ItemStateStore:
    """Build the configured store flavour.

    ``items`` restricts a columnar store to a dense slice of the item
    universe (the sharded server passes each shard's item set, so K
    stores together hold one universe's worth of columns, not K).  The
    dict-backed reference ignores both columnar-only hints.
    """
    if columnar:
        from repro.server.columnar import ColumnarVersionStore

        return ColumnarVersionStore(
            database,
            retention=retention,
            items=items,
            items_per_bucket=items_per_bucket,
        )
    from repro.server.versions import VersionStore

    return VersionStore(database, retention=retention)
