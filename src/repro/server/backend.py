"""The server backend seam: who builds, airs and commits each cycle.

:class:`~repro.runtime.Simulation` historically inlined the single-channel
server loop in ``_server_process``.  The sharded multi-channel server
(:mod:`repro.shard`) needs the same builder/engine/RNG/pruning order over
*K* channels, so the loop lives here behind a small protocol:

* :class:`ServerBackend` -- the contract: a ``process()`` generator that
  drives the broadcast to ``num_cycles`` and the two counters the result
  aggregation reads (``cycles_completed``, ``total_slots``).
* :class:`SingleChannelBackend` -- the paper's monolithic server, moved
  verbatim from ``Simulation._server_process``.  Event order, metric
  observations, trace emissions and engine RNG draws are unchanged, so
  recorded traces, the cohort trace recorder and every committed baseline
  stay bit-identical.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Generator, Optional

from repro.broadcast.channel import BroadcastChannel
from repro.config import ModelParameters
from repro.core.control import InvalidationReport, ReportSchedule
from repro.obs.trace import EV_CYCLE_END, EV_CYCLE_START, Tracer
from repro.server.broadcast import ProgramBuilder
from repro.server.transactions import TransactionEngine, merge_outcomes
from repro.sim.engine import Environment
from repro.stats import names as metric_names
from repro.stats.metrics import MetricsRegistry


class ServerBackend(ABC):
    """One server implementation: builds programs, airs them, commits."""

    #: Cycles fully completed so far (read by the result aggregation).
    cycles_completed: int = 0
    #: Sum of per-cycle program lengths, in slots.
    total_slots: int = 0

    @abstractmethod
    def process(self) -> Generator:
        """The server loop: a simulation process generator that returns
        after ``num_cycles`` broadcast cycles."""


class SingleChannelBackend(ServerBackend):
    """The monolithic single-channel server of the paper (Section 2)."""

    def __init__(
        self,
        *,
        env: Environment,
        params: ModelParameters,
        report_schedule: ReportSchedule,
        metrics: MetricsRegistry,
        engine: TransactionEngine,
        builder: ProgramBuilder,
        channel: BroadcastChannel,
        trace_cycles: Optional[Tracer] = None,
    ) -> None:
        self.env = env
        self.params = params
        self.report_schedule = report_schedule
        self.metrics = metrics
        self.engine = engine
        self.builder = builder
        self.channel = channel
        self._trace_c = trace_cycles
        self.cycles_completed = 0
        self.total_slots = 0

    def process(self) -> Generator:
        cycle = 1
        outcome = None
        while cycle <= self.params.sim.num_cycles:
            program = self.builder.build(cycle, outcome)
            self.metrics.observe(metric_names.BROADCAST_SLOTS, program.total_slots)
            self.metrics.observe(
                metric_names.BROADCAST_CONTROL_SLOTS, program.control_slots
            )
            self.metrics.observe(
                metric_names.BROADCAST_OVERFLOW_SLOTS,
                len(program.overflow_buckets),
            )
            if self._trace_c is not None:
                self._trace_c.emit(
                    EV_CYCLE_START, cycle=cycle, **program.slot_breakdown()
                )
            self.channel.begin_cycle(program)
            # Transactions logically commit *during* the cycle that just
            # aired; their values go out with the next cycle's snapshot.
            # With sub-cycle reports (§7) the commits are spread over the
            # report intervals and announced as they happen.
            intervals = self.report_schedule.per_cycle
            if intervals == 1:
                yield self.env.timeout(program.total_slots)
                outcome = self.engine.run_cycle(cycle)
            else:
                outcome = yield from self._run_cycle_in_intervals(
                    cycle, program, intervals
                )
            # Keep the server graph bounded like the clients' (Lemma 1).
            retention = max(self.params.server.retention, 2)
            self.engine.prune_graph_before(cycle - 4 * retention)
            self.cycles_completed = cycle
            self.total_slots += program.total_slots
            if self._trace_c is not None:
                self._trace_c.emit(
                    EV_CYCLE_END,
                    cycle=cycle,
                    updates=len(outcome.updated_items) if outcome else 0,
                )
            cycle += 1

    def _run_cycle_in_intervals(self, cycle, program, intervals):
        """One cycle with sub-cycle invalidation reports (§7).

        The cycle's server transactions commit in ``intervals`` batches at
        the interval boundaries; each batch's updates (except the last,
        which coincides with the next main report) are announced
        immediately as an interim report tagged with the cycle at whose
        start they become visible.
        """
        total = self.params.server.transactions_per_cycle
        bounds = [round(i * total / intervals) for i in range(intervals + 1)]
        h = program.total_slots / intervals
        parts = []
        for j in range(intervals):
            yield self.env.timeout(h)
            part = self.engine.run_batch(cycle, range(bounds[j], bounds[j + 1]))
            parts.append(part)
            if j < intervals - 1 and part.updated_items:
                self.metrics.count(metric_names.BROADCAST_INTERIM_REPORTS)
                self.channel.publish_interim_report(
                    InvalidationReport(
                        cycle=cycle + 1, updated_items=part.updated_items
                    )
                )
        outcome = merge_outcomes(parts)
        self.engine.record_outcome(outcome)
        return outcome
