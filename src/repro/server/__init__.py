"""Broadcast-server substrate.

Everything the paper assumes exists on the stationary server side:

* :class:`~repro.server.database.Database` -- the versioned store whose
  content is broadcast each cycle, with consistent per-cycle snapshots.
* :class:`~repro.server.versions.VersionStore` -- retention of the last
  ``S`` versions per item for the multiversion broadcast method (§3.2).
* :class:`~repro.server.transactions.TransactionEngine` -- the update
  workload: ``N`` strict-2PL transactions per cycle with Zipf access,
  reads four times as frequent as updates, producing the conflict edges,
  first-writer and last-writer bookkeeping the SGT method broadcasts.
* :class:`~repro.server.broadcast.ProgramBuilder` -- assembles each
  cycle's :class:`~repro.broadcast.program.BroadcastProgram` (control
  information segment, data buckets, overflow buckets).
* :mod:`repro.server.sizing` -- the closed-form broadcast-size formulas of
  Sections 3.1-3.3 (Figure 7).
"""

from repro.server.database import Database, Version
from repro.server.itemstate import ItemStateStore, make_item_state
from repro.server.transactions import CycleOutcome, ServerTransaction, TransactionEngine
from repro.server.versions import VersionStore
from repro.server.columnar import ColumnarVersionStore
from repro.server.broadcast import ProgramBuilder

__all__ = [
    "ColumnarVersionStore",
    "CycleOutcome",
    "Database",
    "ItemStateStore",
    "ProgramBuilder",
    "ServerTransaction",
    "TransactionEngine",
    "Version",
    "VersionStore",
    "make_item_state",
]
