"""Closed-form broadcast-size model (Sections 3.1-3.3, Figure 7).

All sizes are expressed in *units*, the paper's abstract measure with the
key field as the yardstick: ``k = 1`` unit, ``d = 5k`` units.  Sub-unit
fields (version numbers, transaction ids, pointers -- all a handful of
bits) are converted at ``bits_per_unit`` bits per unit and rounded up at
the aggregate level, so e.g. ``u`` version numbers of ``log2(S)`` bits
cost ``ceil(u * log2(S) / bits_per_unit)`` units in total.

The quantities follow the formulas in the text:

* invalidation-only report: ``u * k`` units  ->  ``ceil(u*k / b)`` buckets;
* multiversion, clustered: every old version rides with its item and costs
  ``k + d + v`` units, plus a per-cycle index of ``D * (k + p)`` units
  because item positions shift (Figure 2(a));
* multiversion, overflow: items carry a pointer of ``log2(B)`` bits; old
  versions fill ``B = ceil(u * (S-1) * (k + d + v) / b)`` overflow buckets
  (Figure 2(b));
* SGT: items carry a last-writer tag of ``log2(N)`` bits, the augmented
  report costs ``u * (k + log2(N))``, and the graph diff at most
  ``N * c`` edges of ``log2(N) + (log2(N) + log2(S))`` bits each.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.config import ServerParameters


def _bits_to_units(bits: float, bits_per_unit: int) -> float:
    return bits / bits_per_unit


@dataclass(frozen=True)
class SizeBreakdown:
    """Broadcast size of one scheme, split by segment (units)."""

    data_units: float
    control_units: float
    overflow_units: float = 0.0
    index_units: float = 0.0

    @property
    def total_units(self) -> float:
        return (
            self.data_units
            + self.control_units
            + self.overflow_units
            + self.index_units
        )

    def buckets(self, bucket_size: int) -> int:
        return math.ceil(self.total_units / bucket_size)


class SizeModel:
    """Analytic sizes for every scheme, given the server parameters.

    Parameters
    ----------
    params:
        The server-side model parameters (D, N, U, k, d, b ...).
    bits_per_unit:
        How many bits one size unit holds.  The paper leaves this
        implicit; 32 bits (a machine word per key unit) is assumed and
        configurable.
    """

    def __init__(self, params: ServerParameters, bits_per_unit: int = 32) -> None:
        if bits_per_unit <= 0:
            raise ValueError("bits_per_unit must be positive")
        self.params = params
        self.bits_per_unit = bits_per_unit

    # -- field widths in bits -------------------------------------------------

    def version_bits(self, span: int) -> float:
        """``v = log2(S)``: versions are broadcast age-relative (§3.2)."""
        return math.log2(max(2, span))

    def tid_bits(self) -> float:
        """``log2(N)``: transaction ids are unique within a cycle (§3.3)."""
        return math.log2(max(2, self.params.transactions_per_cycle))

    def tid_with_cycle_bits(self, span: int) -> float:
        """A transaction id qualified with its (relative) commit cycle."""
        return self.tid_bits() + self.version_bits(span)

    # -- per-scheme sizes ------------------------------------------------------

    def base(self) -> SizeBreakdown:
        """The plain broadcast: no consistency support at all."""
        p = self.params
        return SizeBreakdown(
            data_units=p.broadcast_size * (p.key_size + p.data_size),
            control_units=0.0,
        )

    def invalidation_only(self, updates: int) -> SizeBreakdown:
        """§3.1: one key per updated item in the report."""
        p = self.params
        base = self.base()
        return SizeBreakdown(
            data_units=base.data_units,
            control_units=updates * p.key_size,
        )

    def multiversion_clustered(self, updates: int, span: int) -> SizeBreakdown:
        """§3.2, Figure 2(a): versions inline, index rebroadcast per cycle."""
        p = self.params
        old_versions = updates * max(0, span - 1)
        version_units = _bits_to_units(self.version_bits(span), self.bits_per_unit)
        old_units = old_versions * (p.key_size + p.data_size + version_units)
        # Item positions shift every cycle, so a directory of D entries
        # (key + slot pointer) must ride along.
        pointer_units = _bits_to_units(
            math.log2(max(2, p.data_buckets * span)), self.bits_per_unit
        )
        index_units = p.broadcast_size * (p.key_size + pointer_units)
        return SizeBreakdown(
            data_units=self.base().data_units + old_units,
            control_units=updates * p.key_size,
            index_units=index_units,
        )

    def multiversion_overflow(self, updates: int, span: int) -> SizeBreakdown:
        """§3.2, Figure 2(b): fixed item positions, overflow buckets."""
        p = self.params
        old_versions = updates * max(0, span - 1)
        version_units = _bits_to_units(self.version_bits(span), self.bits_per_unit)
        overflow_units = old_versions * (p.key_size + p.data_size + version_units)
        overflow_buckets = math.ceil(overflow_units / p.bucket_size)
        # Every item carries a pointer (offset from the bcast end) of
        # log2(B) bits, B being the number of overflow buckets.
        pointer_bits = math.log2(max(2, overflow_buckets))
        pointer_units = p.broadcast_size * _bits_to_units(
            pointer_bits, self.bits_per_unit
        )
        return SizeBreakdown(
            data_units=self.base().data_units + pointer_units,
            control_units=updates * p.key_size,
            overflow_units=overflow_units,
        )

    def sgt(self, updates: int, span: int) -> SizeBreakdown:
        """§3.3: last-writer tags, augmented report, and the graph diff."""
        p = self.params
        tid_units = _bits_to_units(self.tid_with_cycle_bits(span), self.bits_per_unit)
        data_units = p.broadcast_size * (p.key_size + p.data_size + tid_units)
        report_units = updates * (p.key_size + tid_units)
        ops_per_txn = p.updates_per_transaction * (1 + p.reads_per_update)
        max_edges = p.transactions_per_cycle * ops_per_txn
        edge_bits = self.tid_bits() + self.tid_with_cycle_bits(span)
        diff_units = max_edges * _bits_to_units(edge_bits, self.bits_per_unit)
        return SizeBreakdown(
            data_units=data_units,
            control_units=report_units + diff_units,
        )

    def multiversion_caching(self, updates: int, span: int) -> SizeBreakdown:
        """§4.2: invalidation-only plus version numbers on data items."""
        p = self.params
        version_units = _bits_to_units(self.version_bits(span), self.bits_per_unit)
        return SizeBreakdown(
            data_units=self.base().data_units + p.broadcast_size * version_units,
            control_units=updates * p.key_size,
        )

    # -- figure 7 ------------------------------------------------------------

    def increase_percent(self, breakdown: SizeBreakdown) -> float:
        """Relative size increase over the bare broadcast, in percent."""
        base = self.base().total_units
        return 100.0 * (breakdown.total_units - base) / base

    def figure7_row(self, updates: int, span: int) -> Dict[str, float]:
        """One (U, S) point of Figure 7 for all schemes."""
        return {
            "invalidation_only": self.increase_percent(
                self.invalidation_only(updates)
            ),
            "multiversion_clustered": self.increase_percent(
                self.multiversion_clustered(updates, span)
            ),
            "multiversion_overflow": self.increase_percent(
                self.multiversion_overflow(updates, span)
            ),
            "sgt": self.increase_percent(self.sgt(updates, span)),
            "multiversion_caching": self.increase_percent(
                self.multiversion_caching(updates, span)
            ),
        }
