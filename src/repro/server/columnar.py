"""Array-backed columnar item state (ROADMAP item 4).

The reference :class:`~repro.server.versions.VersionStore` answers the
program builder's per-item questions -- "what is the current value?",
"does this item have old versions on the air?", "which versions expired
this cycle?" -- by walking per-object dicts and version chains.  At
10^5+ item databases that per-object churn dominates every cycle build.

This store keeps the same state in dense columns, indexed by *dense id*
(the item's rank in the store's sorted item slice):

``_cur_cycle`` / ``_cur_value``
    ``array('q')`` -- the version number (visibility cycle) and payload
    of every item's current value, maintained by observing every
    :meth:`Database.write`; an item record is two array reads instead
    of a version-chain bisect.
``_writers``
    The last-writer transaction tags (object column; SGT's item tags).
``_old_count``
    ``bytearray`` -- the ``has_old_versions`` bits of Figure 2(b),
    stored as retained-version counts so supersedure/eviction are
    increments and the pointer bit is ``count > 0``.
``_bucket_col``
    ``array('l')`` -- each item's data-bucket (page) number, so
    bucket-level invalidation reports are column lookups, not per-item
    divisions.

Old-version bookkeeping is organized by *supersedure cohort*: all
versions superseded at cycle ``w`` expire together at ``w + retention``
(the paper's "at cycle k discard the k - S version"), so eviction pops
whole cohorts -- O(evicted), where the reference store re-scans every
retained item each cycle -- and the overflow version directory
(Figure 2(b): newest supersedure first) is the cached concatenation of
cohorts in descending ``w``, rebuilt only when a cohort changes.

Semantics are pinned to the reference store by the differential oracle
(``tests/server/test_columnar_oracle.py``) and the Hypothesis suite
(``tests/server/test_columnar_store.py``); the seam contract this store
assumes is documented in :mod:`repro.server.itemstate`.
"""

from __future__ import annotations

from array import array
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.broadcast.program import ItemRecord, OldVersionRecord
from repro.server.database import Database, Version
from repro.server.itemstate import ItemStateStore
from repro.server.versions import RetainedVersion


class ColumnarVersionStore(ItemStateStore):
    """Dense-array item state over (a slice of) the item universe.

    Parameters
    ----------
    database:
        The underlying versioned store (ground truth for values).
    retention:
        ``S`` / ``V`` -- how many cycles an overwritten value remains
        broadcast; ``0`` disables old versions entirely.
    items:
        The item slice this store owns (a shard's partition); ``None``
        means the whole universe ``1..database.size``.  Only owned items
        occupy columns; writes to other items are ignored.
    items_per_bucket:
        When given, precompute the per-item data-bucket column used for
        bucket-level invalidation reports.
    """

    columnar = True

    def __init__(
        self,
        database: Database,
        retention: int,
        items: Optional[Iterable[int]] = None,
        items_per_bucket: Optional[int] = None,
    ) -> None:
        if retention < 0:
            raise ValueError(f"retention must be non-negative, got {retention}")
        if retention > 0xFF:
            # _old_count is a bytearray: one retained-version count per
            # item, and retention bounds how many supersedure cohorts can
            # hold a given item's versions at once.
            raise ValueError(
                f"retention {retention} exceeds the columnar store's "
                "255-version has-old column; use the dict-backed store "
                "(columnar=False) for deeper retention"
            )
        self.database = database
        self.retention = retention

        if items is None:
            # Contiguous universe: dense id is plain offset arithmetic.
            self._items: Tuple[int, ...] = tuple(range(1, database.size + 1))
            self._base: Optional[int] = 1
            self._index: Dict[int, int] = {}
        else:
            owned = sorted(set(items))
            if not owned:
                raise ValueError("a columnar store needs at least one item")
            self._items = tuple(owned)
            first, last = owned[0], owned[-1]
            if last - first + 1 == len(owned):
                # Contiguous slice (range partitioner): offset arithmetic.
                self._base = first
                self._index = {}
            else:
                self._base = None
                self._index = {item: idx for idx, item in enumerate(owned)}

        n = len(self._items)
        self._cur_cycle = array("q", bytes(8 * n))
        self._cur_value = array("q", bytes(8 * n))
        self._writers: List[Optional[object]] = [None] * n
        self._old_count = bytearray(n)
        for idx, item in enumerate(self._items):
            current = database.current(item)
            self._cur_cycle[idx] = current.cycle
            self._cur_value[idx] = current.value
            self._writers[idx] = current.writer

        self._bucket_col: Optional[array] = None
        if items_per_bucket is not None and items_per_bucket > 0:
            self._bucket_col = array(
                "l",
                ((item - 1) // items_per_bucket for item in self._items),
            )

        #: item -> retained old versions, oldest first (same shape as the
        #: reference store; the objects surface through on_air and the
        #: overflow directory, so equality is structural).
        self._retained: Dict[int, List[RetainedVersion]] = {}
        #: supersedure cycle w -> that cohort's versions, in call order.
        #: The whole cohort expires at w + retention.
        self._cohorts: Dict[int, List[RetainedVersion]] = {}
        #: Cached overflow directory (Figure 2(b) order); None = stale.
        self._directory: Optional[Tuple[OldVersionRecord, ...]] = None
        self._total_retained = 0
        self._dirty: Set[int] = set()

        database.add_observer(self)

    # -- dense-id mapping ---------------------------------------------------

    def dense_index(self, item: int) -> int:
        """Dense id of ``item``; raises ``KeyError`` for unowned items."""
        if self._base is not None:
            idx = item - self._base
            if 0 <= idx < len(self._items):
                return idx
            raise KeyError(f"Item {item} not owned by this store")
        return self._index[item]

    def item_at(self, index: int) -> int:
        """Inverse of :meth:`dense_index` (for the bijection tests)."""
        return self._items[index]

    def owns(self, item: int) -> bool:
        if self._base is not None:
            return 0 <= item - self._base < len(self._items)
        return item in self._index

    @property
    def items(self) -> Tuple[int, ...]:
        return self._items

    # -- current-value columns ----------------------------------------------

    def note_write(self, version: Version) -> None:
        """Database write observer: refresh the current-value columns."""
        try:
            idx = self.dense_index(version.item)
        except KeyError:
            return  # another shard's item
        self._cur_cycle[idx] = version.cycle
        self._cur_value[idx] = version.value
        self._writers[idx] = version.writer

    def item_record(self, item: int, cycle: int, needs_old: bool) -> ItemRecord:
        """The on-air record of ``item`` in the cycle-``cycle`` snapshot.

        The server builds cycle ``c`` after the commits visible at ``c``,
        so the columns normally *are* the snapshot; the rare case of a
        write already visible beyond ``cycle`` (tests poking the database
        directly) falls back to the version-chain search.
        """
        idx = self.dense_index(item)
        if self._cur_cycle[idx] > cycle:
            version = self.database.value_at(item, cycle)
            return ItemRecord(
                item=item,
                value=version.value,
                version=version.cycle,
                writer=version.writer,
                has_old_versions=needs_old and self._old_count[idx] > 0,
            )
        return ItemRecord(
            item=item,
            value=self._cur_value[idx],
            version=self._cur_cycle[idx],
            writer=self._writers[idx],
            has_old_versions=needs_old and self._old_count[idx] > 0,
        )

    def records_for(
        self, chunk: Sequence[int], cycle: int, needs_old: bool
    ) -> Tuple[ItemRecord, ...]:
        """One bucket's records, straight off the columns.

        This is the bulk path (full rebuilds prime every bucket; the
        10^5-item lane lives here), so the per-item method-call chain of
        :meth:`item_record` is hoisted into local bindings; chunks come
        from the builder's layout and are owned by construction.
        """
        base = self._base
        index = self._index
        cur_cycle = self._cur_cycle
        cur_value = self._cur_value
        writers = self._writers
        old_count = self._old_count
        slow = self.item_record
        make = ItemRecord
        out = []
        append = out.append
        for item in chunk:
            idx = item - base if base is not None else index[item]
            version = cur_cycle[idx]
            if version > cycle:
                append(slow(item, cycle, needs_old))
            else:
                append(
                    make(
                        item=item,
                        value=cur_value[idx],
                        version=version,
                        writer=writers[idx],
                        has_old_versions=needs_old and old_count[idx] > 0,
                    )
                )
        return tuple(out)

    def has_old(self, item: int) -> bool:
        return self._old_count[self.dense_index(item)] > 0

    @property
    def has_bucket_column(self) -> bool:
        return self._bucket_col is not None

    def buckets_of(self, items: Iterable[int]) -> FrozenSet[int]:
        """Data-bucket (page) numbers of ``items`` via the bucket column."""
        if self._bucket_col is None:
            raise ValueError("store built without items_per_bucket")
        column = self._bucket_col
        dense = self.dense_index
        return frozenset(column[dense(item)] for item in items)

    # -- old-version bookkeeping --------------------------------------------

    def record_supersedure(self, old: Version, superseded_at: int) -> None:
        if self.retention == 0:
            return
        idx = self.dense_index(old.item)
        rv = RetainedVersion(version=old, superseded_at=superseded_at)
        self._retained.setdefault(old.item, []).append(rv)
        self._cohorts.setdefault(superseded_at, []).append(rv)
        count = self._old_count[idx] + 1
        if count > 0xFF:
            raise ValueError(
                f"more than 255 retained versions for item {old.item}; "
                "retention this deep needs a wider has-old column"
            )
        self._old_count[idx] = count
        self._total_retained += 1
        self._dirty.add(old.item)
        self._directory = None

    def evict_expired(self, current_cycle: int) -> int:
        retention = self.retention
        expired = sorted(
            w for w in self._cohorts if current_cycle - w >= retention
        )
        evicted = 0
        for w in expired:
            for rv in self._cohorts.pop(w):
                item = rv.version.item
                bucket = self._retained[item]
                front = bucket.pop(0)
                assert front is rv, "cohort eviction out of supersedure order"
                if not bucket:
                    del self._retained[item]
                self._old_count[self.dense_index(item)] -= 1
                self._dirty.add(item)
                evicted += 1
        if evicted:
            self._total_retained -= evicted
            self._directory = None
        return evicted

    def consume_dirty(self) -> Set[int]:
        dirty, self._dirty = self._dirty, set()
        return dirty

    def on_air(self, item: int) -> List[RetainedVersion]:
        return list(self._retained.get(item, ()))

    def all_on_air(self) -> Dict[int, List[RetainedVersion]]:
        return {item: list(rvs) for item, rvs in self._retained.items()}

    def overflow_records(self) -> Tuple[OldVersionRecord, ...]:
        """The overflow version directory, newest supersedure first
        (Figure 2(b)) -- the cached cohort concatenation."""
        if self._directory is None:
            records: List[OldVersionRecord] = []
            for w in sorted(self._cohorts, reverse=True):
                cohort = sorted(
                    self._cohorts[w], key=lambda rv: rv.version.item
                )
                records.extend(
                    OldVersionRecord(
                        item=rv.version.item,
                        value=rv.version.value,
                        version=rv.version.cycle,
                        valid_to=rv.valid_to,
                        writer=rv.version.writer,
                    )
                    for rv in cohort
                )
            self._directory = tuple(records)
        return self._directory

    def best_version_at(self, item: int, cycle: int) -> Optional[Version]:
        current = self.database.current(item)
        if current.cycle <= cycle:
            return current
        for rv in reversed(self._retained.get(item, [])):
            if rv.covers(cycle):
                return rv.version
        return None

    @property
    def total_retained(self) -> int:
        return self._total_retained
