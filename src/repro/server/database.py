"""The server's versioned database.

The paper's model (Section 2.2): a database is a finite set of items; the
values broadcast during cycle ``c`` correspond to the state at the
*beginning* of ``c`` -- i.e. the values produced by all transactions
committed before the cycle started.  We realize this by stamping each
write with the broadcast cycle at whose beginning it becomes visible, and
by answering snapshot queries "value of item ``x`` as of cycle ``c``".

Values are opaque integers here (a write counter), which is all the
consistency protocols ever compare; the sizing model accounts for the
``d`` payload units separately.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from operator import attrgetter
from typing import Dict, Iterable, List, Optional

from repro.graph.sgraph import TxnId

#: Sort key for :meth:`Database.value_at`'s binary search.
_version_cycle = attrgetter("cycle")


@dataclass(frozen=True)
class Version:
    """One committed value of one item.

    Attributes
    ----------
    item:
        The item (key) this value belongs to.
    cycle:
        The broadcast cycle at whose beginning this value became current
        (commit cycle + 1): the paper's "version number".
    value:
        Opaque payload; monotonically increasing per item in this model.
    writer:
        The server transaction that produced the value (``None`` for the
        initial load), needed by the SGT method's last-writer tags.
    """

    item: int
    cycle: int
    value: int
    writer: Optional[TxnId]


class Database:
    """Versioned key-value store over items ``1 .. size``.

    Keeps the full version chain per item so that tests can check any
    protocol's readset against the exact historical snapshot it claims to
    represent.  Memory is bounded by total updates in a run, which is fine
    at simulation scale; a production store would truncate below the
    multiversion retention horizon.
    """

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError(f"Database size must be positive, got {size}")
        self._size = size
        #: item -> list of versions in increasing cycle order.
        self._chains: Dict[int, List[Version]] = {
            item: [Version(item=item, cycle=0, value=0, writer=None)]
            for item in range(1, size + 1)
        }
        #: Write observers (columnar stores keeping current-value columns
        #: in sync); see :meth:`add_observer`.
        self._observers: List[object] = []

    def add_observer(self, observer: object) -> None:
        """Register ``observer.note_write(version)`` to run on every write.

        This is how array-backed item-state stores stay coherent without
        the transaction engine knowing about them -- any write, including
        ones tests make directly, reaches every attached store.
        """
        self._observers.append(observer)

    @property
    def size(self) -> int:
        return self._size

    def items(self) -> Iterable[int]:
        return range(1, self._size + 1)

    def _chain(self, item: int) -> List[Version]:
        chain = self._chains.get(item)
        if chain is None:
            raise KeyError(f"Item {item} outside database range 1..{self._size}")
        return chain

    # -- writes -----------------------------------------------------------

    def write(self, item: int, visible_cycle: int, writer: TxnId) -> Version:
        """Record a committed write becoming visible at ``visible_cycle``.

        Several transactions may write the same item during one cycle; each
        write appends a version with the same ``cycle`` stamp, and the last
        one is the value actually broadcast.  Monotonicity of the stamp is
        enforced.
        """
        chain = self._chain(item)
        if visible_cycle < chain[-1].cycle:
            raise ValueError(
                f"Write to item {item} at cycle {visible_cycle} is older than "
                f"latest version (cycle {chain[-1].cycle})"
            )
        version = Version(
            item=item,
            cycle=visible_cycle,
            value=chain[-1].value + 1,
            writer=writer,
        )
        chain.append(version)
        for observer in self._observers:
            observer.note_write(version)
        return version

    # -- reads ------------------------------------------------------------

    def current(self, item: int) -> Version:
        """Latest committed version of ``item``."""
        return self._chain(item)[-1]

    def value_at(self, item: int, cycle: int) -> Version:
        """The version of ``item`` in the state broadcast at ``cycle``.

        That is: the last version whose visibility stamp is ``<= cycle``.
        Chains are in increasing cycle order, so a binary search finds it;
        this is on the program builder's per-cycle hot path.
        """
        chain = self._chain(item)
        index = bisect_right(chain, cycle, key=_version_cycle) - 1
        if index < 0:
            raise ValueError(
                f"Item {item} has no version visible at or before cycle {cycle}"
            )
        return chain[index]

    def snapshot(self, cycle: int) -> Dict[int, Version]:
        """The full consistent state ``DS^cycle`` (what cycle ``c`` airs)."""
        return {item: self.value_at(item, cycle) for item in self.items()}

    def chain_of(self, item: int) -> List[Version]:
        """Full version history of ``item`` (oldest first) -- for oracles."""
        return list(self._chain(item))

    def was_updated_between(self, item: int, first: int, last: int) -> bool:
        """Did any version of ``item`` become visible in ``[first, last]``?"""
        return any(first <= v.cycle <= last for v in self._chain(item)[1:])
