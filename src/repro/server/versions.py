"""Retention of old versions for the multiversion broadcast method (§3.2).

The server broadcasts, besides the current value of every item, the
versions that were current during the previous ``retention`` cycles.  The
paper's rule "at each cycle k the server discards the k - S version" works
out to: an overwritten value stays on the air for ``retention`` cycles
after the cycle in which its successor became current.  That is exactly
what guarantees Theorem 2 -- a transaction whose first read happened at
cycle ``c0`` finds the version current-at-``c0`` of every item it touches
for ``retention`` further cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.server.database import Database, Version
from repro.server.itemstate import ItemStateStore


@dataclass(frozen=True)
class RetainedVersion:
    """An old version together with the cycle at which it was overwritten.

    ``superseded_at`` is the visibility cycle of the *successor* value,
    so this version was the current one during cycles
    ``[version.cycle, superseded_at - 1]``.
    """

    version: Version
    superseded_at: int

    @property
    def valid_from(self) -> int:
        return self.version.cycle

    @property
    def valid_to(self) -> int:
        """Last cycle during which this value was the current one."""
        return self.superseded_at - 1

    def covers(self, cycle: int) -> bool:
        """Was this value the current one at ``cycle``?"""
        return self.valid_from <= cycle <= self.valid_to


class VersionStore(ItemStateStore):
    """Tracks which old versions are on the air at each cycle.

    This is the dict-backed *reference* implementation of the
    :class:`~repro.server.itemstate.ItemStateStore` seam (``columnar ==
    False``): it reads current values straight off the database, so
    :meth:`note_write` is a no-op.  The array-backed twin lives in
    :mod:`repro.server.columnar`.

    Parameters
    ----------
    database:
        The underlying versioned store (ground truth for values).
    retention:
        ``S`` (or the weaker ``V``) -- how many cycles an overwritten value
        remains broadcast.  ``0`` disables old versions entirely
        (degenerates to the invalidation-only broadcast content).
    """

    columnar = False

    def __init__(self, database: Database, retention: int) -> None:
        if retention < 0:
            raise ValueError(f"retention must be non-negative, got {retention}")
        self.database = database
        self.retention = retention
        #: item -> retained old versions, oldest first.
        self._retained: Dict[int, List[RetainedVersion]] = {}
        #: Items whose on-air old-version set changed since the last
        #: :meth:`consume_dirty` -- the incremental program builder needs
        #: them because a retention *eviction* flips an item's
        #: ``has_old_versions`` pointer without the item being updated.
        self._dirty: Set[int] = set()

    def record_supersedure(self, old: Version, superseded_at: int) -> None:
        """Note that ``old`` stopped being current at ``superseded_at``.

        Called by the transaction engine when a committed write replaces a
        value.  With ``retention == 0`` nothing is kept.
        """
        if self.retention == 0:
            return
        bucket = self._retained.setdefault(old.item, [])
        bucket.append(RetainedVersion(version=old, superseded_at=superseded_at))
        self._dirty.add(old.item)

    def evict_expired(self, current_cycle: int) -> int:
        """Drop versions whose on-air window has passed; returns count.

        A version superseded at cycle ``w`` remains on air during cycles
        ``w .. w + retention - 1`` and is discarded at
        ``w + retention``.
        """
        evicted = 0
        for item in list(self._retained):
            keep = [
                rv
                for rv in self._retained[item]
                if current_cycle - rv.superseded_at < self.retention
            ]
            removed = len(self._retained[item]) - len(keep)
            if removed:
                self._dirty.add(item)
            evicted += removed
            if keep:
                self._retained[item] = keep
            else:
                del self._retained[item]
        return evicted

    def consume_dirty(self) -> Set[int]:
        """Items whose on-air old versions changed since the last call.

        Drained (swap-and-return) by the program builder once per cycle
        build; a full rebuild drains it too so stale entries never pile
        up across schedule changes.
        """
        dirty, self._dirty = self._dirty, set()
        return dirty

    def on_air(self, item: int) -> List[RetainedVersion]:
        """Old versions of ``item`` currently broadcast (oldest first)."""
        return list(self._retained.get(item, ()))

    def all_on_air(self) -> Dict[int, List[RetainedVersion]]:
        """Old versions per item, for the program builder."""
        return {item: list(rvs) for item, rvs in self._retained.items()}

    def best_version_at(self, item: int, cycle: int) -> Optional[Version]:
        """Largest on-air version of ``item`` current at ``cycle``.

        Checks the current value first (its validity extends to now), then
        the retained old versions.  Returns ``None`` when the required
        version has already been discarded -- the client must abort.
        """
        current = self.database.current(item)
        if current.cycle <= cycle:
            return current
        for rv in reversed(self._retained.get(item, [])):
            if rv.covers(cycle):
                return rv.version
        return None

    @property
    def total_retained(self) -> int:
        """Number of old versions currently on the air (sizing input)."""
        return sum(len(rvs) for rvs in self._retained.values())
