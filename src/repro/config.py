"""Model parameters for the broadcast-push simulation.

Mirrors the performance model of Section 5.1 (Figure 4) of the paper.  The
available copy of the paper has several values corrupted by OCR; where a
value is unreadable we substitute defaults consistent with the prose and
with the broadcast-disks model of Acharya et al. [1] that the paper bases
its setup on.  Every substituted value is marked below and is swept -- not
hard-wired -- by the experiment harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass(frozen=True)
class ServerParameters:
    """Knobs describing the server workload (Figure 4, left column)."""

    #: ``D`` -- number of items broadcast each cycle (paper default 1000).
    broadcast_size: int = 1000
    #: ``UpdateRange`` -- updates fall in ``1..update_range`` before the
    #: offset rotation (paper default 500).
    update_range: int = 500
    #: Zipf skew for both reads and updates (paper default 0.95).
    theta: float = 0.95
    #: ``Offset`` between the client-read and server-update patterns
    #: (paper sweeps 0-250, default 100).
    offset: int = 100
    #: ``N`` -- server transactions committed per broadcast cycle
    #: (paper default 10).
    transactions_per_cycle: int = 10
    #: ``U`` -- total updates per cycle (paper sweeps 50-500, default 50).
    updates_per_cycle: int = 50
    #: Server reads per update; the paper fixes "read operations are four
    #: times more frequent than updates".
    reads_per_update: int = 4
    #: ``k`` -- size of the key field in units (paper: 1 unit).
    key_size: int = 1
    #: ``d`` -- size of the other fields in units (paper: 5 * k).
    data_size: int = 5
    #: Items per bucket; the bucket size ``b`` in units is
    #: ``items_per_bucket * (key_size + data_size)``.  [substituted: the
    #: paper's ``b`` row is OCR-corrupted]
    items_per_bucket: int = 10
    #: ``S`` / ``V`` -- how many cycles an overwritten version stays on the
    #: air for the multiversion broadcast method (0 disables).  The paper
    #: defines ``S`` as the maximum transaction span; 16 comfortably covers
    #: the default 16-operation query.  Smaller values model the paper's
    #: ``V``-multiversion server, where longer transactions run at risk.
    retention: int = 16

    @property
    def updates_per_transaction(self) -> int:
        return max(1, self.updates_per_cycle // self.transactions_per_cycle)

    @property
    def reads_per_transaction(self) -> int:
        """Total reads per server transaction (includes read-before-write)."""
        return self.updates_per_transaction * self.reads_per_update

    @property
    def item_size(self) -> int:
        """Wire size of one item (key + payload) in units."""
        return self.key_size + self.data_size

    @property
    def bucket_size(self) -> int:
        """``b`` -- bucket payload capacity in units."""
        return self.items_per_bucket * self.item_size

    @property
    def data_buckets(self) -> int:
        """Buckets needed for the (single-version) data segment."""
        return math.ceil(self.broadcast_size / self.items_per_bucket)

    def validate(self) -> None:
        if not 0 < self.update_range <= self.broadcast_size:
            raise ValueError(
                "update_range must be in 1..broadcast_size "
                f"({self.update_range} vs {self.broadcast_size})"
            )
        if self.updates_per_cycle > self.update_range:
            raise ValueError(
                "updates_per_cycle cannot exceed update_range "
                f"({self.updates_per_cycle} vs {self.update_range})"
            )
        if self.offset < 0 or self.offset + self.update_range > 2 * self.broadcast_size:
            raise ValueError(f"offset {self.offset} out of range")
        if self.transactions_per_cycle <= 0:
            raise ValueError("transactions_per_cycle must be positive")


@dataclass(frozen=True)
class ClientParameters:
    """Knobs describing a client (Figure 4, right column)."""

    #: ``ReadRange`` -- client reads items ``1..read_range``.
    #: [substituted: OCR-corrupted; must be <= broadcast_size]
    read_range: int = 250
    #: Number of read operations per query (Figures 5/8 sweep this).
    ops_per_query: int = 16
    #: Zipf skew of the client access pattern (same theta as the server).
    theta: float = 0.95
    #: ``ThinkTime`` -- idle slots between consecutive reads.
    #: [substituted: OCR-corrupted]
    think_time: float = 2.0
    #: ``CacheSize`` in items; 0 disables caching.
    #: [substituted: OCR-corrupted; 125 = broadcast_size / 8]
    cache_size: int = 125
    #: Fraction of the cache reserved for old versions when the
    #: multiversion-caching scheme partitions it (Section 4.2).
    old_version_fraction: float = 0.2
    #: Give up and count a query as failed after this many aborted
    #: attempts (prevents livelock in extreme configurations).
    max_attempts: int = 10
    #: Order a query's reads by broadcast position (the "transaction
    #: optimization" of Section 2.2); off by default to match the
    #: latency expectations quoted with Figure 8.
    sort_reads: bool = False

    def validate(self) -> None:
        if self.read_range <= 0:
            raise ValueError("read_range must be positive")
        if self.ops_per_query <= 0:
            raise ValueError("ops_per_query must be positive")
        if not 0.0 <= self.old_version_fraction < 1.0:
            raise ValueError("old_version_fraction must be in [0, 1)")
        if self.cache_size < 0:
            raise ValueError("cache_size must be non-negative")


@dataclass(frozen=True)
class FaultParameters:
    """Air-interface fault injection (no analogue in the paper's model).

    All-zero defaults mean a perfect channel -- the seed behaviour.  Any
    positive knob activates the fault layer (:mod:`repro.faults`), which
    degrades what each *client* receives; the server and its schedule are
    never touched, so the scalability property survives injection.
    """

    #: Independent per-slot bucket loss probability (control slots too).
    slot_loss: float = 0.0
    #: Per-slot probability that a loss burst (fade) starts.
    burst_rate: float = 0.0
    #: Mean length of a loss burst, in slots.
    burst_length: float = 4.0
    #: Probability the control bucket fails its checksum and is dropped.
    control_loss: float = 0.0
    #: Probability a cycle's tail is truncated (never transmitted).
    truncation: float = 0.0
    #: Earliest truncation point, as a fraction of the cycle.
    truncation_min_fraction: float = 0.5
    #: Probability the control segment decodes late.
    report_delay: float = 0.0
    #: Maximum control decode delay, in slots.
    report_max_delay: float = 4.0
    #: Per-cycle probability that a cell-wide disconnect storm starts.
    storm_rate: float = 0.0
    #: Mean storm duration, in cycles.
    storm_length: float = 2.0
    #: Fraction of clients inside a storm's footprint.
    storm_participation: float = 0.8
    #: Fault RNG seed; ``None`` derives one from the simulation seed,
    #: keeping the workload RNG stream untouched either way.
    seed: Optional[int] = None

    @property
    def active(self) -> bool:
        """Does any knob actually inject faults?"""
        return any(
            p > 0
            for p in (
                self.slot_loss,
                self.burst_rate,
                self.control_loss,
                self.truncation,
                self.report_delay,
                self.storm_rate,
            )
        )

    def validate(self) -> None:
        for name in (
            "slot_loss",
            "burst_rate",
            "control_loss",
            "truncation",
            "report_delay",
            "storm_rate",
            "storm_participation",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if not 0.0 <= self.truncation_min_fraction < 1.0:
            raise ValueError(
                "truncation_min_fraction must be in [0, 1), got "
                f"{self.truncation_min_fraction}"
            )
        if self.burst_length < 1.0:
            raise ValueError(f"burst_length must be >= 1, got {self.burst_length}")
        if self.report_max_delay < 1.0:
            raise ValueError(
                f"report_max_delay must be >= 1, got {self.report_max_delay}"
            )
        if self.storm_length < 1.0:
            raise ValueError(f"storm_length must be >= 1, got {self.storm_length}")


#: Retry policy names accepted by :class:`ResilienceParameters`; the
#: registry lives in :mod:`repro.resilience.policy` (kept in sync there).
RETRY_POLICIES = ("immediate", "backoff", "cause-aware")


@dataclass(frozen=True)
class ResilienceParameters:
    """Client-side recovery policy knobs (see :mod:`repro.resilience`).

    All defaults reproduce the seed behaviour exactly: immediate retries
    up to ``max_attempts``, no deadlines, no watchdog, no checkpointing,
    no crashes, no degradation ladder.  Any non-default knob activates
    the resilience layer, which wires a per-client policy bundle into the
    :class:`~repro.client.machine.BroadcastClient`.
    """

    #: How aborted attempts are retried: ``immediate`` (the seed
    #: behaviour), ``backoff`` (capped exponential backoff in broadcast
    #: cycles), or ``cause-aware`` (reacts per ``AbortReason``).
    retry_policy: str = "immediate"
    #: First backoff delay, in broadcast cycles.
    backoff_base: int = 1
    #: Upper bound on any single backoff delay, in cycles.
    backoff_cap: int = 8
    #: Jitter fraction in [0, 1]: up to ``jitter * delay`` extra cycles,
    #: drawn from the seeded resilience RNG (deterministic per seed).
    backoff_jitter: float = 0.0
    #: Abandon a query once this many cycles passed since it started
    #: (0 disables deadlines).
    deadline_cycles: int = 0
    #: Escalate (flush the cache, step the degradation ladder down) after
    #: this many consecutive aborted attempts (0 disables the watchdog).
    watchdog_attempts: int = 0
    #: Checkpoint the client state (cache + scheme control state) every
    #: this many heard cycles (0 disables checkpointing).
    checkpoint_interval: int = 0
    #: Restarting after an outage of at most this many cycles uses the
    #: incremental catch-up resync when the control window covers the gap;
    #: longer outages always flush-and-rejoin.
    catchup_window: int = 8
    #: Per-cycle probability that this client crashes (loses all
    #: in-memory state) for a multi-cycle outage.
    crash_rate: float = 0.0
    #: Mean crash outage length, in cycles.
    crash_length: float = 2.0
    #: Step the degradation ladder down after this many consecutive
    #: fault-degraded cycles (0 disables the ladder).
    degrade_after: int = 0
    #: Step the ladder back up after this many consecutive clean cycles.
    recover_after: int = 3
    #: Resilience RNG seed (jitter + crash schedules); ``None`` derives
    #: one from the simulation seed without touching the workload stream.
    seed: Optional[int] = None

    @property
    def active(self) -> bool:
        """Does any knob depart from the seed behaviour?"""
        return (
            self.retry_policy != "immediate"
            or self.deadline_cycles > 0
            or self.watchdog_attempts > 0
            or self.checkpoint_interval > 0
            or self.crash_rate > 0
            or self.degrade_after > 0
        )

    def validate(self) -> None:
        if self.retry_policy not in RETRY_POLICIES:
            known = ", ".join(RETRY_POLICIES)
            raise ValueError(
                f"Unknown retry policy {self.retry_policy!r}; known: {known}"
            )
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_cap < max(1, self.backoff_base):
            raise ValueError(
                "backoff_cap must be >= max(1, backoff_base), got "
                f"{self.backoff_cap}"
            )
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError(
                f"backoff_jitter must be in [0, 1], got {self.backoff_jitter}"
            )
        for name in ("deadline_cycles", "watchdog_attempts", "checkpoint_interval"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.catchup_window < 0:
            raise ValueError("catchup_window must be non-negative")
        if not 0.0 <= self.crash_rate <= 1.0:
            raise ValueError(f"crash_rate must be in [0, 1], got {self.crash_rate}")
        if self.crash_length < 1.0:
            raise ValueError(f"crash_length must be >= 1, got {self.crash_length}")
        if self.degrade_after < 0:
            raise ValueError("degrade_after must be non-negative")
        if self.recover_after < 1:
            raise ValueError("recover_after must be at least 1")


@dataclass(frozen=True)
class SimulationParameters:
    """Run-control knobs (not part of the paper's model)."""

    #: Broadcast cycles to simulate.
    num_cycles: int = 120
    #: Cycles to discard before measuring (cache warm-up).
    warmup_cycles: int = 10
    #: Concurrent client processes (protocols are client-local, so this
    #: only matters for the scalability experiment).
    num_clients: int = 1
    #: RNG seed for reproducibility.
    seed: int = 42

    def validate(self) -> None:
        if self.num_cycles <= self.warmup_cycles:
            raise ValueError("num_cycles must exceed warmup_cycles")
        if self.num_clients <= 0:
            raise ValueError("num_clients must be positive")


@dataclass(frozen=True)
class ModelParameters:
    """Complete parameterization of one simulation run."""

    server: ServerParameters = field(default_factory=ServerParameters)
    client: ClientParameters = field(default_factory=ClientParameters)
    sim: SimulationParameters = field(default_factory=SimulationParameters)
    faults: FaultParameters = field(default_factory=FaultParameters)
    resilience: ResilienceParameters = field(default_factory=ResilienceParameters)

    def validate(self) -> None:
        self.server.validate()
        self.client.validate()
        self.sim.validate()
        self.faults.validate()
        self.resilience.validate()
        if self.client.read_range > self.server.broadcast_size:
            raise ValueError(
                "client read_range cannot exceed broadcast_size "
                f"({self.client.read_range} vs {self.server.broadcast_size})"
            )

    # -- fluent override helpers used throughout the harness ---------------

    def with_server(self, **kwargs) -> "ModelParameters":
        return replace(self, server=replace(self.server, **kwargs))

    def with_client(self, **kwargs) -> "ModelParameters":
        return replace(self, client=replace(self.client, **kwargs))

    def with_sim(self, **kwargs) -> "ModelParameters":
        return replace(self, sim=replace(self.sim, **kwargs))

    def with_faults(self, **kwargs) -> "ModelParameters":
        return replace(self, faults=replace(self.faults, **kwargs))

    def with_resilience(self, **kwargs) -> "ModelParameters":
        return replace(self, resilience=replace(self.resilience, **kwargs))


DEFAULTS = ModelParameters()
