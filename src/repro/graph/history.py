"""Recorded operation histories and the serializability oracle.

The client-side SGT protocol takes shortcuts (only first-writer precedence
edges and last-writer dependency edges -- Claims 2 and 3).  To test those
shortcuts we need ground truth: this module records the *complete* history
of reads and writes and rebuilds the full conflict serialization graph from
first principles.  A history is serializable iff that graph is acyclic
(the serialization theorem of [Bernstein, Hadzilacos, Goodman 1987], which
the paper invokes as [7]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.graph.sgraph import SerializationGraph

Node = Hashable


class OpType(Enum):
    """Operation flavour in a recorded history."""

    READ = "r"
    WRITE = "w"


@dataclass(frozen=True)
class Operation:
    """One read or write of ``item`` by ``txn`` at history position ``pos``."""

    pos: int
    txn: Node
    op: OpType
    item: int

    def conflicts_with(self, other: "Operation") -> bool:
        """Two operations conflict if they touch the same item, come from
        different transactions, and at least one is a write."""
        return (
            self.item == other.item
            and self.txn != other.txn
            and (self.op is OpType.WRITE or other.op is OpType.WRITE)
        )


class History:
    """An append-only schedule of operations with commit bookkeeping.

    Operations are recorded in execution order; ``commit`` marks a
    transaction as committed.  The serialization graph is built over
    committed transactions only, matching the paper's definition.
    """

    def __init__(self) -> None:
        self._operations: List[Operation] = []
        self._committed: Set[Node] = set()
        self._aborted: Set[Node] = set()
        #: Monotone position counter -- survives :meth:`discard`, so
        #: positions stay unique and ordered even after victim restarts.
        self._next_pos = 0

    # -- recording -----------------------------------------------------------

    def read(self, txn: Node, item: int) -> Operation:
        return self._append(txn, OpType.READ, item)

    def write(self, txn: Node, item: int) -> Operation:
        return self._append(txn, OpType.WRITE, item)

    def _append(self, txn: Node, op: OpType, item: int) -> Operation:
        if txn in self._committed or txn in self._aborted:
            raise ValueError(f"Transaction {txn!r} already terminated")
        operation = Operation(self._next_pos, txn, op, item)
        self._next_pos += 1
        self._operations.append(operation)
        return operation

    def commit(self, txn: Node) -> None:
        if txn in self._aborted:
            raise ValueError(f"Transaction {txn!r} already aborted")
        self._committed.add(txn)

    def abort(self, txn: Node) -> None:
        if txn in self._committed:
            raise ValueError(f"Transaction {txn!r} already committed")
        self._aborted.add(txn)

    def discard(self, txn: Node) -> None:
        """Erase every trace of an uncommitted transaction (2PL victim
        restart: under strict locking nobody observed its footprint)."""
        if txn in self._committed:
            raise ValueError(f"Cannot discard committed transaction {txn!r}")
        self._operations = [op for op in self._operations if op.txn != txn]
        self._aborted.discard(txn)

    # -- inspection ------------------------------------------------------------

    @property
    def operations(self) -> List[Operation]:
        return list(self._operations)

    @property
    def committed(self) -> Set[Node]:
        return set(self._committed)

    def operations_of(self, txn: Node) -> List[Operation]:
        return [op for op in self._operations if op.txn == txn]

    def readset(self, txn: Node) -> Set[int]:
        return {
            op.item
            for op in self._operations
            if op.txn == txn and op.op is OpType.READ
        }

    def writeset(self, txn: Node) -> Set[int]:
        return {
            op.item
            for op in self._operations
            if op.txn == txn and op.op is OpType.WRITE
        }

    def writers_of(self, item: int) -> List[Node]:
        """Committed transactions that wrote ``item``, in history order."""
        seen: Set[Node] = set()
        writers: List[Node] = []
        for op in self._operations:
            if (
                op.op is OpType.WRITE
                and op.item == item
                and op.txn in self._committed
                and op.txn not in seen
            ):
                seen.add(op.txn)
                writers.append(op.txn)
        return writers

    # -- the oracle --------------------------------------------------------------

    def serialization_graph(
        self, include: Optional[Iterable[Node]] = None
    ) -> SerializationGraph:
        """Build the conflict serialization graph (reachability-reduced).

        Nodes are all committed transactions (plus any in ``include``,
        letting tests fold in a read-only transaction that has not
        "committed" in the server sense).  There is an edge ``Ti -> Tj``
        whenever some operation of ``Ti`` precedes and conflicts with an
        operation of ``Tj`` -- except that edges implied transitively by
        the per-item write chain are omitted (``w1 -> w3`` is covered by
        ``w1 -> w2 -> w3``).  Reachability, and therefore cyclicity, is
        identical to the full conflict graph's, at linear instead of
        quadratic cost in the per-item operation count.
        """
        members = set(self._committed)
        if include is not None:
            members.update(include)

        graph = SerializationGraph()
        for txn in members:
            graph.add_node(txn)

        last_writer: Dict[int, Node] = {}
        readers_since_write: Dict[int, set] = {}
        for op in self._operations:
            if op.txn not in members:
                continue
            if op.op is OpType.READ:
                writer = last_writer.get(op.item)
                if writer is not None and writer != op.txn:
                    graph.add_edge(writer, op.txn)
                readers_since_write.setdefault(op.item, set()).add(op.txn)
            else:
                writer = last_writer.get(op.item)
                if writer is not None and writer != op.txn:
                    graph.add_edge(writer, op.txn)
                for reader in readers_since_write.get(op.item, ()):
                    if reader != op.txn:
                        graph.add_edge(reader, op.txn)
                readers_since_write[op.item] = set()
                last_writer[op.item] = op.txn
        return graph

    def is_serializable(self, include: Optional[Iterable[Node]] = None) -> bool:
        """Serialization theorem: acyclic full graph <=> serializable."""
        return not self.serialization_graph(include).has_cycle()

    def serial_order(self) -> Optional[List[Node]]:
        """A topological order of committed transactions, if one exists."""
        graph = self.serialization_graph()
        indegree = {node: len(graph.predecessors(node)) for node in graph.nodes()}
        ready = sorted(
            (node for node, deg in indegree.items() if deg == 0),
            key=repr,
        )
        order: List[Node] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for succ in sorted(graph.successors(node), key=repr):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(indegree):
            return None
        return order
