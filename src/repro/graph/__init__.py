"""Serialization graphs and serializability oracles.

Provides the directed-graph machinery of the paper's Section 3.3:

* :class:`~repro.graph.sgraph.SerializationGraph` -- a directed graph over
  transaction identifiers with incremental cycle detection (a read is
  accepted only if adding its dependency edge closes no cycle), per-cycle
  subgraph tagging (``SG^i`` in the paper), and Lemma-1 pruning.
* :class:`~repro.graph.history.History` -- a recorded schedule of read /
  write operations from which the *full* conflict serialization graph can
  be rebuilt.  Used as the correctness oracle in tests: the incremental
  client-side graph must agree with the graph rebuilt from first
  principles (Claims 2 and 3).
"""

from repro.graph.history import History, Operation, OpType
from repro.graph.sgraph import EdgeKind, GraphDiff, SerializationGraph, TxnId

__all__ = [
    "EdgeKind",
    "GraphDiff",
    "History",
    "Operation",
    "OpType",
    "SerializationGraph",
    "TxnId",
]
