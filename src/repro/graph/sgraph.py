"""Directed serialization graph with incremental cycle detection.

Terminology follows Section 3.3 of the paper:

* Nodes are transactions.  Server transactions are identified by
  :class:`TxnId` -- a ``(cycle, seq)`` pair, because the paper notes that
  transaction identifiers need only be unique within a broadcast cycle
  (``log N`` bits) once the cycle number is known.
* *Dependency* edges ``T -> R`` mean ``R`` read a value written by ``T``.
* *Precedence* edges ``R -> T`` mean ``T`` (over)wrote an item previously
  read by ``R``.
* ``SG^i`` is the subgraph of transactions committed during cycle ``i``;
  Claim 1 guarantees no edges flow from later cycles back into ``SG^i``,
  which is what makes Lemma-1 pruning sound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

Node = Hashable


@dataclass(frozen=True, order=True)
class TxnId:
    """Identifier of a server transaction: commit cycle plus sequence number.

    The paper encodes these on the air as ``log(S) + log(N)`` bits (cycle
    relative to the current bcast, sequence within the cycle); here we keep
    the absolute cycle for clarity and let the sizing model account for the
    wire encoding.
    """

    cycle: int
    seq: int

    def __str__(self) -> str:
        return f"T{self.cycle}.{self.seq}"


class EdgeKind(Enum):
    """Why an edge exists (Section 3.3's two edge flavours)."""

    DEPENDENCY = "dependency"  # T -> R : R read T's write
    PRECEDENCE = "precedence"  # R -> T : T overwrote R's read
    CONFLICT = "conflict"  # server-side ww/wr/rw conflict edge


@dataclass(frozen=True)
class GraphDiff:
    """The per-cycle graph update the server puts on the air.

    ``edges`` holds ``(from, to)`` pairs where the *to* transaction was
    committed in the cycle the diff describes and the *from* transaction is
    any earlier (or same-cycle) transaction it conflicts with, matching the
    broadcast format of Section 3.3 ("pairs of conflicting transactions
    where the first ... is a newly committed transaction" -- we orient
    edges from the earlier conflicting party toward the new commit, which
    is the direction conflicts can point under Claim 1).
    """

    cycle: int
    nodes: FrozenSet[TxnId] = frozenset()
    edges: FrozenSet[Tuple[TxnId, TxnId]] = frozenset()

    @property
    def edge_count(self) -> int:
        return len(self.edges)


class SerializationGraph:
    """A directed graph over transactions with cycle-test insertion.

    The client keeps one instance; the server keeps another restricted to
    committed server transactions (always acyclic because server
    transactions are serialized by strict 2PL in commit order).
    """

    def __init__(self) -> None:
        self._successors: Dict[Node, Set[Node]] = {}
        self._predecessors: Dict[Node, Set[Node]] = {}
        #: commit cycle per server node; client read-only txns have None.
        self._node_cycle: Dict[Node, Optional[int]] = {}

    # -- basic structure ---------------------------------------------------

    def __contains__(self, node: Node) -> bool:
        return node in self._successors

    def __len__(self) -> int:
        return len(self._successors)

    def nodes(self) -> Iterator[Node]:
        return iter(self._successors)

    def edges(self) -> Iterator[Tuple[Node, Node]]:
        for u, targets in self._successors.items():
            for v in targets:
                yield (u, v)

    @property
    def edge_count(self) -> int:
        return sum(len(t) for t in self._successors.values())

    def successors(self, node: Node) -> Set[Node]:
        return set(self._successors.get(node, ()))

    def predecessors(self, node: Node) -> Set[Node]:
        return set(self._predecessors.get(node, ()))

    def cycle_of(self, node: Node) -> Optional[int]:
        """Commit cycle of ``node`` (None for client-local transactions)."""
        return self._node_cycle.get(node)

    def add_node(self, node: Node, cycle: Optional[int] = None) -> None:
        """Insert ``node`` (idempotent); ``cycle`` tags server commits."""
        if node not in self._successors:
            self._successors[node] = set()
            self._predecessors[node] = set()
        if cycle is not None:
            self._node_cycle[node] = cycle

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and all incident edges."""
        if node not in self._successors:
            return
        for succ in self._successors.pop(node):
            self._predecessors[succ].discard(node)
        for pred in self._predecessors.pop(node):
            self._successors[pred].discard(node)
        self._node_cycle.pop(node, None)

    def has_edge(self, u: Node, v: Node) -> bool:
        return v in self._successors.get(u, ())

    def add_edge(self, u: Node, v: Node) -> None:
        """Insert edge ``u -> v`` unconditionally (nodes auto-created)."""
        if u == v:
            raise ValueError(f"Self-loop on {u!r} is not a serialization edge")
        self.add_node(u)
        self.add_node(v)
        self._successors[u].add(v)
        self._predecessors[v].add(u)

    # -- cycle detection -----------------------------------------------------

    def reachable(self, source: Node, target: Node) -> bool:
        """Is ``target`` reachable from ``source`` along directed edges?"""
        if source not in self._successors or target not in self._successors:
            return False
        if source == target:
            return True
        stack = [source]
        seen = {source}
        while stack:
            node = stack.pop()
            for succ in self._successors.get(node, ()):
                if succ == target:
                    return True
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return False

    def would_close_cycle(self, u: Node, v: Node) -> bool:
        """Would adding ``u -> v`` create a cycle?

        True iff ``u`` is already reachable from ``v``.
        """
        if u == v:
            return True
        return self.reachable(v, u)

    def add_edge_checked(self, u: Node, v: Node) -> bool:
        """Add ``u -> v`` only if it closes no cycle.

        Returns ``True`` when the edge was added, ``False`` when it was
        rejected.  This is the client's read-acceptance test.
        """
        if self.would_close_cycle(u, v):
            return False
        self.add_edge(u, v)
        return True

    def has_cycle(self) -> bool:
        """Full-graph acyclicity check (Kahn's algorithm); used by tests."""
        indegree = {node: len(self._predecessors[node]) for node in self._successors}
        queue = [node for node, deg in indegree.items() if deg == 0]
        visited = 0
        while queue:
            node = queue.pop()
            visited += 1
            for succ in self._successors[node]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    queue.append(succ)
        return visited != len(self._successors)

    def find_cycle(self) -> Optional[List[Node]]:
        """Return one cycle as a node list, or ``None`` if acyclic."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {node: WHITE for node in self._successors}
        parent: Dict[Node, Optional[Node]] = {}

        for root in self._successors:
            if color[root] != WHITE:
                continue
            stack: List[Tuple[Node, Iterator[Node]]] = [
                (root, iter(self._successors[root]))
            ]
            color[root] = GRAY
            parent[root] = None
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    if color[child] == GRAY:
                        # Found a back edge: unwind the cycle.
                        cycle = [child, node]
                        walker = parent[node]
                        while walker is not None and walker != child:
                            cycle.append(walker)
                            walker = parent[walker]
                        cycle.reverse()
                        return cycle
                    if color[child] == WHITE:
                        color[child] = GRAY
                        parent[child] = node
                        stack.append((child, iter(self._successors[child])))
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return None

    # -- broadcast integration ------------------------------------------------

    def apply_diff(self, diff: GraphDiff) -> None:
        """Fold a per-cycle server diff into this (client-side) graph."""
        for node in diff.nodes:
            self.add_node(node, cycle=node.cycle)
        for u, v in diff.edges:
            self.add_node(u, cycle=u.cycle if isinstance(u, TxnId) else None)
            self.add_node(v, cycle=v.cycle if isinstance(v, TxnId) else None)
            self._successors[u].add(v)
            self._predecessors[v].add(u)

    def prune_before(self, cycle: int, keep: Iterable[Node] = ()) -> int:
        """Drop all server subgraphs ``SG^k`` with ``k < cycle``.

        ``keep`` protects nodes (e.g. active read-only transactions'
        neighbours) from removal.  Returns the number of nodes removed.
        Per the paper's space-efficiency argument, subgraphs older than the
        first invalidation cycle of every active query are irrelevant.
        """
        protected = set(keep)
        victims = [
            node
            for node, node_cycle in self._node_cycle.items()
            if node_cycle is not None and node_cycle < cycle and node not in protected
        ]
        for node in victims:
            self.remove_node(node)
        return len(victims)

    def subgraph_cycles(self) -> Dict[int, Set[Node]]:
        """Server nodes grouped by commit cycle (``SG^i`` membership map)."""
        groups: Dict[int, Set[Node]] = {}
        for node, cycle in self._node_cycle.items():
            if cycle is not None:
                groups.setdefault(cycle, set()).add(node)
        return groups

    def copy(self) -> "SerializationGraph":
        clone = SerializationGraph()
        clone._successors = {n: set(s) for n, s in self._successors.items()}
        clone._predecessors = {n: set(p) for n, p in self._predecessors.items()}
        clone._node_cycle = dict(self._node_cycle)
        return clone

    def __repr__(self) -> str:
        return (
            f"<SerializationGraph nodes={len(self._successors)} "
            f"edges={self.edge_count}>"
        )
