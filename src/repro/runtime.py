"""Top-level simulation wiring: one server, one channel, many clients.

This is the main entry point of the library:

>>> from repro import ModelParameters, Simulation
>>> from repro.core import InvalidationOnly
>>> params = ModelParameters().with_sim(num_cycles=30, warmup_cycles=5)
>>> sim = Simulation(params, scheme_factory=lambda: InvalidationOnly())
>>> result = sim.run()
>>> 0.0 <= result.abort_rate <= 1.0
True

The server process loops forever: build the cycle's program, put it on
the air, transmit it slot by slot, commit the cycle's update transactions
(visible next cycle), repeat.  Clients are pure listeners; the scalability
claim of the paper holds *by construction* -- there is no code path from
a client to the server.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.broadcast.channel import BroadcastChannel
from repro.broadcast.schedule import Schedule
from repro.client.disconnect import DisconnectionModel, UnionDisconnections
from repro.client.machine import BroadcastClient
from repro.faults.injector import FaultInjector
from repro.config import ModelParameters
from repro.core.base import Scheme
from repro.core.control import BroadcastRequirements, ReportSchedule
from repro.obs.trace import EV_ENGINE_STEP, Tracer, gate
from repro.resilience import build_client_resilience, resilience_seed
from repro.server.backend import ServerBackend, SingleChannelBackend
from repro.server.broadcast import ProgramBuilder
from repro.server.database import Database
from repro.server.itemstate import ItemStateStore, make_item_state
from repro.server.transactions import TransactionEngine
from repro.sim.engine import Environment
from repro.stats.metrics import MetricsRegistry


@dataclass
class SimulationResult:
    """Aggregated outcome of one run."""

    params: ModelParameters
    scheme_label: str
    metrics: MetricsRegistry
    cycles_completed: int
    #: Mean broadcast length in slots over the run (sizing consequence).
    mean_cycle_slots: float
    clients: List[BroadcastClient] = field(default_factory=list)

    @property
    def abort_rate(self) -> float:
        """Fraction of attempts that aborted (Figures 5 and 6)."""
        ratio = self.metrics.get_ratio("attempt.committed")
        if ratio is None or ratio.total == 0:
            return 0.0
        return ratio.complement

    @property
    def acceptance_rate(self) -> float:
        """Fraction of attempts accepted (the paper's "concurrency")."""
        return 1.0 - self.abort_rate

    @property
    def mean_latency_cycles(self) -> float:
        """Mean cycles per *committed* transaction (Figure 8)."""
        sampler = self.metrics.get_sampler("txn.latency_cycles")
        if sampler is None or sampler.count == 0:
            return float("nan")
        return sampler.mean

    @property
    def mean_span(self) -> float:
        sampler = self.metrics.get_sampler("txn.span")
        if sampler is None or sampler.count == 0:
            return float("nan")
        return sampler.mean

    @property
    def committed_attempts(self) -> int:
        ratio = self.metrics.get_ratio("attempt.committed")
        return ratio.hits if ratio else 0

    @property
    def total_attempts(self) -> int:
        ratio = self.metrics.get_ratio("attempt.committed")
        return ratio.total if ratio else 0

    def abort_count(self, reason: str) -> int:
        counter = self.metrics.get_counter(f"abort.{reason}")
        return counter.value if counter else 0


class Simulation:
    """Builds and runs one complete broadcast-push simulation."""

    def __init__(
        self,
        params: ModelParameters,
        scheme_factory: Callable[[], Scheme],
        schedule: Optional[Schedule] = None,
        disconnect_factory: Optional[Callable[[random.Random], DisconnectionModel]] = None,
        keep_history: bool = False,
        report_schedule: Optional[ReportSchedule] = None,
        interleaved_server: bool = False,
        tracer: Optional[Tracer] = None,
        columnar: bool = True,
    ) -> None:
        params.validate()
        self.params = params
        self.report_schedule = report_schedule or ReportSchedule()
        self.env = Environment()
        self.metrics = MetricsRegistry()
        self._rng = random.Random(params.sim.seed)
        self.tracer = tracer
        self._trace_c = gate(tracer, "cycles")
        if tracer is not None and tracer.enabled:
            tracer.bind_clock(lambda: self.env.now)
            if tracer.engine:
                self.env.set_trace_hook(
                    lambda now, ev: tracer.emit(
                        EV_ENGINE_STEP, event=type(ev).__name__
                    )
                )

        # -- server substrate ------------------------------------------------
        self.database = Database(params.server.broadcast_size)

        # Instantiate one scheme per client and merge their requirements.
        self.schemes: List[Scheme] = [
            scheme_factory() for _ in range(params.sim.num_clients)
        ]
        requirements = BroadcastRequirements(
            report_window=self.report_schedule.window
        )
        for scheme in self.schemes:
            requirements = requirements.merge(scheme.requirements())

        # One item-state store per run (the seam of DESIGN §14).  The
        # old-version view (``version_store``) stays None for schemes
        # that broadcast no old versions -- the builder keys SGT control
        # sizing and has_old pointers off that -- while the store itself
        # always exists so record/report assembly can use its columns.
        self.item_state: ItemStateStore = make_item_state(
            self.database,
            retention=(
                params.server.retention
                if requirements.needs_old_versions
                else 0
            ),
            columnar=columnar,
            items_per_bucket=params.server.items_per_bucket,
        )
        self.version_store: Optional[ItemStateStore] = (
            self.item_state if requirements.needs_old_versions else None
        )

        self.engine = TransactionEngine(
            params.server,
            self.database,
            version_store=self.version_store,
            rng=random.Random(self._rng.getrandbits(64)),
            keep_history=keep_history,
            interleaved=interleaved_server,
        )
        self.builder = ProgramBuilder(
            params.server,
            self.database,
            version_store=self.version_store,
            schedule=schedule,
            requirements=requirements,
            tracer=tracer,
            item_state=self.item_state,
        )

        # -- air interface and clients ------------------------------------------
        self.channel = BroadcastChannel(self.env)
        self.fault_injector: Optional[FaultInjector] = None
        if params.faults.active:
            self.fault_injector = FaultInjector(
                params.faults, params.sim, self.metrics, tracer=tracer
            )
        # Resilience bundles draw from their own seeded RNG tree (like
        # the fault injector), so enabling them never perturbs the
        # workload or fault streams.
        resilience_rng: Optional[random.Random] = None
        if params.resilience.active:
            resilience_rng = random.Random(
                resilience_seed(params.resilience, params.sim.seed)
            )
        self.clients: List[BroadcastClient] = []
        for client_id, scheme in enumerate(self.schemes):
            disconnect = None
            if disconnect_factory is not None:
                disconnect = disconnect_factory(
                    random.Random(self._rng.getrandbits(64))
                )
            client_channel: BroadcastChannel = self.channel
            if self.fault_injector is not None:
                client_channel = self.fault_injector.wrap(self.channel, client_id)
                storm = self.fault_injector.disconnections_for(client_id)
                if storm is not None:
                    disconnect = (
                        storm
                        if disconnect is None
                        else UnionDisconnections([disconnect, storm])
                    )
            resilience = None
            if resilience_rng is not None:
                resilience = build_client_resilience(
                    params.resilience,
                    params.sim.num_cycles,
                    random.Random(resilience_rng.getrandbits(64)),
                )
            self.clients.append(
                BroadcastClient(
                    env=self.env,
                    channel=client_channel,
                    scheme=scheme,
                    params=params.client,
                    metrics=self.metrics,
                    rng=random.Random(self._rng.getrandbits(64)),
                    disconnect=disconnect,
                    client_id=client_id,
                    warmup_cycles=params.sim.warmup_cycles,
                    tracer=tracer,
                    resilience=resilience,
                )
            )

        self.backend: ServerBackend = SingleChannelBackend(
            env=self.env,
            params=params,
            report_schedule=self.report_schedule,
            metrics=self.metrics,
            engine=self.engine,
            builder=self.builder,
            channel=self.channel,
            trace_cycles=self._trace_c,
        )
        self._stop = self.env.event()
        self.env.process(self._server_process())

    # -- the server loop ----------------------------------------------------------

    def _server_process(self):
        yield from self.backend.process()
        self._stop.succeed()

    @property
    def _cycles_completed(self) -> int:
        return self.backend.cycles_completed

    @property
    def _total_slots(self) -> int:
        return self.backend.total_slots

    # -- running ----------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Run to the configured number of cycles and aggregate results."""
        self.env.run(until=self._stop)
        mean_slots = (
            self._total_slots / self._cycles_completed
            if self._cycles_completed
            else 0.0
        )
        return SimulationResult(
            params=self.params,
            scheme_label=self.schemes[0].label if self.schemes else "none",
            metrics=self.metrics,
            cycles_completed=self._cycles_completed,
            mean_cycle_slots=mean_slots,
            clients=self.clients,
        )
