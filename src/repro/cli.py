"""Command-line interface: run a simulation from the shell.

    python -m repro run --scheme sgt+cache --cycles 120 --clients 4
    python -m repro schemes
    python -m repro sizes --updates 50 --span 3

Subcommands
-----------
``run``
    One simulation with the chosen scheme and knobs; prints the result
    summary (and, with ``--verify``, replays every committed query
    against the correctness oracle).
``schemes``
    List the registered scheme labels.
``sizes``
    Print the analytic broadcast-size table (Figure 7 row) for the
    chosen operating point.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.config import ModelParameters
from repro.core.control import ReportSchedule
from repro.experiments.render import render_table
from repro.experiments.schemes import SCHEME_FACTORIES, scheme_factory
from repro.runtime import Simulation
from repro.server.sizing import SizeModel


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Scalable processing of read-only transactions in broadcast "
            "push (Pitoura & Chrysanthis, ICDCS 1999) -- reproduction CLI"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one simulation")
    run.add_argument(
        "--scheme",
        default="sgt+cache",
        choices=sorted(SCHEME_FACTORIES),
        help="processing scheme (default: sgt+cache)",
    )
    run.add_argument("--cycles", type=int, default=120, help="broadcast cycles")
    run.add_argument("--warmup", type=int, default=10, help="warm-up cycles")
    run.add_argument("--clients", type=int, default=4, help="client count")
    run.add_argument("--seed", type=int, default=42, help="RNG seed")
    run.add_argument("--broadcast-size", type=int, default=1000, help="items (D)")
    run.add_argument("--update-range", type=int, default=500)
    run.add_argument("--updates", type=int, default=50, help="updates per cycle (U)")
    run.add_argument("--offset", type=int, default=100)
    run.add_argument("--ops", type=int, default=16, help="reads per query")
    run.add_argument("--read-range", type=int, default=250)
    run.add_argument("--cache-size", type=int, default=125)
    run.add_argument("--think-time", type=float, default=2.0)
    run.add_argument("--retention", type=int, default=16, help="S / V versions")
    run.add_argument(
        "--reports-per-cycle", type=int, default=1, help="sub-cycle reports (§7)"
    )
    run.add_argument(
        "--report-window", type=int, default=0, help="w-window retransmission"
    )
    run.add_argument(
        "--interleaved-server",
        action="store_true",
        help="run server transactions under the real 2PL lock manager",
    )
    fault = run.add_argument_group(
        "fault injection", "degrade the air interface (see repro.faults)"
    )
    fault.add_argument(
        "--slot-loss", type=float, default=0.0, help="per-slot loss probability"
    )
    fault.add_argument(
        "--burst-loss", type=float, default=0.0, help="burst (fade) start probability"
    )
    fault.add_argument(
        "--burst-length", type=float, default=4.0, help="mean burst length in slots"
    )
    fault.add_argument(
        "--control-loss",
        type=float,
        default=0.0,
        help="control-bucket corruption probability",
    )
    fault.add_argument(
        "--truncation", type=float, default=0.0, help="cycle-truncation probability"
    )
    fault.add_argument(
        "--report-delay",
        type=float,
        default=0.0,
        help="late control-decode probability",
    )
    fault.add_argument(
        "--storm-rate",
        type=float,
        default=0.0,
        help="per-cycle disconnect-storm start probability",
    )
    fault.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help="fault RNG seed (default: derived from --seed)",
    )
    run.add_argument(
        "--verify",
        action="store_true",
        help="replay every committed query against the correctness oracle",
    )

    sub.add_parser("schemes", help="list scheme labels")

    sizes = sub.add_parser("sizes", help="analytic broadcast sizes (Figure 7)")
    sizes.add_argument("--updates", type=int, default=50)
    sizes.add_argument("--span", type=int, default=3)
    sizes.add_argument("--broadcast-size", type=int, default=1000)

    return parser


def _params_from(args: argparse.Namespace) -> ModelParameters:
    return (
        ModelParameters()
        .with_server(
            broadcast_size=args.broadcast_size,
            update_range=args.update_range,
            updates_per_cycle=args.updates,
            offset=args.offset,
            retention=args.retention,
        )
        .with_client(
            ops_per_query=args.ops,
            read_range=args.read_range,
            cache_size=args.cache_size,
            think_time=args.think_time,
        )
        .with_sim(
            num_cycles=args.cycles,
            warmup_cycles=args.warmup,
            num_clients=args.clients,
            seed=args.seed,
        )
        .with_faults(
            slot_loss=args.slot_loss,
            burst_rate=args.burst_loss,
            burst_length=args.burst_length,
            control_loss=args.control_loss,
            truncation=args.truncation,
            report_delay=args.report_delay,
            storm_rate=args.storm_rate,
            seed=args.fault_seed,
        )
    )


def _command_run(args: argparse.Namespace) -> int:
    params = _params_from(args)
    schedule = ReportSchedule(
        per_cycle=args.reports_per_cycle, window=args.report_window
    )
    sim = Simulation(
        params,
        scheme_factory=scheme_factory(args.scheme),
        report_schedule=schedule,
        keep_history=args.verify,
        interleaved_server=args.interleaved_server,
    )
    result = sim.run()

    rows = [
        ["scheme", result.scheme_label],
        ["cycles", str(result.cycles_completed)],
        ["mean bcast length (buckets)", f"{result.mean_cycle_slots:.1f}"],
        ["attempts", str(result.total_attempts)],
        ["committed", str(result.committed_attempts)],
        ["abort rate", f"{result.abort_rate:.3f}"],
        ["latency (cycles)", f"{result.mean_latency_cycles:.2f}"],
        ["span (cycles)", f"{result.mean_span:.2f}"],
    ]
    for name, counter in sorted(result.metrics.counters()):
        if name.startswith("abort."):
            rows.append([name, str(counter.value)])
    if params.faults.active:
        for name, value in sorted(result.metrics.fault_summary().items()):
            rows.append([name, str(value)])
    print(render_table(["measure", "value"], rows, title="simulation result"))

    if args.verify:
        from repro.verify import violations

        bad = violations(sim.clients, sim.database, sim.engine.history)
        print(f"correctness oracle: {len(bad)} violation(s)")
        if bad:
            for txn in bad[:5]:
                print(f"  {txn.txn_id}: {dict(txn.reads)}")
            return 1
    return 0


def _command_schemes() -> int:
    for name in sorted(SCHEME_FACTORIES):
        print(name)
    return 0


def _command_sizes(args: argparse.Namespace) -> int:
    params = ModelParameters().with_server(broadcast_size=args.broadcast_size)
    model = SizeModel(params.server)
    row = model.figure7_row(updates=args.updates, span=args.span)
    rows = [[scheme, f"{value:.2f}"] for scheme, value in sorted(row.items())]
    print(
        render_table(
            ["scheme", "size increase (%)"],
            rows,
            title=f"U={args.updates}, span={args.span}, D={args.broadcast_size}",
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _command_run(args)
    if args.command == "schemes":
        return _command_schemes()
    if args.command == "sizes":
        return _command_sizes(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
