"""Command-line interface: run a simulation from the shell.

    python -m repro run --scheme sgt+cache --cycles 120 --clients 4
    python -m repro run --scheme inval --trace run.jsonl --trace-level read
    python -m repro trace summarize run.jsonl
    python -m repro bench --scenario smoke
    python -m repro schemes
    python -m repro sizes --updates 50 --span 3

Subcommands
-----------
``run``
    One simulation with the chosen scheme and knobs; prints the result
    summary (and, with ``--verify``, replays every committed query
    against the correctness oracle).  ``--trace FILE`` records a JSONL
    event trace plus a ``FILE.manifest.json`` provenance record.
``trace``
    Analyze a recorded trace: ``summarize``, ``timeline``, ``aborts``,
    ``airtime``.
``bench``
    Throughput/overhead benchmark (see :mod:`repro.obs.bench`).
``experiments``
    Regenerate the paper's figures and tables; ``--jobs N`` shards each
    sweep's (scheme, x, seed) cells over N worker processes with
    byte-identical output, ``--cache DIR`` makes sweeps resumable, and
    ``--check`` runs the parallel-vs-serial determinism oracle instead
    (see :mod:`repro.experiments.parallel`).
``serve`` / ``listen``
    Live mode (:mod:`repro.live`): air a real broadcast over TCP /
    join one as a listening client.
``schemes``
    List the registered scheme labels.
``sizes``
    Print the analytic broadcast-size table (Figure 7 row) for the
    chosen operating point.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.config import RETRY_POLICIES, ModelParameters
from repro.core.control import ReportSchedule
from repro.faults.presets import get_preset, preset_names
from repro.experiments.render import render_table
from repro.experiments.schemes import SCHEME_FACTORIES, scheme_factory
from repro.obs.analyze import TraceAnalyzer
from repro.obs.manifest import git_revision, write_manifest
from repro.obs.trace import JsonlSink, TraceLevel, Tracer
from repro.runtime import Simulation
from repro.server.sizing import SizeModel
from repro.shard.partition import PARTITIONERS
from repro.shard.scheme import CONSISTENCY_MODES


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Scalable processing of read-only transactions in broadcast "
            "push (Pitoura & Chrysanthis, ICDCS 1999) -- reproduction CLI"
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro {__version__} ({git_revision()})",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one simulation")
    run.add_argument(
        "--scheme",
        default="sgt+cache",
        choices=sorted(SCHEME_FACTORIES),
        help="processing scheme (default: sgt+cache)",
    )
    run.add_argument("--cycles", type=int, default=120, help="broadcast cycles")
    run.add_argument("--warmup", type=int, default=10, help="warm-up cycles")
    run.add_argument("--clients", type=int, default=4, help="client count")
    run.add_argument("--seed", type=int, default=42, help="RNG seed")
    run.add_argument("--broadcast-size", type=int, default=1000, help="items (D)")
    run.add_argument("--update-range", type=int, default=500)
    run.add_argument("--updates", type=int, default=50, help="updates per cycle (U)")
    run.add_argument("--offset", type=int, default=100)
    run.add_argument("--ops", type=int, default=16, help="reads per query")
    run.add_argument("--read-range", type=int, default=250)
    run.add_argument("--cache-size", type=int, default=125)
    run.add_argument("--think-time", type=float, default=2.0)
    run.add_argument("--retention", type=int, default=16, help="S / V versions")
    run.add_argument(
        "--reports-per-cycle", type=int, default=1, help="sub-cycle reports (§7)"
    )
    run.add_argument(
        "--report-window", type=int, default=0, help="w-window retransmission"
    )
    run.add_argument(
        "--interleaved-server",
        action="store_true",
        help="run server transactions under the real 2PL lock manager",
    )
    run.add_argument(
        "--cohorts",
        action="store_true",
        help=(
            "advance the client population with the cohort engine "
            "(repro.cohort) instead of one kernel process per client; "
            "aggregates match the discrete engine exactly, memory stays "
            "bounded in --cohort-size, so --clients can reach 10^5+"
        ),
    )
    run.add_argument(
        "--cohort-size",
        type=int,
        default=4096,
        metavar="N",
        help="clients advanced per cohort chunk (default: 4096)",
    )
    run.add_argument(
        "--no-columnar",
        action="store_true",
        help=(
            "use the dict-backed reference item-state store instead of "
            "the array-backed columnar store (DESIGN §14); results are "
            "bit-identical, only the server hot path slows down"
        ),
    )
    shard = run.add_argument_group(
        "sharding", "partition items over K broadcast channels (see repro.shard)"
    )
    shard.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="K",
        help=(
            "run the sharded multi-channel server with K shards "
            "(K=1 is bit-identical to the single-channel server)"
        ),
    )
    shard.add_argument(
        "--partitioner",
        default="hash",
        choices=sorted(PARTITIONERS),
        help="item-to-shard mapping (default: hash)",
    )
    shard.add_argument(
        "--shard-consistency",
        default="local",
        choices=list(CONSISTENCY_MODES),
        help="cross-shard read consistency mode (default: local)",
    )
    shard.add_argument(
        "--cross-shard-fraction",
        type=float,
        default=None,
        metavar="F",
        help=(
            "steer this fraction of queries to span shards "
            "(default: the workload's natural mix)"
        ),
    )
    fault = run.add_argument_group(
        "fault injection", "degrade the air interface (see repro.faults)"
    )
    fault.add_argument(
        "--slot-loss", type=float, default=0.0, help="per-slot loss probability"
    )
    fault.add_argument(
        "--burst-loss", type=float, default=0.0, help="burst (fade) start probability"
    )
    fault.add_argument(
        "--burst-length", type=float, default=4.0, help="mean burst length in slots"
    )
    fault.add_argument(
        "--control-loss",
        type=float,
        default=0.0,
        help="control-bucket corruption probability",
    )
    fault.add_argument(
        "--truncation", type=float, default=0.0, help="cycle-truncation probability"
    )
    fault.add_argument(
        "--report-delay",
        type=float,
        default=0.0,
        help="late control-decode probability",
    )
    fault.add_argument(
        "--storm-rate",
        type=float,
        default=0.0,
        help="per-cycle disconnect-storm start probability",
    )
    fault.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help="fault RNG seed (default: derived from --seed)",
    )
    fault.add_argument(
        "--preset",
        default=None,
        metavar="NAME",
        help=(
            "named fault scenario; replaces the individual fault knobs "
            f"(known: {', '.join(preset_names())})"
        ),
    )
    fault.add_argument(
        "--severity",
        type=float,
        default=1.0,
        help="scale the preset's probabilities (default: 1.0)",
    )
    res = run.add_argument_group(
        "resilience", "client recovery and retry (see repro.resilience)"
    )
    res.add_argument(
        "--retry-policy",
        default="immediate",
        choices=sorted(RETRY_POLICIES),
        help="retry scheduling between attempts (default: immediate)",
    )
    res.add_argument(
        "--backoff-base", type=int, default=1, help="first backoff delay (cycles)"
    )
    res.add_argument(
        "--backoff-cap", type=int, default=8, help="max backoff delay (cycles)"
    )
    res.add_argument(
        "--backoff-jitter",
        type=float,
        default=0.0,
        help="jitter fraction added to each delay (seeded)",
    )
    res.add_argument(
        "--deadline",
        type=int,
        default=0,
        help="abandon a query after this many cycles (0 = never)",
    )
    res.add_argument(
        "--watchdog",
        type=int,
        default=0,
        help="escalate after N consecutive aborted attempts (0 = off)",
    )
    res.add_argument(
        "--checkpoint",
        type=int,
        default=0,
        help="checkpoint client state every N heard cycles (0 = off)",
    )
    res.add_argument(
        "--catchup-window",
        type=int,
        default=8,
        help="max outage length for incremental catch-up resync",
    )
    res.add_argument(
        "--crash-rate",
        type=float,
        default=0.0,
        help="per-cycle client crash probability",
    )
    res.add_argument(
        "--crash-length",
        type=float,
        default=2.0,
        help="mean crash outage length in cycles",
    )
    res.add_argument(
        "--degrade-after",
        type=int,
        default=0,
        help="step the degradation ladder down after N faulty cycles (0 = off)",
    )
    res.add_argument(
        "--recover-after",
        type=int,
        default=3,
        help="step the ladder back up after N clean cycles",
    )
    res.add_argument(
        "--resilience-seed",
        type=int,
        default=None,
        help="resilience RNG seed (default: derived from --seed)",
    )
    run.add_argument(
        "--verify",
        action="store_true",
        help="replay every committed query against the correctness oracle",
    )
    trace_group = run.add_argument_group(
        "tracing", "record a structured event trace (see repro.obs)"
    )
    trace_group.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a JSONL event trace (plus FILE.manifest.json)",
    )
    trace_group.add_argument(
        "--trace-level",
        default="query",
        choices=[level.name.lower() for level in TraceLevel if level > 0],
        help="trace depth (default: query)",
    )

    trace = sub.add_parser("trace", help="analyze a recorded JSONL trace")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    for name, help_text in (
        ("summarize", "overall event/outcome summary"),
        ("timeline", "per-transaction event timelines"),
        ("aborts", "abort counts by reason and by root cause"),
        ("airtime", "per-segment slot accounting from cycle events"),
    ):
        cmd = trace_sub.add_parser(name, help=help_text)
        cmd.add_argument("file", help="JSONL trace file")
        if name == "timeline":
            cmd.add_argument(
                "--txn", default=None, help="only this transaction id"
            )
            cmd.add_argument(
                "--client", type=int, default=None, help="only this client"
            )
            cmd.add_argument(
                "--limit", type=int, default=10, help="max timelines shown"
            )
        if name == "aborts":
            cmd.add_argument(
                "--all",
                action="store_true",
                help="include warm-up (unmeasured) aborts",
            )

    bench = sub.add_parser(
        "bench", help="simulator throughput / tracing-overhead benchmark"
    )
    bench.add_argument(
        "suite",
        nargs="?",
        default="overhead",
        choices=["overhead", "hotpath"],
        help="overhead: whole-run tracing cost (default); "
        "hotpath: per-event kernel micro-suite (see repro.obs.hotpath)",
    )
    bench.add_argument("--scenario", default="fig5")
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument("--out", default=None)
    bench.add_argument("--max-overhead", type=float, default=None)
    bench.add_argument("--trace-sample", default=None)
    hot = bench.add_argument_group(
        "hotpath suite", "options for `repro bench hotpath`"
    )
    hot.add_argument(
        "--quick", action="store_true", help="reduced sizes for smoke runs"
    )
    hot.add_argument(
        "--before",
        default=None,
        metavar="FILE",
        help="embed an earlier payload and record speedup ratios",
    )
    hot.add_argument(
        "--against",
        default=None,
        metavar="FILE",
        help="baseline JSON for the events/sec regression gate",
    )
    hot.add_argument(
        "--max-regression",
        type=float,
        default=0.2,
        metavar="FRACTION",
        help="allowed events/sec drop vs --against (default: 0.2)",
    )
    hot.add_argument(
        "--max-shard-overhead",
        type=float,
        default=None,
        metavar="FRACTION",
        help="allowed K=1 sharded slowdown vs single-channel (target: 0.02)",
    )
    hot.add_argument(
        "--max-columnar-regression",
        type=float,
        default=None,
        metavar="FRACTION",
        help=(
            "allowed columnar-lane slowdown vs the dict-reference twin "
            "(target: 0.02)"
        ),
    )
    hot.add_argument(
        "--max-before-regression",
        type=float,
        default=None,
        metavar="FRACTION",
        help="with --before: allowed drop in any recorded speedup ratio",
    )
    hot.add_argument(
        "--profile-top", type=int, default=15, help="profile rows kept"
    )

    experiments = sub.add_parser(
        "experiments", help="regenerate the paper's figures and tables"
    )
    experiments.add_argument(
        "names", nargs="*", metavar="NAME", help="experiments (default: all)"
    )
    experiments.add_argument(
        "--quick", action="store_true", help="reduced profile for smoke runs"
    )
    experiments.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes per sweep (0 = one per CPU, default: serial)",
    )
    experiments.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="resumable cell cache directory",
    )
    experiments.add_argument(
        "--progress",
        action="store_true",
        help="per-cell progress and speedup lines on stderr",
    )
    experiments.add_argument(
        "--preset",
        default=None,
        metavar="NAME",
        help="named fault scenario for the faults experiment",
    )
    experiments.add_argument(
        "--cohorts",
        action="store_true",
        help=(
            "scalability experiment only: sweep the cohort engine to "
            "10^5 clients (see repro.cohort)"
        ),
    )
    experiments.add_argument(
        "--cohort-out",
        default=None,
        metavar="FILE",
        help="with --cohorts: also write the sweep as a bench JSON",
    )
    experiments.add_argument(
        "--shard-out",
        default="results/BENCH_shard.json",
        metavar="FILE",
        help=(
            "sharding experiment: where to write the sweep JSON "
            "(default: results/BENCH_shard.json; empty string disables)"
        ),
    )
    experiments.add_argument(
        "--check",
        action="store_true",
        help="run the parallel-vs-serial determinism oracle instead",
    )
    experiments.add_argument(
        "--artifacts",
        default=None,
        metavar="DIR",
        help="with --check: write serial/parallel CSVs (and diffs) here",
    )

    serve = sub.add_parser(
        "serve",
        help="air a live broadcast over TCP (see repro.live)",
    )
    serve.add_argument(
        "--scheme",
        default="sgt+cache",
        choices=sorted(SCHEME_FACTORIES),
        help="scheme whose broadcast requirements the server airs",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7787, help="TCP port (0 = ephemeral)"
    )
    serve.add_argument(
        "--slot-seconds",
        type=float,
        default=0.0,
        help="wall-clock pacing per broadcast slot (0 = full speed)",
    )
    serve.add_argument("--cycles", type=int, default=120)
    serve.add_argument("--warmup", type=int, default=10)
    serve.add_argument(
        "--clients",
        type=int,
        default=4,
        help="advertised population size (rides in the HELLO frame)",
    )
    serve.add_argument("--seed", type=int, default=42)
    serve.add_argument("--broadcast-size", type=int, default=1000)
    serve.add_argument("--update-range", type=int, default=500)
    serve.add_argument("--updates", type=int, default=50)
    serve.add_argument("--offset", type=int, default=100)
    serve.add_argument("--retention", type=int, default=16)
    serve.add_argument("--ops", type=int, default=16)
    serve.add_argument("--read-range", type=int, default=250)
    serve.add_argument("--cache-size", type=int, default=125)
    serve.add_argument("--think-time", type=float, default=2.0)
    serve.add_argument(
        "--report-window", type=int, default=0, help="w-window retransmission"
    )
    serve.add_argument("--no-columnar", action="store_true")

    listen = sub.add_parser(
        "listen",
        help="join a live broadcast as one client (see repro.live)",
    )
    listen.add_argument("--host", default="127.0.0.1")
    listen.add_argument("--port", type=int, default=7787)
    listen.add_argument(
        "--scheme",
        default=None,
        choices=sorted(SCHEME_FACTORIES),
        help="override the scheme advertised in the server's HELLO",
    )
    listen.add_argument("--client-id", type=int, default=0)
    listen.add_argument(
        "--rng-seed",
        type=int,
        default=None,
        help="workload RNG seed (default: derived from the served seed)",
    )

    sub.add_parser("schemes", help="list scheme labels")

    sizes = sub.add_parser("sizes", help="analytic broadcast sizes (Figure 7)")
    sizes.add_argument("--updates", type=int, default=50)
    sizes.add_argument("--span", type=int, default=3)
    sizes.add_argument("--broadcast-size", type=int, default=1000)

    return parser


def _params_from(args: argparse.Namespace) -> ModelParameters:
    params = (
        ModelParameters()
        .with_server(
            broadcast_size=args.broadcast_size,
            update_range=args.update_range,
            updates_per_cycle=args.updates,
            offset=args.offset,
            retention=args.retention,
        )
        .with_client(
            ops_per_query=args.ops,
            read_range=args.read_range,
            cache_size=args.cache_size,
            think_time=args.think_time,
        )
        .with_sim(
            num_cycles=args.cycles,
            warmup_cycles=args.warmup,
            num_clients=args.clients,
            seed=args.seed,
        )
        .with_resilience(
            retry_policy=args.retry_policy,
            backoff_base=args.backoff_base,
            backoff_cap=args.backoff_cap,
            backoff_jitter=args.backoff_jitter,
            deadline_cycles=args.deadline,
            watchdog_attempts=args.watchdog,
            checkpoint_interval=args.checkpoint,
            catchup_window=args.catchup_window,
            crash_rate=args.crash_rate,
            crash_length=args.crash_length,
            degrade_after=args.degrade_after,
            recover_after=args.recover_after,
            seed=args.resilience_seed,
        )
    )
    if args.preset is not None:
        return get_preset(args.preset).apply(params, args.severity)
    return params.with_faults(
        slot_loss=args.slot_loss,
        burst_rate=args.burst_loss,
        burst_length=args.burst_length,
        control_loss=args.control_loss,
        truncation=args.truncation,
        report_delay=args.report_delay,
        storm_rate=args.storm_rate,
        seed=args.fault_seed,
    )


def _result_rows(result) -> List[List[str]]:
    """Summary-table rows shared by the discrete and cohort run paths."""
    rows = [
        ["scheme", result.scheme_label],
        ["cycles", str(result.cycles_completed)],
        ["mean bcast length (buckets)", f"{result.mean_cycle_slots:.1f}"],
        ["attempts", str(result.total_attempts)],
        ["committed", str(result.committed_attempts)],
        ["abort rate", f"{result.abort_rate:.3f}"],
        ["latency (cycles)", f"{result.mean_latency_cycles:.2f}"],
        ["span (cycles)", f"{result.mean_span:.2f}"],
    ]
    for name, counter in sorted(result.metrics.counters()):
        if name.startswith("abort."):
            rows.append([name, str(counter.value)])
    return rows


def _run_cohorts(args, params, schedule) -> int:
    """`repro run --cohorts`: cohort-engine population run."""
    from repro.cohort import CohortSimulation

    try:
        sim = CohortSimulation(
            params,
            scheme_factory=scheme_factory(args.scheme),
            report_schedule=schedule,
            cohort_size=args.cohort_size,
            columnar=not args.no_columnar,
        )
    except ValueError as error:
        print(f"--cohorts: {error}")
        return 2
    result = sim.run()
    rows = _result_rows(result)
    rows.append(["clients (cohort mode)", str(params.sim.num_clients)])
    rows.append(["cohort size", str(args.cohort_size)])
    rows.append(["client steps", str(sim.steps)])
    if params.faults.active:
        for name, value in sorted(result.metrics.fault_summary().items()):
            rows.append([name, str(value)])
    print(render_table(["measure", "value"], rows, title="simulation result"))
    return 0


def _make_tracer(args, params) -> Optional[Tracer]:
    """``--trace FILE``: tracer plus manifest, shared by every run path."""
    from repro import __version__

    if not args.trace:
        return None
    manifest_path = write_manifest(
        f"{args.trace}.manifest.json",
        params=params,
        scheme=args.scheme,
        extra={"trace": args.trace, "trace_level": args.trace_level},
    )
    tracer = Tracer(
        level=TraceLevel.parse(args.trace_level),
        sinks=[JsonlSink(args.trace)],
    )
    tracer.header(
        version=__version__,
        git_rev=git_revision(),
        scheme=args.scheme,
        seed=args.seed,
        manifest=str(manifest_path),
    )
    return tracer


def _run_sharded(args, params, schedule) -> int:
    """`repro run --shards K`: sharded multi-channel server run."""
    from repro.shard import ShardedSimulation, sharded_violations
    from repro.stats import names as metric_names

    unsupported = [
        flag
        for flag, on in (
            ("--interleaved-server", args.interleaved_server),
            ("resilience knobs", params.resilience.active),
        )
        if on
    ]
    if unsupported:
        print(
            f"--shards is incompatible with {', '.join(unsupported)}: "
            "sharded channels drive plain listeners (run the "
            "single-channel server for 2PL interleaving and recovery)"
        )
        return 2
    tracer = _make_tracer(args, params)
    try:
        sim = ShardedSimulation(
            params,
            scheme_factory(args.scheme),
            num_shards=args.shards,
            partitioner=args.partitioner,
            consistency=args.shard_consistency,
            cross_shard_fraction=args.cross_shard_fraction,
            report_schedule=schedule,
            keep_history=args.verify,
            tracer=tracer,
            columnar=not args.no_columnar,
        )
    except ValueError as error:
        print(f"--shards: {error}")
        return 2
    result = sim.run()
    if tracer is not None:
        tracer.close()
        print(f"trace written to {args.trace}")

    rows = _result_rows(result)
    rows.append(["shards", str(args.shards)])
    rows.append(["partitioner", args.partitioner])
    rows.append(["consistency", args.shard_consistency])
    cross = result.metrics.get_counter(metric_names.SHARD_CROSS_COMMITS)
    rows.append(["cross-shard commits", str(cross.value if cross else 0)])
    if args.shard_consistency == "epoch":
        epoch = result.metrics.get_counter(metric_names.SHARD_EPOCH_ABORTS)
        rows.append(["epoch aborts", str(epoch.value if epoch else 0)])
    for shard in sim.shards:
        sampler = result.metrics.get_sampler(
            metric_names.shard_metric(shard.index, metric_names.BROADCAST_SLOTS)
        )
        if sampler is not None and sampler.count:
            rows.append(
                [
                    f"shard {shard.index} slots",
                    f"{sampler.mean:.1f} mean x {len(shard.items)} items",
                ]
            )
    if params.faults.active:
        for name, value in sorted(result.metrics.fault_summary().items()):
            rows.append([name, str(value)])
    print(render_table(["measure", "value"], rows, title="simulation result"))

    if args.verify:
        bad = sharded_violations(sim)
        print(f"correctness oracle: {len(bad)} violation(s)")
        if bad:
            for txn, why in bad[:5]:
                print(f"  {txn.txn_id} [{why}]: {dict(txn.reads)}")
            return 1
    return 0


def _command_run(args: argparse.Namespace) -> int:
    params = _params_from(args)
    schedule = ReportSchedule(
        per_cycle=args.reports_per_cycle, window=args.report_window
    )
    if args.cohorts:
        unsupported = [
            flag
            for flag, on in (
                ("--trace", bool(args.trace)),
                ("--verify", args.verify),
                ("--interleaved-server", args.interleaved_server),
                ("--shards", args.shards is not None),
                (
                    "--cross-shard-fraction",
                    args.cross_shard_fraction is not None,
                ),
            )
            if on
        ]
        if unsupported:
            print(
                f"--cohorts is incompatible with {', '.join(unsupported)}: "
                "the cohort engine aggregates a single-channel population "
                "(use the discrete engine for per-event tooling and the "
                "sharded server)"
            )
            return 2
        return _run_cohorts(args, params, schedule)
    if args.shards is not None:
        return _run_sharded(args, params, schedule)
    tracer = _make_tracer(args, params)
    sim = Simulation(
        params,
        scheme_factory=scheme_factory(args.scheme),
        report_schedule=schedule,
        keep_history=args.verify,
        interleaved_server=args.interleaved_server,
        tracer=tracer,
        columnar=not args.no_columnar,
    )
    result = sim.run()
    if tracer is not None:
        tracer.close()
        print(f"trace written to {args.trace}")

    rows = _result_rows(result)
    if params.faults.active:
        for name, value in sorted(result.metrics.fault_summary().items()):
            rows.append([name, str(value)])
    if params.resilience.active:
        from repro.stats import names as metric_names

        for name in metric_names.RESILIENCE_COUNTERS:
            counter = result.metrics.get_counter(name)
            rows.append([name, str(counter.value if counter else 0)])
        ttr = result.metrics.get_sampler(metric_names.TIME_TO_RECOVER_CYCLES)
        if ttr is not None and ttr.count:
            rows.append(
                [metric_names.TIME_TO_RECOVER_CYCLES, f"{ttr.mean:.1f} mean"]
            )
    print(render_table(["measure", "value"], rows, title="simulation result"))

    if args.verify:
        from repro.verify import violations

        bad = violations(sim.clients, sim.database, sim.engine.history)
        print(f"correctness oracle: {len(bad)} violation(s)")
        if bad:
            for txn in bad[:5]:
                print(f"  {txn.txn_id}: {dict(txn.reads)}")
            return 1
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    analyzer = TraceAnalyzer.from_jsonl(args.file)

    if args.trace_command == "summarize":
        info = analyzer.summary()
        rows = [
            ["events", str(info["events"])],
            ["cycles", str(info["cycles"])],
            ["last cycle", str(info["last_cycle"])],
            ["t range", f"{info['t_min']:.1f} .. {info['t_max']:.1f}"],
            ["accepted (measured)", f"{info['accepted']} ({info['accepted_measured']})"],
            ["aborted (measured)", f"{info['aborted']} ({info['aborted_measured']})"],
        ]
        header = info["header"]
        if header:
            for key in ("version", "git_rev", "scheme", "seed", "level"):
                if key in header:
                    rows.append([key, str(header[key])])
        print(render_table(["measure", "value"], rows, title=f"trace {args.file}"))
        kind_rows = [
            [kind, str(count)]
            for kind, count in sorted(analyzer.kind_counts().items())
        ]
        print(render_table(["event kind", "count"], kind_rows))
        return 0

    if args.trace_command == "timeline":
        lines = analyzer.timelines(txn=args.txn, client=args.client)
        if not lines:
            print("no matching query events in trace")
            return 1
        for tid in sorted(lines)[: args.limit]:
            print(f"{tid}:")
            for event in lines[tid]:
                extra = {
                    k: v
                    for k, v in event.items()
                    if k not in ("t", "kind", "txn", "client")
                }
                print(f"  t={event['t']:<8g} {event['kind']:<14} {extra}")
        shown = min(len(lines), args.limit)
        if shown < len(lines):
            print(f"... {len(lines) - shown} more (raise --limit)")
        return 0

    if args.trace_command == "aborts":
        measured_only = not args.all
        breakdown = analyzer.abort_breakdown(measured_only=measured_only)
        causes = analyzer.abort_causes(measured_only=measured_only)
        scope = "measured attempts" if measured_only else "all attempts"
        rows = [[r, str(n)] for r, n in sorted(breakdown.items())]
        print(render_table(["reason", "count"], rows, title=f"aborts by reason ({scope})"))
        rows = [[c, str(n)] for c, n in sorted(causes.items())]
        print(render_table(["root cause", "count"], rows, title="aborts by root cause"))
        return 0

    if args.trace_command == "airtime":
        totals = analyzer.airtime_totals()
        if not totals["cycles"]:
            print("no cycle.start events in trace (record at level >= cycle)")
            return 1
        rows = [
            [
                seg,
                str(int(totals[seg])),
                f"{totals[f'{seg}_fraction']:.1%}",
            ]
            for seg in ("control", "index", "data", "overflow")
        ]
        aired = int(totals["aired"])
        rows.append(["aired", str(aired), "100.0%"])
        if aired != int(totals["total"]):
            rows.append(
                ["superframe total", str(int(totals["total"])), "--"]
            )
        print(
            render_table(
                ["segment", "slots", "share"],
                rows,
                title=f"airtime over {int(totals['cycles'])} cycles",
            )
        )
        per_shard = analyzer.shard_airtime()
        if per_shard:
            aired = sum(row["total"] for row in per_shard.values())
            rows = [
                [
                    str(shard),
                    str(row["control"]),
                    str(row["index"]),
                    str(row["data"]),
                    str(row["overflow"]),
                    str(row["total"]),
                    f"{row['total'] / aired:.1%}" if aired else "0.0%",
                ]
                for shard, row in sorted(per_shard.items())
            ]
            print(
                render_table(
                    [
                        "shard",
                        "control",
                        "index",
                        "data",
                        "overflow",
                        "slots",
                        "share",
                    ],
                    rows,
                    title=(
                        f"per-shard airtime ({len(per_shard)} channels; "
                        "superframe = max per cycle, not sum)"
                    ),
                )
            )
        return 0

    raise AssertionError(f"unhandled trace command {args.trace_command!r}")


def _command_experiments(args: argparse.Namespace) -> int:
    if args.check:
        from repro.experiments import parallel

        argv: List[str] = ["check", "--jobs", str(max(args.jobs, 2))]
        if args.artifacts:
            argv += ["--artifacts", args.artifacts]
        argv += args.names
        return parallel.main(argv)

    from repro.experiments.__main__ import main as experiments_main

    argv = list(args.names)
    if args.quick:
        argv.append("--quick")
    argv += ["--jobs", str(args.jobs)]
    if args.cache:
        argv += ["--cache", args.cache]
    if args.progress:
        argv.append("--progress")
    if args.preset:
        argv += ["--preset", args.preset]
    if args.cohorts:
        argv.append("--cohorts")
    if args.cohort_out:
        argv += ["--cohort-out", args.cohort_out]
    argv += ["--shard-out", args.shard_out]
    return experiments_main(argv)


def _command_bench(args: argparse.Namespace) -> int:
    if args.suite == "hotpath":
        from repro.obs import hotpath

        argv = ["--repeats", str(args.repeats)]
        if args.out:
            argv += ["--out", args.out]
        if args.quick:
            argv.append("--quick")
        if args.before:
            argv += ["--before", args.before]
        if args.against:
            argv += ["--against", args.against]
        argv += ["--max-regression", str(args.max_regression)]
        if args.max_shard_overhead is not None:
            argv += ["--max-shard-overhead", str(args.max_shard_overhead)]
        if args.max_columnar_regression is not None:
            argv += [
                "--max-columnar-regression",
                str(args.max_columnar_regression),
            ]
        if args.max_before_regression is not None:
            argv += [
                "--max-before-regression",
                str(args.max_before_regression),
            ]
        argv += ["--profile-top", str(args.profile_top)]
        return hotpath.main(argv)

    from repro.obs import bench

    argv = ["--scenario", args.scenario, "--repeats", str(args.repeats)]
    if args.out:
        argv += ["--out", args.out]
    if args.max_overhead is not None:
        argv += ["--max-overhead", str(args.max_overhead)]
    if args.trace_sample:
        argv += ["--trace-sample", args.trace_sample]
    return bench.main(argv)


def _serve_params(args: argparse.Namespace) -> ModelParameters:
    return (
        ModelParameters()
        .with_server(
            broadcast_size=args.broadcast_size,
            update_range=args.update_range,
            updates_per_cycle=args.updates,
            offset=args.offset,
            retention=args.retention,
        )
        .with_client(
            ops_per_query=args.ops,
            read_range=args.read_range,
            cache_size=args.cache_size,
            think_time=args.think_time,
        )
        .with_sim(
            num_cycles=args.cycles,
            warmup_cycles=args.warmup,
            num_clients=args.clients,
            seed=args.seed,
        )
    )


def _command_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.live.clock import ImmediateClock, RealTimeClock
    from repro.live.server import LiveBroadcastServer

    params = _serve_params(args)
    scheme = scheme_factory(args.scheme)()
    clock = (
        RealTimeClock(args.slot_seconds)
        if args.slot_seconds > 0
        else ImmediateClock()
    )
    try:
        server = LiveBroadcastServer(
            params,
            scheme.requirements(),
            scheme_label=args.scheme,
            host=args.host,
            port=args.port,
            clock=clock,
            columnar=not args.no_columnar,
            report_schedule=ReportSchedule(window=args.report_window),
        )
    except ValueError as error:
        print(f"serve: {error}")
        return 2

    async def _serve() -> None:
        await server.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, server.request_stop)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        print(
            f"airing {args.scheme} on {server.host}:{server.port} "
            f"({params.sim.num_cycles} cycles; ctrl-c stops cleanly)"
        )
        try:
            await server.run()
        finally:
            await server.stop()

    asyncio.run(_serve())
    print(
        f"aired {server.backend.cycles_completed} cycle(s), "
        f"end time {server.end_time:.0f} slots"
    )
    return 0


def _command_listen(args: argparse.Namespace) -> int:
    import asyncio
    import random as random_module

    from repro.live.client import LiveClient

    rng = (
        random_module.Random(args.rng_seed)
        if args.rng_seed is not None
        else None
    )
    client = LiveClient(
        args.host,
        args.port,
        scheme=args.scheme,
        client_id=args.client_id,
        rng=rng,
    )
    try:
        result = asyncio.run(client.run())
    except KeyboardInterrupt:
        print("listen: interrupted before the broadcast ended")
        return 1
    except (ConnectionError, OSError) as error:
        print(f"listen: {error}")
        return 1
    ratio = result.metrics.get_ratio("attempt.committed")
    rows = [
        ["scheme", result.scheme_label],
        ["cycles heard", str(result.cycles_heard)],
        ["cycles missed", str(result.cycles_missed)],
        ["attempts", str(ratio.total if ratio else 0)],
        ["committed", str(ratio.hits if ratio else 0)],
        ["end time (slots)", f"{result.end_time:.0f}"],
    ]
    print(render_table(["measure", "value"], rows, title="live session"))
    return 0


def _command_schemes() -> int:
    for name in sorted(SCHEME_FACTORIES):
        print(name)
    return 0


def _command_sizes(args: argparse.Namespace) -> int:
    params = ModelParameters().with_server(broadcast_size=args.broadcast_size)
    model = SizeModel(params.server)
    row = model.figure7_row(updates=args.updates, span=args.span)
    rows = [[scheme, f"{value:.2f}"] for scheme, value in sorted(row.items())]
    print(
        render_table(
            ["scheme", "size increase (%)"],
            rows,
            title=f"U={args.updates}, span={args.span}, D={args.broadcast_size}",
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        sys.stderr.close()
        return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "run":
        return _command_run(args)
    if args.command == "trace":
        return _command_trace(args)
    if args.command == "bench":
        return _command_bench(args)
    if args.command == "experiments":
        return _command_experiments(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "listen":
        return _command_listen(args)
    if args.command == "schemes":
        return _command_schemes()
    if args.command == "sizes":
        return _command_sizes(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
