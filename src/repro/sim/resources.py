"""Contention primitives: capacity-limited resources and message stores."""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, List, Optional

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment


class Request(Event):
    """Pending acquisition of a :class:`Resource` slot.

    Usable as a context manager so a process can write::

        with resource.request() as req:
            yield req
            ...
    """

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request from the wait queue."""
        if not self.triggered:
            try:
                self.resource._waiting.remove(self)
            except ValueError:  # pragma: no cover - already granted/raced
                pass


class Resource:
    """A resource with a fixed number of usage slots (FIFO queueing)."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._users: List[Request] = []
        self._waiting: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self._users)

    @property
    def queue(self) -> List[Request]:
        """Requests waiting for a slot (FIFO order)."""
        return list(self._waiting)

    def request(self) -> Request:
        """Ask for a slot.  The returned event fires when it is granted."""
        return Request(self)

    def release(self, request: Request) -> None:
        """Return a previously granted slot and wake the next waiter."""
        if request in self._users:
            self._users.remove(request)
            self._grant_waiting()
        else:
            request.cancel()

    def _do_request(self, request: Request) -> None:
        if len(self._users) < self.capacity:
            self._users.append(request)
            request.succeed(request)
        else:
            self._waiting.append(request)

    def _grant_waiting(self) -> None:
        while self._waiting and len(self._users) < self.capacity:
            request = self._waiting.popleft()
            self._users.append(request)
            request.succeed(request)


class StorePut(Event):
    """Pending insertion into a :class:`Store`."""

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item
        store._do_put(self)


class StoreGet(Event):
    """Pending retrieval from a :class:`Store`."""

    def __init__(self, store: "Store") -> None:
        super().__init__(store.env)
        store._do_get(self)


class Store:
    """An unordered buffer of items with blocking put/get.

    Used to model message queues, e.g. the feed of buckets a client tuner
    hands to the transaction-processing layer.
    """

    def __init__(self, env: "Environment", capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity if capacity is not None else float("inf")
        self.items: Deque[Any] = deque()
        self._putters: Deque[StorePut] = deque()
        self._getters: Deque[StoreGet] = deque()

    def put(self, item: Any) -> StorePut:
        """Insert ``item``; blocks (as an event) while the store is full."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Remove and return an item; blocks while the store is empty."""
        return StoreGet(self)

    def _do_put(self, event: StorePut) -> None:
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(event.item)
            event.succeed(None)
        elif len(self.items) < self.capacity:
            self.items.append(event.item)
            event.succeed(None)
        else:
            self._putters.append(event)

    def _do_get(self, event: StoreGet) -> None:
        if self.items:
            event.succeed(self.items.popleft())
            self._admit_putters()
        elif self._putters:
            putter = self._putters.popleft()
            event.succeed(putter.item)
            putter.succeed(None)
        else:
            self._getters.append(event)

    def _admit_putters(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            putter = self._putters.popleft()
            self.items.append(putter.item)
            putter.succeed(None)
