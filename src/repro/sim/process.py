"""Generator-based cooperative processes.

A :class:`Process` wraps a Python generator.  Each time the generator
``yield``\\ s an :class:`~repro.sim.events.Event`, the process suspends until
the event is processed; the kernel then resumes the generator with the
event's value (or throws the event's exception).  A process is itself an
event that fires when the generator returns, carrying the generator's
return value -- so processes can wait for each other.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.events import Event, EventPriority, Initialize, Interrupt, PENDING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment

#: Type alias for the generators accepted by :meth:`Environment.process`.
ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running simulation process.

    Besides being awaitable like any other event, a process supports
    :meth:`interrupt`, which throws :class:`~repro.sim.events.Interrupt`
    into the generator at the current simulation instant.
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: ProcessGenerator) -> None:
        if not hasattr(generator, "throw"):
            raise ValueError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: The event the process is currently waiting for (``None`` when
        #: it is active or finished).
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def name(self) -> str:
        """The name of the wrapped generator function."""
        return self._generator.__name__  # type: ignore[attr-defined]

    @property
    def is_alive(self) -> bool:
        """``True`` until the underlying generator has exited."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` with ``cause`` into this process.

        The interrupt takes effect immediately (at the current simulation
        time, before any other pending events).  Interrupting a finished
        process is an error; interrupting a process waiting on another
        process is allowed -- the waited-on process keeps running.
        """
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise RuntimeError("A process is not allowed to interrupt itself")

        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks = [self._resume]
        self.env.schedule(interrupt_event, priority=EventPriority.URGENT)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        env = self.env
        env._active_process = self

        while True:
            # Detach from the event that woke us; an interrupt may arrive
            # while we were waiting on a still-pending target, in which
            # case we must stop that target from also resuming us later.
            if self._target is not None and self._target is not event:
                if self._target.callbacks is not None:
                    try:
                        self._target.callbacks.remove(self._resume)
                    except ValueError:  # pragma: no cover - defensive
                        pass
            self._target = None

            try:
                if event.ok:
                    next_event = self._generator.send(event.value)
                else:
                    # The event failed: throw its exception into the process.
                    event.defused()
                    next_event = self._generator.throw(event.value)
            except StopIteration as exc:
                # Process finished normally.
                self._ok = True
                self._value = exc.value
                env.schedule(self)
                break
            except BaseException as exc:
                # Process crashed; propagate through the process event.
                self._ok = False
                self._value = exc
                env.schedule(self)
                break

            if not isinstance(next_event, Event):
                error = RuntimeError(
                    f"Process {self.name!r} yielded {next_event!r}, "
                    "which is not an Event"
                )
                self._ok = False
                self._value = error
                env.schedule(self)
                break

            if next_event.callbacks is not None:
                # Event not yet processed: register and suspend.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break

            # Event already processed; feed its value in immediately.
            event = next_event

        env._active_process = None
