"""Instrumentation helpers: time-series recording and summary statistics."""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment


class TimeSeries:
    """A sequence of ``(time, value)`` observations.

    Provides the summary operations the experiment harness needs:
    plain mean, time-weighted mean (for level processes such as queue
    lengths), min/max, and final value.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def record(self, time: float, value: float) -> None:
        """Append one observation at ``time``."""
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"Observations must be in time order: {time} < {self._times[-1]}"
            )
        self._times.append(time)
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(zip(self._times, self._values))

    @property
    def times(self) -> List[float]:
        return list(self._times)

    @property
    def values(self) -> List[float]:
        return list(self._values)

    @property
    def last(self) -> Optional[float]:
        """Most recent value, or ``None`` if no observations."""
        return self._values[-1] if self._values else None

    def mean(self) -> float:
        """Plain (unweighted) mean of the values."""
        if not self._values:
            raise ValueError(f"TimeSeries {self.name!r} is empty")
        return sum(self._values) / len(self._values)

    def time_weighted_mean(self, until: Optional[float] = None) -> float:
        """Mean weighted by how long each value was in effect.

        Each value is assumed to hold from its observation time until the
        next observation (step function); the final value holds until
        ``until`` (default: time of the last observation, contributing 0).
        """
        if not self._values:
            raise ValueError(f"TimeSeries {self.name!r} is empty")
        end = until if until is not None else self._times[-1]
        total = 0.0
        span = 0.0
        for i, (t, v) in enumerate(zip(self._times, self._values)):
            t_next = self._times[i + 1] if i + 1 < len(self._times) else end
            dt = max(0.0, t_next - t)
            total += v * dt
            span += dt
        if span == 0.0:
            return self._values[-1]
        return total / span

    def minimum(self) -> float:
        if not self._values:
            raise ValueError(f"TimeSeries {self.name!r} is empty")
        return min(self._values)

    def maximum(self) -> float:
        if not self._values:
            raise ValueError(f"TimeSeries {self.name!r} is empty")
        return max(self._values)

    def stdev(self) -> float:
        """Sample standard deviation of the values (0 for n < 2)."""
        n = len(self._values)
        if n < 2:
            return 0.0
        mu = self.mean()
        var = sum((v - mu) ** 2 for v in self._values) / (n - 1)
        return math.sqrt(var)


class Monitor:
    """A registry of named :class:`TimeSeries` bound to an environment.

    >>> from repro.sim import Environment, Monitor
    >>> env = Environment()
    >>> mon = Monitor(env)
    >>> mon.observe('queue', 3)
    >>> mon['queue'].last
    3
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._series: Dict[str, TimeSeries] = {}

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` for series ``name`` at the current sim time."""
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = TimeSeries(name)
        series.record(self.env.now, value)

    def __getitem__(self, name: str) -> TimeSeries:
        return self._series[name]

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def names(self) -> List[str]:
        return sorted(self._series)

    def get(self, name: str) -> Optional[TimeSeries]:
        return self._series.get(name)
