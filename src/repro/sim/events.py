"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` is a one-shot occurrence with three lifecycle stages:

1. *untriggered* -- freshly created, not yet scheduled;
2. *triggered* -- given a value (or an exception) and placed on the
   environment's event queue;
3. *processed* -- its callbacks have run and waiting processes resumed.

Processes wait on events by ``yield``-ing them; the kernel resumes the
process with the event's value, or throws the event's exception into the
generator if the event failed.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.engine import Environment


class EventPriority(enum.IntEnum):
    """Tie-break ordering for events scheduled at the same simulation time.

    Lower values run earlier.  ``URGENT`` is used internally for process
    bootstrapping and interrupts so that they take effect before ordinary
    events scheduled at the same instant.
    """

    URGENT = 0
    NORMAL = 1


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The interrupting party supplies an arbitrary ``cause`` that the
    interrupted process can inspect, e.g. a "disconnection" marker in the
    broadcast client model.
    """

    @property
    def cause(self) -> Any:
        """The cause passed to :meth:`repro.sim.process.Process.interrupt`."""
        return self.args[0] if self.args else None


class _PendingType:
    """Sentinel for an event value that has not been set yet."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<PENDING>"


PENDING = _PendingType()


class Event:
    """A one-shot event that processes can wait for.

    Events are triggered exactly once, either successfully via
    :meth:`succeed` or with an exception via :meth:`fail`.  Once the
    environment pops the event off its queue, the event's callbacks run and
    the event is *processed*.

    Events are the simulator's unit of allocation churn -- every timeout,
    wakeup and process step creates one -- so the whole hierarchy uses
    ``__slots__``.  Subclasses outside this module that need ad-hoc
    attributes (e.g. the resource request events) simply omit their own
    ``__slots__`` and get a ``__dict__`` back.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        #: Set when a failure was handed to a waiting process or otherwise
        #: consciously inspected; unhandled failures crash the simulation.
        self._defused = False

    # -- state inspection ------------------------------------------------

    @property
    def triggered(self) -> bool:
        """``True`` once the event has been given a value or an exception."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """``True`` once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded.  Raises if not yet triggered."""
        if self._ok is None:
            raise RuntimeError(f"{self!r} has not yet been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance for failed events)."""
        if self._value is PENDING:
            raise RuntimeError(f"Value of {self!r} is not yet available")
        return self._value

    def defused(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    # -- triggering ------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with ``exception``.

        Any process waiting on the event will have the exception thrown
        into it.  If no process handles the failure the simulation stops
        with the exception.
        """
        if not isinstance(exception, BaseException):
            raise ValueError(f"{exception!r} is not an exception")
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy the outcome of ``event`` onto this event (callback helper)."""
        self._ok = event.ok
        self._value = event.value
        self.env.schedule(self)

    # -- composition -----------------------------------------------------

    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_event, [self, other])

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} object ({state}) at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    Timeouts dominate event allocation (every wait in the client model is
    one), so the constructor writes each slot exactly once instead of
    going through :meth:`Event.__init__` and re-assigning.
    """

    __slots__ = ("_delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"Negative delay {delay}")
        self.env = env
        self.callbacks = []
        self._delay = delay
        self._ok = True
        self._value = value
        self._defused = False
        env.schedule(self, priority=EventPriority.NORMAL, delay=delay)

    @property
    def delay(self) -> float:
        """The delay this timeout was created with."""
        return self._delay

    def __repr__(self) -> str:
        return f"<Timeout({self._delay}) object at {id(self):#x}>"


class Initialize(Event):
    """Internal event used to start a process at creation time."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Any") -> None:
        self.env = env
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        self._defused = False
        env.schedule(self, priority=EventPriority.URGENT)


class ConditionValue:
    """Ordered mapping of the events collected by a condition.

    Behaves like a read-only dict keyed by event instance, preserving the
    original event order (useful when results of an ``AllOf`` need to be
    consumed positionally).
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[Event] = []

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(str(key))
        return key.value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()}>"

    def __iter__(self):
        return iter(self.events)

    def keys(self) -> List[Event]:
        return list(self.events)

    def values(self) -> List[Any]:
        return [event.value for event in self.events]

    def items(self):
        return [(event, event.value) for event in self.events]

    def todict(self) -> dict:
        return {event: event.value for event in self.events}


class Condition(Event):
    """Composite event that triggers when ``evaluate`` says it is satisfied.

    ``evaluate(events, count)`` receives the constituent events and the
    number already processed; :meth:`all_events` and :meth:`any_event` are
    the two standard predicates.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("Events from different environments cannot be mixed")

        # Check if the condition is already met by pre-processed events.
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

        if not self._events and not self.triggered:
            # An empty condition is trivially satisfied.
            self.succeed(ConditionValue())

    def _populate_value(self, value: ConditionValue) -> None:
        for event in self._events:
            if isinstance(event, Condition):
                event._populate_value(value)
            elif event.callbacks is None:
                value.events.append(event)

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        self._count += 1
        if not event.ok:
            # Any failing constituent fails the whole condition.
            event.defused()
            self.fail(event.value)
        elif self._evaluate(self._events, self._count):
            value = ConditionValue()
            self._populate_value(value)
            self.succeed(value)

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        """Predicate: all constituent events processed."""
        return len(events) == count

    @staticmethod
    def any_event(events: List[Event], count: int) -> bool:
        """Predicate: at least one constituent event processed."""
        return count > 0 or not events


class AllOf(Condition):
    """Condition satisfied when *all* of the given events have fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition satisfied when *any* of the given events has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.any_event, events)
