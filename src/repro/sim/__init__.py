"""Discrete-event simulation kernel.

A self-contained, generator-based discrete-event simulation engine in the
style of SimPy, built from scratch because the reproduction must not depend
on packages that are unavailable offline.  The kernel provides:

* :class:`~repro.sim.engine.Environment` -- the event loop and simulation
  clock.
* :class:`~repro.sim.events.Event` and friends -- one-shot triggerable
  events, timeouts, and condition events (``all_of`` / ``any_of``).
* :class:`~repro.sim.process.Process` -- cooperative processes written as
  Python generators that ``yield`` events.
* :class:`~repro.sim.resources.Resource` / :class:`~repro.sim.resources.Store`
  -- contention primitives used by the broadcast channel and client models.
* :class:`~repro.sim.monitor.Monitor` -- time-series instrumentation.

The semantics intentionally mirror SimPy's core so that the broadcast-cycle
simulation reads like textbook simulation code:

>>> from repro.sim import Environment
>>> env = Environment()
>>> log = []
>>> def clock(env, name, tick):
...     while True:
...         yield env.timeout(tick)
...         log.append((name, env.now))
>>> _ = env.process(clock(env, 'fast', 1))
>>> env.run(until=3)
>>> log
[('fast', 1), ('fast', 2)]
"""

from repro.sim.engine import Environment, StopSimulation
from repro.sim.events import (
    AllOf,
    AnyOf,
    Condition,
    Event,
    EventPriority,
    Interrupt,
    Timeout,
)
from repro.sim.monitor import Monitor, TimeSeries
from repro.sim.process import Process, ProcessGenerator
from repro.sim.resources import Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Environment",
    "Event",
    "EventPriority",
    "Interrupt",
    "Monitor",
    "Process",
    "ProcessGenerator",
    "Resource",
    "StopSimulation",
    "Store",
    "TimeSeries",
    "Timeout",
]
