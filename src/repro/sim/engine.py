"""The simulation environment: clock, event queue, and run loop."""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Iterable, List, Optional, Tuple

from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    EventPriority,
    Timeout,
)
from repro.sim.process import Process, ProcessGenerator


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Environment.run` at ``until``."""

    @classmethod
    def callback(cls, event: Event) -> None:
        """Event callback that stops the simulation with the event value."""
        if event.ok:
            raise cls(event.value)
        event.defused()
        raise event.value


class EmptySchedule(Exception):
    """Raised when the event queue runs dry before ``until`` is reached."""


class Environment:
    """Execution environment for a discrete-event simulation.

    The environment holds the simulation clock (:attr:`now`) and a priority
    queue of scheduled events.  Simulated time only advances between events;
    all computation at one instant is instantaneous in simulated time.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = initial_time
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_process: Optional[Process] = None
        self._steps = 0
        self._trace_hook: Optional[Callable[[float, Event], None]] = None

    # -- clock and introspection -----------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped, if any."""
        return self._active_process

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    @property
    def queue_length(self) -> int:
        """Number of events currently scheduled (mainly for tests)."""
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        """Total events dispatched so far (the bench's events/sec base)."""
        return self._steps

    def set_trace_hook(
        self, hook: Optional[Callable[[float, Event], None]]
    ) -> None:
        """Install (or clear) a per-dispatch observer.

        The hook fires after the clock advanced, before callbacks run.
        Engine-level tracing only -- it is on the hottest path in the
        whole simulator, so keep the hook trivial.
        """
        self._trace_hook = hook

    # -- event factories ---------------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator) -> Process:
        """Start a new :class:`Process` running ``generator``."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Condition event that fires once every event in ``events`` has."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Condition event that fires once any event in ``events`` has."""
        return AnyOf(self, events)

    # -- scheduling and stepping -------------------------------------------

    def schedule(
        self,
        event: Event,
        priority: EventPriority = EventPriority.NORMAL,
        delay: float = 0.0,
    ) -> None:
        """Queue ``event`` to be processed ``delay`` units from now."""
        heapq.heappush(
            self._queue, (self._now + delay, int(priority), next(self._eid), event)
        )

    def step(self) -> None:
        """Process the next scheduled event.

        Raises :class:`EmptySchedule` when nothing remains.
        """
        try:
            self._now, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None

        self._steps += 1
        if self._trace_hook is not None:
            self._trace_hook(self._now, event)

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:  # pragma: no cover - defensive
            return
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # Unhandled failure: crash the run loudly rather than losing it.
            exc = event._value
            raise exc if isinstance(exc, BaseException) else RuntimeError(str(exc))

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` runs until the event queue is exhausted.  A number runs
            until the clock reaches that time.  An :class:`Event` runs until
            the event fires and returns its value.
        """
        stop_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
            else:
                at = float(until)
                if at <= self._now:
                    # The target time has already been reached: return at
                    # once with the clock untouched (SimPy semantics).
                    # Sweep drivers that compute `until` from accumulated
                    # floats can legally land exactly on the current clock.
                    return None
                stop_event = Event(self)
                stop_event._ok = True
                stop_event._value = None
                # Urgent so the clock stops *before* events at `at` run.
                self.schedule(stop_event, EventPriority.URGENT, at - self._now)
            if stop_event.callbacks is None:
                return stop_event.value if stop_event.ok else None
            stop_event.callbacks.append(StopSimulation.callback)

        # Inlined dispatch loop (same semantics as `step`, which stays the
        # single-step API): the heappop/callback cycle runs millions of
        # times per simulation, so bound lookups are hoisted out of it.
        queue = self._queue
        pop = heapq.heappop
        try:
            while True:
                if not queue:
                    raise EmptySchedule()
                self._now, _, _, event = pop(queue)
                self._steps += 1
                if self._trace_hook is not None:
                    self._trace_hook(self._now, event)

                callbacks, event.callbacks = event.callbacks, None
                if callbacks is None:  # pragma: no cover - defensive
                    continue
                for callback in callbacks:
                    callback(event)

                if not event._ok and not event._defused:
                    exc = event._value
                    raise exc if isinstance(exc, BaseException) else RuntimeError(
                        str(exc)
                    )
        except StopSimulation as exc:
            return exc.args[0] if exc.args else None
        except EmptySchedule:
            if stop_event is not None and not stop_event.triggered:
                raise RuntimeError(
                    f"No scheduled events left but {stop_event!r} was not triggered"
                ) from None
        return None
