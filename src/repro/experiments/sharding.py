"""The sharding trade-off: channel parallelism vs. cross-shard reads.

Partitioning the broadcast over K channels (:mod:`repro.shard`) shrinks
each shard's cycle -- a client waiting on one shard's control
information sees a shorter period -- but a query whose readset spans
shards must compose per-shard guarantees, and the ``epoch`` consistency
mode pays for global snapshots with extra aborts.  This experiment
sweeps K and the steered cross-shard fraction and reports both sides of
the trade: per-client abort rate and latency against the superframe
length and the epoch-abort overhead.

``python -m repro experiments sharding`` writes the sweep to
``results/BENCH_shard.json`` (the committed artifact) in addition to the
rendered table.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import ExperimentProfile, FULL_PROFILE
from repro.experiments.schemes import scheme_factory
from repro.shard.oracle import contract_params
from repro.shard.runtime import ShardedSimulation
from repro.stats import names as metric_names

SHARD_SWEEP: Sequence[int] = (1, 2, 4)
FRACTION_SWEEP: Sequence[float] = (0.0, 0.5)
SHARD_SCHEMES: Sequence[str] = (
    "inval+cache",
    "sgt+cache",
    "multiversion+cache",
)

#: Cycle budget decoupled from the discrete figure profiles: the axis
#: here is the shard topology, not statistical depth, and the full grid
#: is schemes x K x mode x fraction x seeds cells.
NUM_CYCLES = {"full": 40, "quick": 20}


def _counter(result, name: str) -> int:
    counter = result.metrics.get_counter(name)
    return counter.value if counter else 0


def run(
    profile: ExperimentProfile = FULL_PROFILE,
    schemes: Sequence[str] = SHARD_SCHEMES,
    shard_sweep: Sequence[int] = SHARD_SWEEP,
    fraction_sweep: Sequence[float] = FRACTION_SWEEP,
    partitioner: str = "hash",
    num_cycles: Optional[int] = None,
    verbose: bool = False,
) -> List[Dict]:
    """One row per (scheme, K, mode, fraction, seed) cell.

    K=1 runs once per (scheme, seed) -- there is no cross-shard traffic
    and no mode distinction -- and anchors the sweep at the
    single-channel behaviour (bit-identical by the shard oracle).
    """
    if num_cycles is None:
        quick = profile.num_cycles <= 50
        num_cycles = NUM_CYCLES["quick" if quick else "full"]
    rows: List[Dict] = []
    for scheme in schemes:
        for seed in profile.seeds:
            params = contract_params(
                clients=profile.num_clients,
                seed=seed,
                faults=False,
                num_cycles=num_cycles,
            )
            cells = [(1, "local", None)]
            for shards in shard_sweep:
                if shards == 1:
                    continue
                for mode in ("local", "epoch"):
                    for fraction in fraction_sweep:
                        cells.append((shards, mode, fraction))
            for shards, mode, fraction in cells:
                started = time.perf_counter()
                sim = ShardedSimulation(
                    params,
                    scheme_factory(scheme),
                    num_shards=shards,
                    partitioner=partitioner,
                    consistency=mode,
                    cross_shard_fraction=fraction,
                )
                result = sim.run()
                elapsed = time.perf_counter() - started
                rows.append(
                    {
                        "scheme": scheme,
                        "shards": shards,
                        "mode": mode,
                        "fraction": fraction,
                        "partitioner": partitioner,
                        "seed": seed,
                        "num_cycles": num_cycles,
                        "abort_rate": result.abort_rate,
                        "latency_cycles": result.mean_latency_cycles,
                        "committed": result.committed_attempts,
                        "attempts": result.total_attempts,
                        "superframe_slots": result.mean_cycle_slots,
                        "cross_commits": _counter(
                            result, metric_names.SHARD_CROSS_COMMITS
                        ),
                        "epoch_aborts": _counter(
                            result, metric_names.SHARD_EPOCH_ABORTS
                        ),
                        "seconds": elapsed,
                    }
                )
                if verbose:
                    frac = "nat" if fraction is None else f"{fraction:.2f}"
                    print(
                        f"  {scheme:<20} K={shards} {mode:<5} f={frac} "
                        f"seed={seed} {elapsed:5.1f}s"
                    )
    return rows


def render_rows(rows: Sequence[Dict]) -> str:
    lines = [
        "Sharding: abort rate / latency vs. shard count and cross traffic",
        f"{'scheme':<22}{'K':>3}{'mode':>7}{'frac':>6}{'seed':>6}"
        f"{'abort':>8}{'latency':>9}{'slots':>8}{'cross':>7}{'epoch':>7}",
    ]
    for row in rows:
        frac = "nat" if row["fraction"] is None else f"{row['fraction']:.2f}"
        lines.append(
            f"{row['scheme']:<22}{row['shards']:>3}{row['mode']:>7}"
            f"{frac:>6}{row['seed']:>6}{row['abort_rate']:>8.3f}"
            f"{row['latency_cycles']:>9.3f}{row['superframe_slots']:>8.1f}"
            f"{row['cross_commits']:>7}{row['epoch_aborts']:>7}"
        )
    return "\n".join(lines)


def bench_payload(rows: Sequence[Dict]) -> Dict:
    """The committed ``results/BENCH_shard.json`` shape."""
    return {
        "bench": "shard-sweep",
        "max_shards": max((row["shards"] for row in rows), default=0),
        "rows": list(rows),
    }


def main(
    profile: ExperimentProfile = FULL_PROFILE,
    executor=None,
    cache=None,
    verbose: bool = False,
    shard_out: Optional[str] = "results/BENCH_shard.json",
) -> None:
    rows = run(profile, verbose=verbose)
    print(render_rows(rows))
    if shard_out:
        path = Path(shard_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(bench_payload(rows), indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {shard_out}")


if __name__ == "__main__":
    main()
