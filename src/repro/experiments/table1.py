"""Table 1: the qualitative comparison, with every row measured.

The paper's Table 1 compares invalidation-only, multiversion broadcast,
SGT, and multiversion caching along six axes.  We regenerate the table
from simulation at the default operating point, backing each qualitative
judgement with a number:

* concurrency          -> measured acceptance rate;
* processing overhead  -> measured control-segment share of the bcast;
* size                 -> analytic size increase (at the paper's quoted
                          U=50, span=3 operating point);
* latency              -> measured mean cycles per committed query;
* currency             -> measured mean currency lag (cycles between the
                          state read and the commit-time state);
* disconnections       -> measured acceptance rate when clients randomly
                          miss cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.config import DEFAULTS, ModelParameters
from repro.experiments.parallel import CellOptions, DisconnectSpec
from repro.experiments.render import render_table
from repro.experiments.runner import (
    ExperimentProfile,
    FULL_PROFILE,
    PointResult,
    run_point,
)
from repro.server.sizing import SizeModel

#: The four columns of the paper's Table 1 (scheme registry labels).
TABLE1_SCHEMES: Sequence[str] = (
    "inval",
    "multiversion",
    "sgt",
    "mv-caching",
)

_SIZING_KEY = {
    "inval": "invalidation_only",
    "multiversion": "multiversion_overflow",
    "sgt": "sgt",
    "mv-caching": "multiversion_caching",
}


@dataclass
class Table1Result:
    """All measured quantities keyed by scheme label."""

    connected: Dict[str, PointResult]
    disconnected: Dict[str, PointResult]
    size_increase: Dict[str, float]
    control_share: Dict[str, float]

    def rows(self) -> List[List[str]]:
        def fmt(value: float, pattern: str = "{:.3f}") -> str:
            return pattern.format(value) if value == value else "-"

        rows = [
            ["concurrency (accept rate)"]
            + [fmt(self.connected[s].acceptance_rate) for s in TABLE1_SCHEMES],
            ["latency (cycles)"]
            + [
                fmt(self.connected[s].mean_latency_cycles, "{:.2f}")
                for s in TABLE1_SCHEMES
            ],
            ["currency lag (cycles)"]
            + [
                fmt(self.connected[s].mean_currency_lag, "{:.2f}")
                for s in TABLE1_SCHEMES
            ],
            ["size increase (%)"]
            + [fmt(self.size_increase[s], "{:.2f}") for s in TABLE1_SCHEMES],
            ["control share of bcast (%)"]
            + [fmt(self.control_share[s], "{:.2f}") for s in TABLE1_SCHEMES],
            ["accept rate w/ disconnections"]
            + [fmt(self.disconnected[s].acceptance_rate) for s in TABLE1_SCHEMES],
        ]
        return rows

    def render(self) -> str:
        headers = ["measure"] + list(TABLE1_SCHEMES)
        return render_table(
            headers, self.rows(), title="Table 1: comparison of the approaches"
        )


def run(
    profile: ExperimentProfile = FULL_PROFILE,
    params: ModelParameters = DEFAULTS,
    p_disconnect: float = 0.05,
    executor=None,
) -> Table1Result:
    connected: Dict[str, PointResult] = {}
    disconnected: Dict[str, PointResult] = {}
    size_increase: Dict[str, float] = {}
    control_share: Dict[str, float] = {}

    model = SizeModel(params.server)
    sizing_row = model.figure7_row(updates=50, span=3)

    disconnect_options = CellOptions(
        disconnect=DisconnectSpec(
            p_disconnect=p_disconnect, mean_outage_cycles=1.5
        )
    )
    for name in TABLE1_SCHEMES:
        connected[name] = run_point(
            params, name, profile, label=name, executor=executor
        )
        disconnected[name] = run_point(
            params,
            name,
            profile,
            label=name,
            executor=executor,
            options=disconnect_options,
        )
        size_increase[name] = sizing_row[_SIZING_KEY[name]]
        # Control share measured from the actual run's mean slot counts.
        total = connected[name].mean_cycle_slots
        data_slots = params.server.data_buckets
        control_share[name] = (
            100.0 * max(0.0, total - data_slots) / total if total else float("nan")
        )
    return Table1Result(
        connected=connected,
        disconnected=disconnected,
        size_increase=size_increase,
        control_share=control_share,
    )


def main(
    profile: ExperimentProfile = FULL_PROFILE,
    executor=None,
    cache=None,
    verbose: bool = False,
) -> None:
    print(run(profile, executor=executor).render())


if __name__ == "__main__":
    main()
