"""Figure 8: latency of committed queries, in broadcast cycles.

Left panel: latency vs. operations per query.  Expected: latency grows
roughly with half a cycle per (uncached) read; multiversion-overflow pays
extra because old-version reads wait for the end of the bcast; caching
cuts latency sharply.  (As the paper notes, measured values deviate from
the naive ops/2 expectation because only *accepted* transactions are
counted.)

Right panel: multiversion (overflow organization) latency vs. the offset.
With small overlap fewer reads need an old version, so the latency
penalty shrinks.
"""

from __future__ import annotations

from typing import Sequence

from repro.config import DEFAULTS, ModelParameters
from repro.experiments.fig5 import OFFSET_SWEEP, OPS_SWEEP, _retention_for
from repro.experiments.render import render_sweep
from repro.experiments.runner import (
    ExperimentProfile,
    FULL_PROFILE,
    SweepResult,
    run_point,
)
from repro.experiments.schemes import LATENCY_SCHEMES, scheme_factory


def run_left(
    profile: ExperimentProfile = FULL_PROFILE,
    params: ModelParameters = DEFAULTS,
    schemes: Sequence[str] = tuple(LATENCY_SCHEMES),
    ops_sweep: Sequence[int] = OPS_SWEEP,
) -> SweepResult:
    sweep = SweepResult(
        name="Figure 8 (left): latency vs. operations per query",
        x_label="ops/query",
        xs=[float(x) for x in ops_sweep],
        y_label="latency (cycles)",
    )
    for name in schemes:
        factory = scheme_factory(name)
        for ops in ops_sweep:
            point_params = params.with_client(ops_per_query=ops).with_server(
                retention=_retention_for(ops)
            )
            point = run_point(point_params, factory, profile, label=name)
            sweep.add_point(name, point, point.mean_latency_cycles)
    return sweep


def run_right(
    profile: ExperimentProfile = FULL_PROFILE,
    params: ModelParameters = DEFAULTS,
    offset_sweep: Sequence[int] = OFFSET_SWEEP,
) -> SweepResult:
    sweep = SweepResult(
        name="Figure 8 (right): multiversion latency vs. offset",
        x_label="offset",
        xs=[float(x) for x in offset_sweep],
        y_label="latency (cycles)",
    )
    for name in ("multiversion", "multiversion+cache"):
        factory = scheme_factory(name)
        for offset in offset_sweep:
            point_params = params.with_server(offset=offset)
            point = run_point(point_params, factory, profile, label=name)
            sweep.add_point(name, point, point.mean_latency_cycles)
    return sweep


def main(profile: ExperimentProfile = FULL_PROFILE) -> None:
    print(render_sweep(run_left(profile), precision=2))
    print(render_sweep(run_right(profile), precision=2))


if __name__ == "__main__":
    main()
