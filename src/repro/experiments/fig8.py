"""Figure 8: latency of committed queries, in broadcast cycles.

Left panel: latency vs. operations per query.  Expected: latency grows
roughly with half a cycle per (uncached) read; multiversion-overflow pays
extra because old-version reads wait for the end of the bcast; caching
cuts latency sharply.  (As the paper notes, measured values deviate from
the naive ops/2 expectation because only *accepted* transactions are
counted.)

Right panel: multiversion (overflow organization) latency vs. the offset.
With small overlap fewer reads need an old version, so the latency
penalty shrinks.
"""

from __future__ import annotations

from typing import Sequence

from repro.config import DEFAULTS, ModelParameters
from repro.experiments.fig5 import OFFSET_SWEEP, OPS_SWEEP, _retention_for
from repro.experiments.parallel import SweepPlan, run_plan
from repro.experiments.render import render_sweep
from repro.experiments.runner import (
    ExperimentProfile,
    FULL_PROFILE,
    SweepResult,
)
from repro.experiments.schemes import LATENCY_SCHEMES


def plan_left(
    params: ModelParameters = DEFAULTS,
    schemes: Sequence[str] = tuple(LATENCY_SCHEMES),
    ops_sweep: Sequence[int] = OPS_SWEEP,
) -> SweepPlan:
    plan = SweepPlan(
        name="Figure 8 (left): latency vs. operations per query",
        x_label="ops/query",
        xs=[float(x) for x in ops_sweep],
        y_label="latency (cycles)",
    )
    for name in schemes:
        for ops in ops_sweep:
            point_params = params.with_client(ops_per_query=ops).with_server(
                retention=_retention_for(ops)
            )
            plan.add(
                name, point_params, ops, series=name, measure="mean_latency_cycles"
            )
    return plan


def run_left(
    profile: ExperimentProfile = FULL_PROFILE,
    params: ModelParameters = DEFAULTS,
    schemes: Sequence[str] = tuple(LATENCY_SCHEMES),
    ops_sweep: Sequence[int] = OPS_SWEEP,
    executor=None,
    cache=None,
    verbose: bool = False,
) -> SweepResult:
    return run_plan(
        plan_left(params, schemes, ops_sweep),
        profile,
        executor=executor,
        cache=cache,
        verbose=verbose,
    )


def plan_right(
    params: ModelParameters = DEFAULTS,
    offset_sweep: Sequence[int] = OFFSET_SWEEP,
) -> SweepPlan:
    plan = SweepPlan(
        name="Figure 8 (right): multiversion latency vs. offset",
        x_label="offset",
        xs=[float(x) for x in offset_sweep],
        y_label="latency (cycles)",
    )
    for name in ("multiversion", "multiversion+cache"):
        for offset in offset_sweep:
            plan.add(
                name,
                params.with_server(offset=offset),
                offset,
                series=name,
                measure="mean_latency_cycles",
            )
    return plan


def run_right(
    profile: ExperimentProfile = FULL_PROFILE,
    params: ModelParameters = DEFAULTS,
    offset_sweep: Sequence[int] = OFFSET_SWEEP,
    executor=None,
    cache=None,
    verbose: bool = False,
) -> SweepResult:
    return run_plan(
        plan_right(params, offset_sweep),
        profile,
        executor=executor,
        cache=cache,
        verbose=verbose,
    )


def main(
    profile: ExperimentProfile = FULL_PROFILE,
    executor=None,
    cache=None,
    verbose: bool = False,
) -> None:
    common = dict(executor=executor, cache=cache, verbose=verbose)
    print(render_sweep(run_left(profile, **common), precision=2))
    print(render_sweep(run_right(profile, **common), precision=2))


if __name__ == "__main__":
    main()
