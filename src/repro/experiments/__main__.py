"""Run the experiment harness: every figure and table, or one by name.

    python -m repro.experiments                  # everything, full profile
    python -m repro.experiments --quick          # everything, reduced profile
    python -m repro.experiments faults           # one experiment by name
    python -m repro.experiments fig5 --jobs 4    # shard cells over 4 workers
    python -m repro.experiments --jobs 0 --cache results/.cells
                                                 # one worker per CPU, resumable

``--jobs`` shards every sweep's (scheme, x, seed) cells over worker
processes (see :mod:`repro.experiments.parallel`); output is
byte-identical to the serial run.  ``--cache DIR`` makes sweeps
resumable: finished cells are stored on disk and a re-run only
simulates the missing ones.
"""

from __future__ import annotations

import argparse
import time
from typing import List, Optional

from repro.experiments import FULL_PROFILE, QUICK_PROFILE
from repro.experiments import (
    faults,
    fig5,
    fig6,
    fig7,
    fig8,
    resilience,
    retention,
    scalability,
    sharding,
    table1,
)
from repro.experiments.parallel import CellCache, make_executor
from repro.faults.presets import preset_names

#: Name -> module with a ``main(profile, ...)`` entry point, in run order.
EXPERIMENTS = {
    "fig7": fig7,
    "fig5": fig5,
    "fig6": fig6,
    "fig8": fig8,
    "table1": table1,
    "scalability": scalability,
    "retention": retention,
    "faults": faults,
    "resilience": resilience,
    "sharding": sharding,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="regenerate the paper's figures and tables",
    )
    parser.add_argument(
        "names",
        nargs="*",
        metavar="NAME",
        help=f"experiments to run (default: all; known: {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced profile for smoke runs"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes per sweep (0 = one per CPU, default 1 = serial)",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="resumable cell cache directory (restart a killed sweep for free)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="per-cell progress and wall/cpu speedup lines on stderr",
    )
    parser.add_argument(
        "--preset",
        default=None,
        metavar="NAME",
        help=(
            "named fault scenario for the faults experiment "
            f"(known: {', '.join(preset_names())})"
        ),
    )
    parser.add_argument(
        "--cohorts",
        action="store_true",
        help=(
            "scalability experiment only: sweep the cohort engine to "
            "10^5 clients instead of the discrete kernel"
        ),
    )
    parser.add_argument(
        "--cohort-out",
        default=None,
        metavar="FILE",
        help="with --cohorts: also write the sweep as a bench JSON",
    )
    parser.add_argument(
        "--shard-out",
        default="results/BENCH_shard.json",
        metavar="FILE",
        help=(
            "sharding experiment: where to write the sweep JSON "
            "(default: results/BENCH_shard.json; empty string disables)"
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    profile = QUICK_PROFILE if args.quick else FULL_PROFILE
    label = "quick" if args.quick else "full"
    unknown = [n for n in args.names if n not in EXPERIMENTS]
    if unknown:
        known = ", ".join(EXPERIMENTS)
        print(f"Unknown experiment(s): {', '.join(unknown)}; known: {known}")
        return 2
    selected = args.names or list(EXPERIMENTS)
    if args.preset is not None:
        if args.preset not in preset_names():
            known = ", ".join(preset_names())
            print(f"Unknown fault preset {args.preset!r}; known: {known}")
            return 2
        if selected != ["faults"]:
            print("--preset only applies to the faults experiment")
            return 2
    if args.cohorts and selected != ["scalability"]:
        print("--cohorts only applies to the scalability experiment")
        return 2
    executor = make_executor(args.jobs)
    cache = CellCache(args.cache) if args.cache else None

    start = time.time()
    print(
        f"Running {', '.join(selected)} at the {label} profile "
        f"(jobs={executor.jobs})\n"
    )
    for name in selected:
        module = EXPERIMENTS[name]
        if name == "fig7":
            module.main()  # analytic; no simulation profile
        elif name == "faults" and args.preset is not None:
            module.main(
                profile,
                executor=executor,
                cache=cache,
                verbose=args.progress,
                preset=args.preset,
            )
        elif name == "scalability" and args.cohorts:
            module.main(
                profile,
                verbose=args.progress,
                cohorts=True,
                cohort_out=args.cohort_out,
            )
        elif name == "sharding":
            module.main(
                profile, verbose=args.progress, shard_out=args.shard_out
            )
        else:
            module.main(
                profile, executor=executor, cache=cache, verbose=args.progress
            )
    print(f"All experiments done in {time.time() - start:.0f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
