"""Run the complete experiment harness: every figure and table.

    python -m repro.experiments          # full profile (paper scale)
    python -m repro.experiments --quick  # reduced profile (minutes)
"""

from __future__ import annotations

import sys
import time

from repro.experiments import FULL_PROFILE, QUICK_PROFILE
from repro.experiments import fig5, fig6, fig7, fig8, retention, scalability, table1


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    profile = QUICK_PROFILE if "--quick" in args else FULL_PROFILE
    label = "quick" if profile is QUICK_PROFILE else "full"
    start = time.time()
    print(f"Running every experiment at the {label} profile\n")

    fig7.main()
    fig5.main(profile)
    fig6.main(profile)
    fig8.main(profile)
    table1.main(profile)
    scalability.main(profile)
    retention.main(profile)

    print(f"All experiments done in {time.time() - start:.0f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
