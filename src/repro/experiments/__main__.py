"""Run the experiment harness: every figure and table, or one by name.

    python -m repro.experiments                  # everything, full profile
    python -m repro.experiments --quick          # everything, reduced profile
    python -m repro.experiments faults           # one experiment by name
    python -m repro.experiments faults --quick   # ... at the reduced profile
"""

from __future__ import annotations

import sys
import time

from repro.experiments import FULL_PROFILE, QUICK_PROFILE
from repro.experiments import (
    faults,
    fig5,
    fig6,
    fig7,
    fig8,
    retention,
    scalability,
    table1,
)

#: Name -> module with a ``main(profile)`` entry point, in run order.
EXPERIMENTS = {
    "fig7": fig7,
    "fig5": fig5,
    "fig6": fig6,
    "fig8": fig8,
    "table1": table1,
    "scalability": scalability,
    "retention": retention,
    "faults": faults,
}


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    profile = QUICK_PROFILE if "--quick" in args else FULL_PROFILE
    label = "quick" if profile is QUICK_PROFILE else "full"
    names = [a for a in args if not a.startswith("-")]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        known = ", ".join(EXPERIMENTS)
        print(f"Unknown experiment(s): {', '.join(unknown)}; known: {known}")
        return 2
    selected = names or list(EXPERIMENTS)

    start = time.time()
    print(f"Running {', '.join(selected)} at the {label} profile\n")
    for name in selected:
        module = EXPERIMENTS[name]
        if name == "fig7":
            module.main()  # analytic; no simulation profile
        else:
            module.main(profile)
    print(f"All experiments done in {time.time() - start:.0f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
