"""Multi-seed experiment execution and result aggregation."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.config import ModelParameters
from repro.core.base import Scheme
from repro.runtime import Simulation, SimulationResult


@dataclass(frozen=True)
class ExperimentProfile:
    """How much simulation to spend per data point."""

    num_cycles: int
    warmup_cycles: int
    num_clients: int
    seeds: Sequence[int]

    def apply(self, params: ModelParameters, seed: int) -> ModelParameters:
        return params.with_sim(
            num_cycles=self.num_cycles,
            warmup_cycles=self.warmup_cycles,
            num_clients=self.num_clients,
            seed=seed,
        )


#: Paper-scale runs: enough committed queries per point for stable rates.
FULL_PROFILE = ExperimentProfile(
    num_cycles=150, warmup_cycles=10, num_clients=10, seeds=(11, 23)
)

#: Scaled-down runs for benchmarks and smoke tests.
QUICK_PROFILE = ExperimentProfile(
    num_cycles=50, warmup_cycles=5, num_clients=4, seeds=(11,)
)


@dataclass
class PointResult:
    """One (scheme, x-value) data point merged over seeds."""

    scheme: str
    committed: int = 0
    attempts: int = 0
    latency_sum: float = 0.0
    latency_n: int = 0
    span_sum: float = 0.0
    span_n: int = 0
    currency_sum: float = 0.0
    currency_n: int = 0
    slots_sum: float = 0.0
    slots_n: int = 0
    queries_completed: int = 0
    queries_total: int = 0

    def fold(self, result: SimulationResult) -> None:
        ratio = result.metrics.get_ratio("attempt.committed")
        if ratio is not None:
            self.committed += ratio.hits
            self.attempts += ratio.total
        completed = result.metrics.get_ratio("query.completed")
        if completed is not None:
            self.queries_completed += completed.hits
            self.queries_total += completed.total
        for name, attr in (
            ("txn.latency_cycles", "latency"),
            ("txn.span", "span"),
            ("txn.currency_lag", "currency"),
        ):
            sampler = result.metrics.get_sampler(name)
            if sampler is not None and sampler.count:
                setattr(
                    self,
                    f"{attr}_sum",
                    getattr(self, f"{attr}_sum") + sampler.mean * sampler.count,
                )
                setattr(self, f"{attr}_n", getattr(self, f"{attr}_n") + sampler.count)
        self.slots_sum += result.mean_cycle_slots
        self.slots_n += 1

    # -- derived measures ---------------------------------------------------

    @property
    def abort_rate(self) -> float:
        if self.attempts == 0:
            return float("nan")
        return 1.0 - self.committed / self.attempts

    @property
    def acceptance_rate(self) -> float:
        return 1.0 - self.abort_rate

    @property
    def mean_latency_cycles(self) -> float:
        return self.latency_sum / self.latency_n if self.latency_n else float("nan")

    @property
    def mean_span(self) -> float:
        return self.span_sum / self.span_n if self.span_n else float("nan")

    @property
    def mean_currency_lag(self) -> float:
        return (
            self.currency_sum / self.currency_n if self.currency_n else float("nan")
        )

    @property
    def mean_cycle_slots(self) -> float:
        return self.slots_sum / self.slots_n if self.slots_n else float("nan")

    @property
    def query_completion_rate(self) -> float:
        if self.queries_total == 0:
            return float("nan")
        return self.queries_completed / self.queries_total


def run_point(
    params: ModelParameters,
    scheme: Union[str, Callable[[], Scheme]],
    profile: ExperimentProfile,
    label: str = "",
    executor=None,
    options=None,
    **simulation_kwargs,
) -> PointResult:
    """Run one configuration once per seed and merge the outcomes.

    ``scheme`` is preferably a registry name (see
    :mod:`repro.experiments.schemes`): named schemes run through the
    cell machinery of :mod:`repro.experiments.parallel`, so an
    ``executor`` can fan the seeds out over worker processes and
    ``options`` (a :class:`~repro.experiments.parallel.CellOptions`)
    declares the non-default simulation knobs picklably.

    A factory callable -- or any extra ``simulation_kwargs`` -- cannot
    cross a process boundary, so those points always run inline; the
    point's label is resolved lazily from the first run's scheme label
    instead of constructing a throwaway scheme instance.
    """
    if isinstance(scheme, str) and not simulation_kwargs:
        from repro.experiments.parallel import run_point_cells

        return run_point_cells(
            scheme,
            params,
            profile,
            label=label,
            executor=executor,
            options=options,
        )

    factory = scheme if callable(scheme) else None
    if factory is None:
        from repro.experiments.schemes import scheme_factory

        factory = scheme_factory(scheme)
    point = PointResult(scheme=label)
    for seed in profile.seeds:
        sim = Simulation(
            profile.apply(params, seed), scheme_factory=factory, **simulation_kwargs
        )
        result = sim.run()
        if not point.scheme:
            point.scheme = result.scheme_label
        point.fold(result)
    return point


def write_sweep_csv(
    sweep: "SweepResult",
    path: str,
    params: Optional[ModelParameters] = None,
    profile: Optional[ExperimentProfile] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write a sweep CSV with provenance: a sibling manifest JSON plus
    leading ``# manifest:`` / ``# seeds:`` comment rows in the CSV.

    The manifest records the full parameter tree, the seed list, the git
    revision, and the package versions, so the CSV can always be traced
    back to the exact configuration that produced it.
    """
    from repro.experiments.render import sweep_to_csv
    from repro.obs.manifest import write_manifest

    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    seeds = tuple(profile.seeds) if profile is not None else ()
    manifest_extra = {"experiment": sweep.name, "x_label": sweep.x_label}
    if profile is not None:
        manifest_extra.update(
            num_cycles=profile.num_cycles,
            warmup_cycles=profile.warmup_cycles,
            num_clients=profile.num_clients,
        )
    if sweep.stats is not None:
        manifest_extra.update(sweep.stats.manifest_extra())
    manifest_extra.update(extra or {})
    manifest_path = write_manifest(
        str(target.with_suffix(".manifest.json")),
        params=params,
        seeds=seeds,
        extra=manifest_extra,
    )
    provenance = {"manifest": manifest_path.name}
    if seeds:
        provenance["seeds"] = " ".join(str(s) for s in seeds)
    target.write_text(sweep_to_csv(sweep, provenance=provenance))
    return target


@dataclass
class SweepStats:
    """Execution accounting for one sweep (how, not what).

    Deliberately separate from the measurements themselves: two runs of the
    same sweep at different ``--jobs`` produce identical series but
    different stats, so stats go to the manifest, never the CSV rows.
    """

    jobs: int = 1
    cells: int = 0
    cached: int = 0
    wall_s: float = 0.0
    #: Sum of per-cell durations (excludes cached cells).
    cpu_s: float = 0.0
    #: Per-cell wall durations, in cell order (0.0 for cached cells).
    durations: List[float] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        """Aggregate cell time over wall time: the parallel win."""
        return self.cpu_s / self.wall_s if self.wall_s else float("nan")

    def manifest_extra(self) -> Dict[str, Any]:
        return {
            "jobs": self.jobs,
            "cells": self.cells,
            "cached_cells": self.cached,
            "wall_s": round(self.wall_s, 6),
            "cpu_s": round(self.cpu_s, 6),
            "cell_durations": list(self.durations),
        }


@dataclass
class SweepResult:
    """A family of series over one swept parameter (one figure panel)."""

    name: str
    x_label: str
    xs: List[float]
    y_label: str
    #: series label -> y value per x (NaN for missing points).
    series: Dict[str, List[float]] = field(default_factory=dict)
    #: series label -> PointResult per x, for deeper inspection.
    points: Dict[str, List[PointResult]] = field(default_factory=dict)
    #: Execution accounting when run through the parallel machinery.
    stats: Optional[SweepStats] = None

    def add_point(self, series: str, point: PointResult, y: float) -> None:
        self.series.setdefault(series, []).append(y)
        self.points.setdefault(series, []).append(point)

    def y(self, series: str, x: float) -> float:
        """The series value at ``x``, matching floats tolerantly.

        Sweeps store x values as floats, so a caller asking for the
        value at e.g. ``0.30000000000000004`` (a sum of thirds) or at
        the int ``24`` must still hit the right column; exact
        ``list.index`` matching raised spurious ``ValueError``s.
        """
        for i, known in enumerate(self.xs):
            if math.isclose(known, x, rel_tol=1e-9, abs_tol=1e-12):
                return self.series[series][i]
        raise ValueError(f"x={x!r} is not a swept value (xs={self.xs})")

    def monotone_increasing(self, series: str, tolerance: float = 0.0) -> bool:
        """Shape check helper: is the series non-decreasing (within
        ``tolerance`` of absolute slack per step)?"""
        ys = [v for v in self.series[series] if not math.isnan(v)]
        return all(b >= a - tolerance for a, b in zip(ys, ys[1:]))

    def monotone_decreasing(self, series: str, tolerance: float = 0.0) -> bool:
        ys = [v for v in self.series[series] if not math.isnan(v)]
        return all(b <= a + tolerance for a, b in zip(ys, ys[1:]))
