"""The scalability claim: client performance independent of client count.

All protocols are client-local -- no backchannel exists -- so the abort
rate and latency a client observes must not depend on how many other
clients listen to the same broadcast.  This experiment sweeps the number
of concurrent clients and reports per-client quality metrics, which
should stay flat (up to sampling noise).
"""

from __future__ import annotations

from typing import Sequence

from repro.config import DEFAULTS, ModelParameters
from repro.experiments.render import render_sweep
from repro.experiments.runner import (
    ExperimentProfile,
    FULL_PROFILE,
    SweepResult,
    run_point,
)
from repro.experiments.schemes import scheme_factory

CLIENT_SWEEP: Sequence[int] = (1, 2, 4, 8, 16, 32)


def run(
    profile: ExperimentProfile = FULL_PROFILE,
    params: ModelParameters = DEFAULTS,
    scheme: str = "sgt+cache",
    client_sweep: Sequence[int] = CLIENT_SWEEP,
) -> SweepResult:
    sweep = SweepResult(
        name=f"Scalability: per-client quality vs. client count ({scheme})",
        x_label="clients",
        xs=[float(n) for n in client_sweep],
        y_label="abort rate / latency",
    )
    factory = scheme_factory(scheme)
    for clients in client_sweep:
        point_profile = ExperimentProfile(
            num_cycles=profile.num_cycles,
            warmup_cycles=profile.warmup_cycles,
            num_clients=clients,
            seeds=profile.seeds,
        )
        point = run_point(params, factory, point_profile, label=scheme)
        sweep.add_point("abort_rate", point, point.abort_rate)
        sweep.add_point("latency_cycles", point, point.mean_latency_cycles)
    return sweep


def main(profile: ExperimentProfile = FULL_PROFILE) -> None:
    print(render_sweep(run(profile), precision=3))


if __name__ == "__main__":
    main()
