"""The scalability claim: client performance independent of client count.

All protocols are client-local -- no backchannel exists -- so the abort
rate and latency a client observes must not depend on how many other
clients listen to the same broadcast.  This experiment sweeps the number
of concurrent clients and reports per-client quality metrics, which
should stay flat (up to sampling noise).
"""

from __future__ import annotations

from typing import Sequence

from repro.config import DEFAULTS, ModelParameters
from repro.experiments.parallel import PointSpec, SweepPlan, run_plan
from repro.experiments.render import render_sweep
from repro.experiments.runner import (
    ExperimentProfile,
    FULL_PROFILE,
    SweepResult,
)

CLIENT_SWEEP: Sequence[int] = (1, 2, 4, 8, 16, 32)


def plan(
    params: ModelParameters = DEFAULTS,
    scheme: str = "sgt+cache",
    client_sweep: Sequence[int] = CLIENT_SWEEP,
) -> SweepPlan:
    result = SweepPlan(
        name=f"Scalability: per-client quality vs. client count ({scheme})",
        x_label="clients",
        xs=[float(n) for n in client_sweep],
        y_label="abort rate / latency",
    )
    for clients in client_sweep:
        result.points.append(
            PointSpec(
                scheme=scheme,
                params=params,
                x=float(clients),
                label=scheme,
                measures=(
                    ("abort_rate", "abort_rate"),
                    ("latency_cycles", "mean_latency_cycles"),
                ),
                clients=clients,
            )
        )
    return result


def run(
    profile: ExperimentProfile = FULL_PROFILE,
    params: ModelParameters = DEFAULTS,
    scheme: str = "sgt+cache",
    client_sweep: Sequence[int] = CLIENT_SWEEP,
    executor=None,
    cache=None,
    verbose: bool = False,
) -> SweepResult:
    return run_plan(
        plan(params, scheme, client_sweep),
        profile,
        executor=executor,
        cache=cache,
        verbose=verbose,
    )


def main(
    profile: ExperimentProfile = FULL_PROFILE,
    executor=None,
    cache=None,
    verbose: bool = False,
) -> None:
    print(
        render_sweep(
            run(profile, executor=executor, cache=cache, verbose=verbose),
            precision=3,
        )
    )


if __name__ == "__main__":
    main()
