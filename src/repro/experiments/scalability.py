"""The scalability claim: client performance independent of client count.

All protocols are client-local -- no backchannel exists -- so the abort
rate and latency a client observes must not depend on how many other
clients listen to the same broadcast.  This experiment sweeps the number
of concurrent clients and reports per-client quality metrics, which
should stay flat (up to sampling noise).

Two sweep modes exist:

* the *discrete* sweep (the default) runs the event-driven simulation to
  a few dozen clients -- enough to demonstrate flatness, bounded by the
  kernel's per-client cost;
* the *cohort* sweep (``--cohorts``) runs :class:`repro.cohort.
  CohortSimulation` to 10^5+ clients on one core, extending the same
  per-scheme abort/latency curves by three orders of magnitude (the
  differential oracle guarantees the two engines agree exactly at small
  N, so the curves are directly comparable).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.config import DEFAULTS, ModelParameters
from repro.experiments.parallel import PointSpec, SweepPlan, run_plan
from repro.experiments.render import render_sweep
from repro.experiments.runner import (
    ExperimentProfile,
    FULL_PROFILE,
    QUICK_PROFILE,
    SweepResult,
)

CLIENT_SWEEP: Sequence[int] = (1, 2, 4, 8, 16, 32)

#: Cohort-mode population sweep: to 10^5 clients (10^6 is the same code
#: path, linear in N -- run it off-line, not in CI).
COHORT_CLIENT_SWEEP: Sequence[int] = (100, 1_000, 10_000, 100_000)
COHORT_SCHEMES: Sequence[str] = (
    "inval+cache",
    "sgt+cache",
    "multiversion+cache",
)


def plan(
    params: ModelParameters = DEFAULTS,
    scheme: str = "sgt+cache",
    client_sweep: Sequence[int] = CLIENT_SWEEP,
) -> SweepPlan:
    result = SweepPlan(
        name=f"Scalability: per-client quality vs. client count ({scheme})",
        x_label="clients",
        xs=[float(n) for n in client_sweep],
        y_label="abort rate / latency",
    )
    for clients in client_sweep:
        result.points.append(
            PointSpec(
                scheme=scheme,
                params=params,
                x=float(clients),
                label=scheme,
                measures=(
                    ("abort_rate", "abort_rate"),
                    ("latency_cycles", "mean_latency_cycles"),
                ),
                clients=clients,
            )
        )
    return result


def run(
    profile: ExperimentProfile = FULL_PROFILE,
    params: ModelParameters = DEFAULTS,
    scheme: str = "sgt+cache",
    client_sweep: Sequence[int] = CLIENT_SWEEP,
    executor=None,
    cache=None,
    verbose: bool = False,
) -> SweepResult:
    return run_plan(
        plan(params, scheme, client_sweep),
        profile,
        executor=executor,
        cache=cache,
        verbose=verbose,
    )


def run_cohorts(
    profile: ExperimentProfile = FULL_PROFILE,
    schemes: Optional[Sequence[str]] = None,
    client_sweep: Optional[Sequence[int]] = None,
    cohort_size: int = 4096,
    num_cycles: Optional[int] = None,
    verbose: bool = False,
) -> List[Dict]:
    """Per-scheme abort/latency curves over huge populations.

    Uses the oracle's small-but-nontrivial workload (the differential
    oracle pins cohort == discrete on exactly that workload) with a
    cycle count decoupled from the discrete profiles: population scaling
    is the axis here, so a dozen post-warmup cycles over 10^5 clients
    already aggregates millions of attempts.  Single-core by design --
    the engine's point is that one core suffices.
    """
    from repro.cohort import CohortSimulation
    from repro.cohort.oracle import oracle_params
    from repro.experiments.schemes import scheme_factory

    quick = profile is QUICK_PROFILE
    if schemes is None:
        schemes = COHORT_SCHEMES
    if client_sweep is None:
        # The quick profile stops at 10^4 so smoke runs stay sub-minute;
        # the full profile carries the curves to the 10^5 target.
        client_sweep = (
            tuple(n for n in COHORT_CLIENT_SWEEP if n <= 10_000)
            if quick
            else COHORT_CLIENT_SWEEP
        )
    if num_cycles is None:
        num_cycles = 8 if quick else 12
    seed = tuple(profile.seeds)[0]
    rows: List[Dict] = []
    for scheme in schemes:
        for clients in client_sweep:
            params = oracle_params(
                clients, seed, faults=False, num_cycles=num_cycles
            )
            started = time.perf_counter()
            sim = CohortSimulation(
                params,
                scheme_factory(scheme),
                cohort_size=cohort_size,
            )
            result = sim.run()
            elapsed = time.perf_counter() - started
            rows.append(
                {
                    "scheme": scheme,
                    "clients": clients,
                    "seed": seed,
                    "num_cycles": num_cycles,
                    "abort_rate": result.abort_rate,
                    "latency_cycles": result.mean_latency_cycles,
                    "total_attempts": result.total_attempts,
                    "seconds": elapsed,
                    "clients_per_sec": clients / elapsed if elapsed else 0.0,
                    "steps": sim.steps,
                }
            )
            if verbose:
                print(
                    f"  {scheme:<20} N={clients:<7} {elapsed:7.1f}s "
                    f"({clients / elapsed:8.0f} clients/s)"
                )
    return rows


def render_cohort_rows(rows: Sequence[Dict]) -> str:
    lines = [
        "Scalability (cohort mode): per-client quality vs. population",
        f"{'scheme':<22}{'clients':>9}{'abort':>9}{'latency':>9}"
        f"{'attempts':>10}{'wall s':>9}{'clients/s':>11}",
    ]
    for row in rows:
        lines.append(
            f"{row['scheme']:<22}{row['clients']:>9}"
            f"{row['abort_rate']:>9.3f}{row['latency_cycles']:>9.3f}"
            f"{row['total_attempts']:>10}{row['seconds']:>9.1f}"
            f"{row['clients_per_sec']:>11.0f}"
        )
    return "\n".join(lines)


def cohort_bench_payload(
    rows: Sequence[Dict], cohort_size: int = 4096
) -> Dict:
    """The committed ``results/BENCH_cohort.json`` shape."""
    return {
        "bench": "cohort-scalability",
        "cohort_size": cohort_size,
        "max_clients": max((row["clients"] for row in rows), default=0),
        "rows": list(rows),
    }


def main(
    profile: ExperimentProfile = FULL_PROFILE,
    executor=None,
    cache=None,
    verbose: bool = False,
    cohorts: bool = False,
    cohort_out: Optional[str] = None,
) -> None:
    if cohorts:
        rows = run_cohorts(profile, verbose=verbose)
        print(render_cohort_rows(rows))
        if cohort_out:
            payload = cohort_bench_payload(rows)
            Path(cohort_out).write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n"
            )
            print(f"wrote {cohort_out}")
        return
    print(
        render_sweep(
            run(profile, executor=executor, cache=cache, verbose=verbose),
            precision=3,
        )
    )


if __name__ == "__main__":
    main()
