"""Fault sweep: abort rate vs. bucket-loss probability per scheme.

The paper's performance model assumes a perfect downstream channel; this
experiment asks how gracefully each processing scheme degrades when the
air interface loses buckets (:mod:`repro.faults`).  Every scheme stays
*correct* under loss -- the oracle suite pins that down -- so the whole
cost of an imperfect channel shows up in these performance curves:

* the invalidation-driven schemes abort more as loss grows, because a
  lost control segment dooms every active query (the conservative
  degrade of §5.2.2 applied to faults);
* multiversion broadcast keeps accepting transactions but pays latency,
  since lost buckets force a retry on the next repetition or cycle.

Writes ``results/faults_abort_vs_loss.csv`` (one column per scheme) plus
a fault-counter summary so runs can be compared across revisions.

    python -m repro.experiments faults [--quick]
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence

from repro.config import DEFAULTS, ModelParameters
from repro.experiments.parallel import Cell, SerialExecutor, SweepPlan, run_plan
from repro.faults.presets import get_preset
from repro.experiments.render import render_sweep, render_table
from repro.experiments.runner import (
    ExperimentProfile,
    FULL_PROFILE,
    SweepResult,
    write_sweep_csv,
)
from repro.stats.metrics import FAULT_COUNTERS

#: Per-slot loss probabilities swept (0 = the perfect-channel baseline).
LOSS_SWEEP: Sequence[float] = (0.0, 0.01, 0.02, 0.05, 0.1, 0.2)

#: The four processing schemes of the paper, one per family.
FAULT_SCHEMES: Sequence[str] = (
    "inval",
    "versioned-cache",
    "multiversion",
    "mv-caching",
)

#: Where the CSV artifacts land, relative to the working directory.
RESULTS_DIR = Path("results")

#: Severity multipliers swept when a named preset is selected.
SEVERITY_SWEEP: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0)


def plan(
    params: ModelParameters = DEFAULTS,
    schemes: Sequence[str] = FAULT_SCHEMES,
    loss_sweep: Sequence[float] = LOSS_SWEEP,
) -> SweepPlan:
    result = SweepPlan(
        name="Faults: abort rate vs. slot loss probability",
        x_label="slot_loss",
        xs=[float(p) for p in loss_sweep],
        y_label="abort rate",
    )
    for name in schemes:
        for p in loss_sweep:
            result.add(name, params.with_faults(slot_loss=p), p, series=name)
    return result


def plan_preset(
    preset_name: str,
    params: ModelParameters = DEFAULTS,
    schemes: Sequence[str] = FAULT_SCHEMES,
    severities: Sequence[float] = SEVERITY_SWEEP,
) -> SweepPlan:
    """Abort rate vs. severity of one named scenario preset.

    The preset pins the fault seed, so every scheme and every severity
    faces the *same* weather pattern, only denser -- the x axis isolates
    scenario intensity instead of mixing impairment kinds.
    """
    preset = get_preset(preset_name)
    result = SweepPlan(
        name=f"Faults: abort rate vs. severity of preset {preset.name!r}",
        x_label="severity",
        xs=[float(s) for s in severities],
        y_label="abort rate",
    )
    for name in schemes:
        for severity in severities:
            result.add(
                name, preset.apply(params, severity), severity, series=name
            )
    return result


def run_loss_sweep(
    profile: ExperimentProfile = FULL_PROFILE,
    params: ModelParameters = DEFAULTS,
    schemes: Sequence[str] = FAULT_SCHEMES,
    loss_sweep: Sequence[float] = LOSS_SWEEP,
    executor=None,
    cache=None,
    verbose: bool = False,
) -> SweepResult:
    """Abort rate vs. independent per-slot loss probability.

    Slot loss hits control slots too, so higher loss also means more
    whole cycles missed; the fault seed is pinned per simulation seed, so
    every scheme faces the *same* loss schedule at each x.
    """
    return run_plan(
        plan(params, schemes, loss_sweep),
        profile,
        executor=executor,
        cache=cache,
        verbose=verbose,
    )


def fault_counter_rows(
    profile: ExperimentProfile = FULL_PROFILE,
    params: ModelParameters = DEFAULTS,
    schemes: Sequence[str] = FAULT_SCHEMES,
    slot_loss: float = 0.1,
    executor=None,
):
    """One summary row of fault counters per scheme at a fixed loss rate."""
    cells = [
        Cell(
            scheme=name,
            params=profile.apply(
                params.with_faults(slot_loss=slot_loss), profile.seeds[0]
            ),
            seed=profile.seeds[0],
        )
        for name in schemes
    ]
    results = (executor or SerialExecutor()).run(cells)
    rows = []
    for name, result in zip(schemes, results):
        summary = result.metrics.fault_summary()
        ratio = result.metrics.get_ratio("attempt.committed")
        abort_rate = ratio.complement if ratio and ratio.total else 0.0
        rows.append(
            [name]
            + [str(summary[counter]) for counter in FAULT_COUNTERS]
            + [f"{abort_rate:.3f}"]
        )
    return rows


def write_csv(
    sweep: SweepResult,
    filename: str = "faults_abort_vs_loss.csv",
    profile: Optional[ExperimentProfile] = None,
    params: ModelParameters = DEFAULTS,
) -> Path:
    return write_sweep_csv(
        sweep,
        str(RESULTS_DIR / filename),
        params=params,
        profile=profile,
        extra={"loss_sweep": list(LOSS_SWEEP), "schemes": list(FAULT_SCHEMES)},
    )


def main(
    profile: ExperimentProfile = FULL_PROFILE,
    executor=None,
    cache=None,
    verbose: bool = False,
    preset: Optional[str] = None,
) -> None:
    if preset is not None:
        sweep = run_plan(
            plan_preset(preset),
            profile,
            executor=executor,
            cache=cache,
            verbose=verbose,
        )
        print(render_sweep(sweep))
        path = write_sweep_csv(
            sweep,
            str(RESULTS_DIR / f"faults_preset_{preset}.csv"),
            params=DEFAULTS,
            profile=profile,
            extra={
                "preset": preset,
                "severities": list(SEVERITY_SWEEP),
                "schemes": list(FAULT_SCHEMES),
            },
        )
        print(f"Wrote {path}\n")
        return
    sweep = run_loss_sweep(profile, executor=executor, cache=cache, verbose=verbose)
    print(render_sweep(sweep))
    path = write_csv(sweep, profile=profile)
    print(f"Wrote {path}\n")
    headers = ["scheme"] + [c.removeprefix("fault.") for c in FAULT_COUNTERS] + [
        "abort_rate"
    ]
    rows = fault_counter_rows(profile, executor=executor)
    print(
        render_table(
            headers, rows, title="Fault counters at slot_loss=0.1 (first seed)"
        )
    )


if __name__ == "__main__":
    main()
