"""Fault sweep: abort rate vs. bucket-loss probability per scheme.

The paper's performance model assumes a perfect downstream channel; this
experiment asks how gracefully each processing scheme degrades when the
air interface loses buckets (:mod:`repro.faults`).  Every scheme stays
*correct* under loss -- the oracle suite pins that down -- so the whole
cost of an imperfect channel shows up in these performance curves:

* the invalidation-driven schemes abort more as loss grows, because a
  lost control segment dooms every active query (the conservative
  degrade of §5.2.2 applied to faults);
* multiversion broadcast keeps accepting transactions but pays latency,
  since lost buckets force a retry on the next repetition or cycle.

Writes ``results/faults_abort_vs_loss.csv`` (one column per scheme) plus
a fault-counter summary so runs can be compared across revisions.

    python -m repro.experiments faults [--quick]
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence

from repro.config import DEFAULTS, ModelParameters
from repro.experiments.render import render_sweep, render_table
from repro.experiments.runner import (
    ExperimentProfile,
    FULL_PROFILE,
    SweepResult,
    run_point,
    write_sweep_csv,
)
from repro.experiments.schemes import scheme_factory
from repro.runtime import Simulation
from repro.stats.metrics import FAULT_COUNTERS

#: Per-slot loss probabilities swept (0 = the perfect-channel baseline).
LOSS_SWEEP: Sequence[float] = (0.0, 0.01, 0.02, 0.05, 0.1, 0.2)

#: The four processing schemes of the paper, one per family.
FAULT_SCHEMES: Sequence[str] = (
    "inval",
    "versioned-cache",
    "multiversion",
    "mv-caching",
)

#: Where the CSV artifacts land, relative to the working directory.
RESULTS_DIR = Path("results")


def run_loss_sweep(
    profile: ExperimentProfile = FULL_PROFILE,
    params: ModelParameters = DEFAULTS,
    schemes: Sequence[str] = FAULT_SCHEMES,
    loss_sweep: Sequence[float] = LOSS_SWEEP,
) -> SweepResult:
    """Abort rate vs. independent per-slot loss probability.

    Slot loss hits control slots too, so higher loss also means more
    whole cycles missed; the fault seed is pinned per simulation seed, so
    every scheme faces the *same* loss schedule at each x.
    """
    sweep = SweepResult(
        name="Faults: abort rate vs. slot loss probability",
        x_label="slot_loss",
        xs=[float(p) for p in loss_sweep],
        y_label="abort rate",
    )
    for name in schemes:
        factory = scheme_factory(name)
        for p in loss_sweep:
            point_params = params.with_faults(slot_loss=p)
            point = run_point(point_params, factory, profile, label=name)
            sweep.add_point(name, point, point.abort_rate)
    return sweep


def fault_counter_rows(
    profile: ExperimentProfile = FULL_PROFILE,
    params: ModelParameters = DEFAULTS,
    schemes: Sequence[str] = FAULT_SCHEMES,
    slot_loss: float = 0.1,
):
    """One summary row of fault counters per scheme at a fixed loss rate."""
    rows = []
    for name in schemes:
        factory = scheme_factory(name)
        point_params = profile.apply(
            params.with_faults(slot_loss=slot_loss), profile.seeds[0]
        )
        sim = Simulation(point_params, scheme_factory=factory)
        result = sim.run()
        summary = result.metrics.fault_summary()
        rows.append(
            [name]
            + [str(summary[counter]) for counter in FAULT_COUNTERS]
            + [f"{result.abort_rate:.3f}"]
        )
    return rows


def write_csv(
    sweep: SweepResult,
    filename: str = "faults_abort_vs_loss.csv",
    profile: Optional[ExperimentProfile] = None,
    params: ModelParameters = DEFAULTS,
) -> Path:
    return write_sweep_csv(
        sweep,
        str(RESULTS_DIR / filename),
        params=params,
        profile=profile,
        extra={"loss_sweep": list(LOSS_SWEEP), "schemes": list(FAULT_SCHEMES)},
    )


def main(profile: ExperimentProfile = FULL_PROFILE) -> None:
    sweep = run_loss_sweep(profile)
    print(render_sweep(sweep))
    path = write_csv(sweep, profile=profile)
    print(f"Wrote {path}\n")
    headers = ["scheme"] + [c.removeprefix("fault.") for c in FAULT_COUNTERS] + [
        "abort_rate"
    ]
    rows = fault_counter_rows(profile)
    print(
        render_table(
            headers, rows, title="Fault counters at slot_loss=0.1 (first seed)"
        )
    )


if __name__ == "__main__":
    main()
