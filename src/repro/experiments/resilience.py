"""Resilience sweep: what does a retry policy buy under channel loss?

The faults experiment shows the *cost* of an imperfect channel; this one
compares how much of it each retry policy claws back.  The seed's
immediate-retry loop burns attempts inside dead or contended cycles, so
under loss its query completion rate collapses faster than the abort
rate alone explains; capped backoff and cause-aware scheduling spread
the same ``max_attempts`` budget across cycles where they can succeed.

Two artifacts:

* ``results/resilience_policies.csv`` -- query completion rate vs. slot
  loss, one series per policy (fixed scheme, the invalidation cache);
* a recovery table at a fixed crash rate: crashes, checkpoint restores,
  and mean time-to-recover per scheme, demonstrating the crash-restart
  protocols end to end (w-window retransmission on, so incremental
  catch-up actually engages).

    python -m repro.experiments resilience [--quick]
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence

from repro.config import DEFAULTS, ModelParameters
from repro.experiments.parallel import (
    Cell,
    CellOptions,
    SerialExecutor,
    SweepPlan,
    run_plan,
)
from repro.experiments.render import render_sweep, render_table
from repro.experiments.runner import (
    ExperimentProfile,
    FULL_PROFILE,
    SweepResult,
    write_sweep_csv,
)
from repro.stats import names as metric_names

#: Per-slot loss probabilities swept.
LOSS_SWEEP: Sequence[float] = (0.0, 0.02, 0.05, 0.1, 0.2)

#: The policies compared; ``immediate`` is the seed behaviour.
POLICIES: Sequence[str] = ("immediate", "backoff", "cause-aware")

#: Scheme held fixed across the policy sweep.
SWEEP_SCHEME = "inval+cache"

#: Schemes in the crash-recovery table (one per family).
RECOVERY_SCHEMES: Sequence[str] = (
    "inval+cache",
    "versioned-cache",
    "sgt+cache",
    "multiversion",
    "mv-caching",
)

RESULTS_DIR = Path("results")


def policy_params(params: ModelParameters, policy: str) -> ModelParameters:
    """``params`` with one retry policy enabled (defaults otherwise)."""
    return params.with_resilience(retry_policy=policy)


def plan(
    params: ModelParameters = DEFAULTS,
    policies: Sequence[str] = POLICIES,
    loss_sweep: Sequence[float] = LOSS_SWEEP,
) -> SweepPlan:
    result = SweepPlan(
        name="Resilience: query completion vs. slot loss per retry policy",
        x_label="slot_loss",
        xs=[float(p) for p in loss_sweep],
        y_label="query completion rate",
    )
    for policy in policies:
        for p in loss_sweep:
            result.add(
                SWEEP_SCHEME,
                policy_params(params.with_faults(slot_loss=p), policy),
                p,
                series=policy,
                measure="query_completion_rate",
            )
    return result


def run_policy_sweep(
    profile: ExperimentProfile = FULL_PROFILE,
    params: ModelParameters = DEFAULTS,
    executor=None,
    cache=None,
    verbose: bool = False,
) -> SweepResult:
    return run_plan(
        plan(params), profile, executor=executor, cache=cache, verbose=verbose
    )


def recovery_rows(
    profile: ExperimentProfile = FULL_PROFILE,
    params: ModelParameters = DEFAULTS,
    schemes: Sequence[str] = RECOVERY_SCHEMES,
    executor=None,
):
    """Crash-recovery summary: one row per scheme at a fixed crash rate."""
    crashy = params.with_resilience(
        retry_policy="cause-aware",
        checkpoint_interval=5,
        crash_rate=0.05,
        crash_length=2.0,
        catchup_window=8,
    )
    options = CellOptions(report_window=8)
    cells = [
        Cell(
            scheme=name,
            params=profile.apply(crashy, profile.seeds[0]),
            seed=profile.seeds[0],
            options=options,
        )
        for name in schemes
    ]
    results = (executor or SerialExecutor()).run(cells)
    rows = []
    for name, result in zip(schemes, results):
        counters = {
            counter: (result.metrics.get_counter(counter).value
                      if result.metrics.get_counter(counter)
                      else 0)
            for counter in metric_names.RESILIENCE_COUNTERS
        }
        ttr = result.metrics.get_sampler(metric_names.TIME_TO_RECOVER_CYCLES)
        rows.append(
            [
                name,
                str(counters[metric_names.RESILIENCE_CRASHES]),
                str(counters[metric_names.RESILIENCE_CHECKPOINT_SAVES]),
                str(counters[metric_names.RESILIENCE_CHECKPOINT_RESTORES]),
                str(counters[metric_names.RESILIENCE_RETRIES]),
                f"{ttr.mean:.1f}" if ttr is not None and ttr.count else "-",
            ]
        )
    return rows


def write_csv(
    sweep: SweepResult,
    filename: str = "resilience_policies.csv",
    profile: Optional[ExperimentProfile] = None,
    params: ModelParameters = DEFAULTS,
) -> Path:
    return write_sweep_csv(
        sweep,
        str(RESULTS_DIR / filename),
        params=params,
        profile=profile,
        extra={
            "loss_sweep": list(LOSS_SWEEP),
            "policies": list(POLICIES),
            "scheme": SWEEP_SCHEME,
        },
    )


def main(
    profile: ExperimentProfile = FULL_PROFILE,
    executor=None,
    cache=None,
    verbose: bool = False,
) -> None:
    sweep = run_policy_sweep(
        profile, executor=executor, cache=cache, verbose=verbose
    )
    print(render_sweep(sweep))
    path = write_csv(sweep, profile=profile)
    print(f"Wrote {path}\n")
    headers = [
        "scheme",
        "crashes",
        "ckpt_saves",
        "ckpt_restores",
        "retries",
        "ttr_cycles",
    ]
    rows = recovery_rows(profile, executor=executor)
    print(
        render_table(
            headers,
            rows,
            title="Crash recovery at crash_rate=0.05 (first seed, w-window 8)",
        )
    )


if __name__ == "__main__":
    main()
