"""Figure 7: broadcast-size increase vs. span and vs. updates (analytic).

This figure is computed from the closed-form formulas of Sections
3.1-3.3 ("using the formulas developed in the previous sections", the
paper notes), not from simulation -- see :mod:`repro.server.sizing`.

Two panels:

* increase vs. the maximum transaction span ``S`` at ``U = 50``;
* increase vs. the number of updates ``U`` at span 3 (the operating
  point the paper's Table 1 quotes: ~1% invalidation-only, ~12%
  multiversion, ~2.5% SGT, ~1.8% multiversion caching).
"""

from __future__ import annotations

from typing import Sequence

from repro.config import DEFAULTS, ModelParameters
from repro.experiments.render import render_sweep
from repro.experiments.runner import SweepResult
from repro.server.sizing import SizeModel

SPAN_SWEEP: Sequence[int] = (2, 3, 4, 6, 8)
UPDATE_SWEEP: Sequence[int] = (50, 125, 250, 375, 500)

_SCHEMES = (
    "invalidation_only",
    "multiversion_clustered",
    "multiversion_overflow",
    "sgt",
    "multiversion_caching",
)


def run_vs_span(
    params: ModelParameters = DEFAULTS,
    updates: int = 50,
    span_sweep: Sequence[int] = SPAN_SWEEP,
) -> SweepResult:
    sweep = SweepResult(
        name=f"Figure 7a: broadcast-size increase vs. span (U={updates})",
        x_label="span",
        xs=[float(s) for s in span_sweep],
        y_label="size increase (%)",
    )
    for span in span_sweep:
        model = SizeModel(params.server)
        row = model.figure7_row(updates=updates, span=span)
        for scheme in _SCHEMES:
            sweep.series.setdefault(scheme, []).append(row[scheme])
    return sweep


def run_vs_updates(
    params: ModelParameters = DEFAULTS,
    span: int = 3,
    update_sweep: Sequence[int] = UPDATE_SWEEP,
) -> SweepResult:
    sweep = SweepResult(
        name=f"Figure 7b: broadcast-size increase vs. updates (span={span})",
        x_label="updates",
        xs=[float(u) for u in update_sweep],
        y_label="size increase (%)",
    )
    for updates in update_sweep:
        server = params.server
        model = SizeModel(server)
        row = model.figure7_row(updates=updates, span=span)
        for scheme in _SCHEMES:
            sweep.series.setdefault(scheme, []).append(row[scheme])
    return sweep


def main() -> None:
    print(render_sweep(run_vs_span(), precision=2))
    print(render_sweep(run_vs_updates(), precision=2))


if __name__ == "__main__":
    main()
