"""Plain-text rendering of experiment results (tables and CSV)."""

from __future__ import annotations

import io
import math
from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import SweepResult


def _format_value(value: float, precision: int = 3) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_sweep(sweep: SweepResult, precision: int = 3) -> str:
    """Render a sweep as an aligned ASCII table (x rows, series columns)."""
    headers = [sweep.x_label] + list(sweep.series)
    rows: List[List[str]] = []
    for i, x in enumerate(sweep.xs):
        row = [_format_value(x, precision=0 if float(x).is_integer() else 2)]
        for label in sweep.series:
            row.append(_format_value(sweep.series[label][i], precision))
        rows.append(row)
    title = f"{sweep.name}  ({sweep.y_label})"
    return render_table(headers, rows, title=title)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: Optional[str] = None,
) -> str:
    """Generic aligned ASCII table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))

    out = io.StringIO()
    if title:
        out.write(title + "\n")
    header_line = line(headers)
    out.write(header_line + "\n")
    out.write("-" * len(header_line) + "\n")
    for row in rows:
        out.write(line(row) + "\n")
    return out.getvalue()


def sweep_to_csv(
    sweep: SweepResult, provenance: Optional[Dict[str, str]] = None
) -> str:
    """CSV text of a sweep (x column plus one column per series).

    ``provenance`` entries become leading ``# key: value`` comment rows
    (manifest path, seeds, ...); every reader in this module skips them.
    """
    out = io.StringIO()
    for key, value in (provenance or {}).items():
        out.write(f"# {key}: {value}\n")
    labels = list(sweep.series)
    out.write(",".join([sweep.x_label] + labels) + "\n")
    for i, x in enumerate(sweep.xs):
        cells = [str(x)]
        for label in labels:
            value = sweep.series[label][i]
            cells.append("" if math.isnan(value) else repr(value))
        out.write(",".join(cells) + "\n")
    return out.getvalue()


def parse_csv(text: str):
    """Parse CSV text written by :func:`sweep_to_csv`.

    Returns ``(provenance, headers, rows)``: the leading ``# key: value``
    comments as a dict, the header cells, and the data rows as lists of
    strings.  Render/compare code must come through here (or otherwise
    skip ``#`` lines) so provenance rows never parse as data.
    """
    provenance: Dict[str, str] = {}
    headers: List[str] = []
    rows: List[List[str]] = []
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("#"):
            body = line.lstrip("#").strip()
            key, sep, value = body.partition(":")
            if sep:
                provenance[key.strip()] = value.strip()
            continue
        cells = line.split(",")
        if not headers:
            headers = cells
        else:
            rows.append(cells)
    return provenance, headers, rows


def load_csv(path: str):
    """Read a results CSV from disk; see :func:`parse_csv`."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_csv(handle.read())
