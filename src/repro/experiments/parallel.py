"""Parallel sweep execution: shard (scheme, x, seed) cells over processes.

Every figure sweep is a grid of *cells* -- one simulation per
(scheme, x-value, seed) -- and every cell is independent by
construction: a :class:`~repro.runtime.Simulation` derives all of its
randomness from ``params.sim.seed``, so cells can run in any order, in
any process, and still produce bit-identical
:class:`~repro.stats.metrics.MetricsRegistry` contents.

This module exploits that:

* :class:`Cell` is a *picklable* cell spec: the scheme's registry name
  (resolved against :data:`repro.experiments.schemes.SCHEME_FACTORIES`
  inside the worker -- closures never cross the process boundary), the
  fully seed-applied :class:`~repro.config.ModelParameters`, and
  declarative :class:`CellOptions` for the few non-default simulation
  knobs the harness uses (sub-cycle reports, 2PL server, disconnects).
* :class:`SerialExecutor` / :class:`ProcessExecutor` run a cell list;
  the parallel executor farms cells to a ``ProcessPoolExecutor`` and
  reassembles results **in submission order**, so the fold downstream
  is independent of completion order.
* :class:`SweepPlan` enumerates a whole sweep's cells up front (the
  cross-point parallelism that makes ``--jobs`` worth having) and
  :func:`run_plan` merges cell results back into seed-ordered
  :class:`~repro.experiments.runner.PointResult` folds -- the output
  :class:`~repro.experiments.runner.SweepResult` is byte-identical to
  the serial path's CSV.
* :class:`CellCache` is a resumable on-disk cache keyed by a hash of
  the cell's full provenance (params, scheme, seed, options, code
  revision), so a killed sweep restarts without redoing finished
  cells.

The determinism contract is enforced by the oracle suite
(``tests/integration/test_parallel_oracle.py``) and by the ``check``
subcommand below, which CI runs::

    python -m repro.experiments.parallel check --jobs 2
    python -m repro.experiments.parallel bench --jobs 4 \\
        --out results/BENCH_parallel.json
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import json
import os
import pickle
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import ModelParameters
from repro.experiments.runner import (
    ExperimentProfile,
    FULL_PROFILE,
    PointResult,
    QUICK_PROFILE,
    SweepResult,
    SweepStats,
)
from repro.experiments.schemes import scheme_factory
from repro.obs.trace import EV_SWEEP_CELL, EV_SWEEP_DONE, Tracer, gate
from repro.runtime import Simulation
from repro.stats.metrics import MetricsRegistry

# -- cell specs --------------------------------------------------------------


@dataclass(frozen=True)
class DisconnectSpec:
    """Declarative stand-in for a disconnect-model factory closure."""

    p_disconnect: float
    mean_outage_cycles: float = 1.5

    def factory(self, rng):
        from repro.client.disconnect import RandomDisconnections

        return RandomDisconnections(
            p_disconnect=self.p_disconnect,
            mean_outage_cycles=self.mean_outage_cycles,
            rng=rng,
        )


@dataclass(frozen=True)
class CellOptions:
    """The picklable subset of :class:`Simulation` keyword options."""

    reports_per_cycle: int = 1
    report_window: int = 0
    interleaved_server: bool = False
    disconnect: Optional[DisconnectSpec] = None

    def simulation_kwargs(self) -> Dict[str, Any]:
        kwargs: Dict[str, Any] = {}
        if self.reports_per_cycle != 1 or self.report_window:
            from repro.core.control import ReportSchedule

            kwargs["report_schedule"] = ReportSchedule(
                per_cycle=self.reports_per_cycle, window=self.report_window
            )
        if self.interleaved_server:
            kwargs["interleaved_server"] = True
        if self.disconnect is not None:
            kwargs["disconnect_factory"] = self.disconnect.factory
        return kwargs


@dataclass(frozen=True)
class Cell:
    """One independent unit of sweep work.

    ``params`` must already be seed-applied (``profile.apply``): a cell
    is self-contained, so two cells never share state and the executor
    never needs the profile.
    """

    scheme: str
    params: ModelParameters
    seed: int
    options: CellOptions = field(default_factory=CellOptions)


@dataclass
class CellResult:
    """The picklable outcome of one cell.

    Carries exactly what :meth:`PointResult.fold` consumes (the metrics
    registry and the mean cycle length) -- never the client machines,
    which hold live generator frames and cannot cross processes.
    """

    scheme: str
    scheme_label: str
    seed: int
    metrics: MetricsRegistry
    cycles_completed: int
    mean_cycle_slots: float
    duration: float = 0.0
    cached: bool = False


def run_cell(cell: Cell) -> CellResult:
    """Run one cell to completion; importable so workers can pickle it."""
    start = time.perf_counter()
    sim = Simulation(
        cell.params,
        scheme_factory=scheme_factory(cell.scheme),
        **cell.options.simulation_kwargs(),
    )
    result = sim.run()
    return CellResult(
        scheme=cell.scheme,
        scheme_label=result.scheme_label,
        seed=cell.seed,
        metrics=result.metrics,
        cycles_completed=result.cycles_completed,
        mean_cycle_slots=result.mean_cycle_slots,
        duration=time.perf_counter() - start,
    )


# -- the resumable cell cache ------------------------------------------------


@lru_cache(maxsize=1)
def _code_revision() -> str:
    from repro import __version__
    from repro.obs.manifest import git_revision

    return f"{__version__}@{git_revision()}"


def cell_key(cell: Cell) -> str:
    """Stable content hash of a cell's full provenance.

    Includes the package version and git revision, so results cached
    under one build are never replayed against another.
    """
    payload = {
        "scheme": cell.scheme,
        "seed": cell.seed,
        "params": dataclasses.asdict(cell.params),
        "options": dataclasses.asdict(cell.options),
        "code": _code_revision(),
    }
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class CellCache:
    """On-disk cache of finished cells, keyed by :func:`cell_key`.

    A killed sweep restarts without redoing finished cells: each cell
    result is written atomically (temp file + rename) the moment it
    completes, so the cache is always a consistent prefix of the sweep.
    """

    def __init__(self, root: str) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def path(self, cell: Cell) -> Path:
        return self.root / f"{cell_key(cell)}.pkl"

    def load(self, cell: Cell) -> Optional[CellResult]:
        try:
            data = self.path(cell).read_bytes()
            result = pickle.loads(data)
        except (OSError, pickle.PickleError, EOFError, AttributeError):
            self.misses += 1
            return None
        if not isinstance(result, CellResult):
            self.misses += 1
            return None
        self.hits += 1
        result.cached = True
        result.duration = 0.0
        return result

    def store(self, cell: Cell, result: CellResult) -> None:
        target = self.path(cell)
        tmp = target.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_bytes(pickle.dumps(result))
        os.replace(tmp, target)


# -- executors ---------------------------------------------------------------

ProgressFn = Callable[[int, Cell, CellResult], None]


class SerialExecutor:
    """Runs cells inline, in order: the byte-identical baseline."""

    jobs = 1

    def run(
        self, cells: Sequence[Cell], progress: Optional[ProgressFn] = None
    ) -> List[CellResult]:
        results: List[CellResult] = []
        for index, cell in enumerate(cells):
            result = run_cell(cell)
            if progress is not None:
                progress(index, cell, result)
            results.append(result)
        return results


class ProcessExecutor:
    """Farms cells to a process pool; results come back in input order.

    Completion order is nondeterministic, merge order is not: results
    are slotted back by submission index, so everything downstream of
    the executor sees exactly the serial sequence.
    """

    def __init__(self, jobs: int) -> None:
        if jobs < 2:
            raise ValueError(f"ProcessExecutor needs jobs >= 2, got {jobs}")
        self.jobs = jobs

    def run(
        self, cells: Sequence[Cell], progress: Optional[ProgressFn] = None
    ) -> List[CellResult]:
        results: List[Optional[CellResult]] = [None] * len(cells)
        if not cells:
            return []
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            futures = {
                pool.submit(run_cell, cell): index
                for index, cell in enumerate(cells)
            }
            for future in as_completed(futures):
                index = futures[future]
                result = future.result()
                results[index] = result
                if progress is not None:
                    progress(index, cells[index], result)
        return results  # type: ignore[return-value]


def make_executor(jobs: Optional[int]):
    """``None``/1 -> serial; 0 -> one worker per CPU; N -> N workers."""
    if jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs is None or jobs <= 1:
        return SerialExecutor()
    return ProcessExecutor(jobs)


def _execute(
    cells: Sequence[Cell],
    executor,
    cache: Optional[CellCache],
    progress: Optional[ProgressFn],
) -> List[CellResult]:
    """Run ``cells`` through ``executor`` with cache short-circuiting.

    Returns results in cell order no matter which subset was cached or
    in which order the workers finished.
    """
    if cache is None:
        return executor.run(cells, progress=progress)

    results: List[Optional[CellResult]] = [None] * len(cells)
    pending: List[Tuple[int, Cell]] = []
    for index, cell in enumerate(cells):
        hit = cache.load(cell)
        if hit is not None:
            results[index] = hit
            if progress is not None:
                progress(index, cell, hit)
        else:
            pending.append((index, cell))

    if pending:
        indices = [index for index, _ in pending]
        fresh_cells = [cell for _, cell in pending]

        def relay(local_index: int, cell: Cell, result: CellResult) -> None:
            cache.store(cell, result)
            if progress is not None:
                progress(indices[local_index], cell, result)

        for local_index, result in enumerate(
            executor.run(fresh_cells, progress=relay)
        ):
            results[indices[local_index]] = result
    return results  # type: ignore[return-value]


# -- sweep plans -------------------------------------------------------------


@dataclass(frozen=True)
class PointSpec:
    """One (series, x) grid point of a sweep, before seeds are applied.

    ``measures`` maps series labels to :class:`PointResult` attribute
    names; most figures chart one measure per scheme, but e.g. the
    scalability sweep derives two series from every point.
    """

    scheme: str
    params: ModelParameters
    x: float
    label: str = ""
    measures: Tuple[Tuple[str, str], ...] = ()
    options: CellOptions = field(default_factory=CellOptions)
    #: Override the profile's client count (the scalability sweep's axis).
    clients: Optional[int] = None

    def cell_params(
        self, profile: ExperimentProfile, seed: int
    ) -> ModelParameters:
        params = profile.apply(self.params, seed)
        if self.clients is not None:
            params = params.with_sim(num_clients=self.clients)
        return params


@dataclass
class SweepPlan:
    """A sweep with every cell enumerable up front."""

    name: str
    x_label: str
    y_label: str
    xs: List[float]
    points: List[PointSpec] = field(default_factory=list)

    def add(
        self,
        scheme: str,
        params: ModelParameters,
        x: float,
        series: str,
        measure: str = "abort_rate",
        label: str = "",
        options: Optional[CellOptions] = None,
        clients: Optional[int] = None,
    ) -> None:
        self.points.append(
            PointSpec(
                scheme=scheme,
                params=params,
                x=float(x),
                label=label or series,
                measures=((series, measure),),
                options=options or CellOptions(),
                clients=clients,
            )
        )

    def cells(self, profile: ExperimentProfile) -> List[Cell]:
        """The full cell grid, point-major then seed order."""
        return [
            Cell(
                scheme=spec.scheme,
                params=spec.cell_params(profile, seed),
                seed=seed,
                options=spec.options,
            )
            for spec in self.points
            for seed in profile.seeds
        ]


def run_plan(
    plan: SweepPlan,
    profile: ExperimentProfile,
    executor=None,
    cache: Optional[CellCache] = None,
    verbose: bool = False,
    tracer: Optional[Tracer] = None,
) -> SweepResult:
    """Execute a plan and fold cells back into a :class:`SweepResult`.

    The merge is deterministic: points fold their cells in
    ``profile.seeds`` order and series fill in plan order, so the
    resulting CSV is byte-identical whatever ``executor.jobs`` is.
    """
    executor = executor or SerialExecutor()
    cells = plan.cells(profile)
    trace_cells = gate(tracer, "cycles")
    done = 0

    def progress(index: int, cell: Cell, result: CellResult) -> None:
        nonlocal done
        done += 1
        if trace_cells is not None:
            trace_cells.emit(
                EV_SWEEP_CELL,
                sweep=plan.name,
                scheme=cell.scheme,
                seed=cell.seed,
                duration=round(result.duration, 6),
                cached=result.cached,
            )
        if verbose:
            state = "cached" if result.cached else f"{result.duration:.2f}s"
            print(
                f"[{plan.name} {done}/{len(cells)}] "
                f"{cell.scheme} seed={cell.seed}: {state}",
                file=sys.stderr,
            )

    start = time.perf_counter()
    results = _execute(cells, executor, cache, progress)
    wall = time.perf_counter() - start

    stats = SweepStats(
        jobs=executor.jobs,
        cells=len(cells),
        cached=sum(1 for r in results if r.cached),
        wall_s=wall,
        cpu_s=sum(r.duration for r in results),
        durations=[round(r.duration, 6) for r in results],
    )
    if trace_cells is not None:
        trace_cells.emit(
            EV_SWEEP_DONE,
            sweep=plan.name,
            jobs=stats.jobs,
            cells=stats.cells,
            cached=stats.cached,
            wall_s=round(stats.wall_s, 6),
            cpu_s=round(stats.cpu_s, 6),
        )
    if verbose:
        print(
            f"{plan.name}: {stats.cells} cells in {stats.wall_s:.2f}s wall / "
            f"{stats.cpu_s:.2f}s cpu, speedup {stats.speedup:.2f}x "
            f"(jobs={stats.jobs}, {stats.cached} cached)",
            file=sys.stderr,
        )

    sweep = SweepResult(
        name=plan.name,
        x_label=plan.x_label,
        xs=list(plan.xs),
        y_label=plan.y_label,
        stats=stats,
    )
    seeds_per_point = len(profile.seeds)
    for point_index, spec in enumerate(plan.points):
        point = PointResult(scheme=spec.label or spec.scheme)
        lo = point_index * seeds_per_point
        for result in results[lo : lo + seeds_per_point]:
            point.fold(result)
        for series, measure in spec.measures:
            sweep.add_point(series, point, getattr(point, measure))
    return sweep


def run_point_cells(
    scheme: str,
    params: ModelParameters,
    profile: ExperimentProfile,
    label: str = "",
    executor=None,
    options: Optional[CellOptions] = None,
    cache: Optional[CellCache] = None,
) -> PointResult:
    """One grid point through the cell machinery (``run_point`` backend)."""
    opts = options or CellOptions()
    cells = [
        Cell(scheme, profile.apply(params, seed), seed, opts)
        for seed in profile.seeds
    ]
    results = _execute(cells, executor or SerialExecutor(), cache, None)
    point = PointResult(scheme=label or scheme)
    for result in results:
        point.fold(result)
    return point


# -- the experiment registry for the determinism oracle ----------------------


def oracle_experiments() -> Dict[str, Callable[..., SweepResult]]:
    """Every registered sweep experiment, by name.

    Each value accepts ``(profile=..., params=..., executor=..., **kw)``
    and returns a :class:`SweepResult`; the determinism oracle (tests
    and the ``check`` subcommand) runs each one serially and with
    ``--jobs {1,2,4}`` and requires byte-identical CSV output.

    Imported lazily: the figure modules import this module for
    :func:`run_plan`, so a top-level import here would be circular.
    """
    from repro.experiments import (
        faults,
        fig5,
        fig6,
        fig8,
        retention,
        scalability,
    )

    return {
        "fig5-left": fig5.run_left,
        "fig5-right": fig5.run_right,
        "fig6": fig6.run,
        "fig8-left": fig8.run_left,
        "fig8-right": fig8.run_right,
        "scalability": scalability.run,
        "retention": retention.run,
        "faults": faults.run_loss_sweep,
    }


#: Reduced sweep kwargs per experiment so the oracle stays fast; the
#: determinism contract is scale-free, so small grids pin it as well as
#: the paper-scale ones.
TINY_OVERRIDES: Dict[str, Dict[str, Any]] = {
    "fig5-left": {"schemes": ("inval", "sgt+cache"), "ops_sweep": (2, 4)},
    "fig5-right": {"schemes": ("inval",), "offset_sweep": (0, 20)},
    "fig6": {"schemes": ("inval", "mv-caching"), "update_sweep": (5, 15)},
    "fig8-left": {"schemes": ("inval+cache",), "ops_sweep": (2, 4)},
    "fig8-right": {"offset_sweep": (0, 20)},
    "scalability": {"scheme": "inval+cache", "client_sweep": (1, 3)},
    "retention": {"retention_sweep": (2, 6)},
    "faults": {"schemes": ("inval", "multiversion"), "loss_sweep": (0.0, 0.1)},
}

#: Small world for the smoke/check CLI (mirrors the test suite's tiny
#: configurations: 100 items, 10 buckets/cycle, moderate contention).
SMOKE_PARAMS = (
    ModelParameters()
    .with_server(
        broadcast_size=100,
        update_range=50,
        offset=10,
        updates_per_cycle=10,
        transactions_per_cycle=5,
        items_per_bucket=10,
        retention=12,
    )
    .with_client(read_range=40, ops_per_query=4, think_time=0.5, cache_size=20)
)

SMOKE_PROFILE = ExperimentProfile(
    num_cycles=30, warmup_cycles=3, num_clients=3, seeds=(5, 9)
)


# -- check / bench entry points (CI) -----------------------------------------


def check_experiment(
    name: str,
    jobs: int,
    profile: ExperimentProfile = SMOKE_PROFILE,
    params: ModelParameters = SMOKE_PARAMS,
    artifacts: Optional[str] = None,
) -> bool:
    """Parallel-vs-serial oracle for one experiment; True when identical.

    Writes both CSVs (and, on mismatch, a unified diff) under
    ``artifacts`` when given, so CI can upload the evidence.
    """
    from repro.experiments.render import sweep_to_csv
    from repro.experiments.runner import write_sweep_csv

    runner = oracle_experiments()[name]
    kwargs = dict(TINY_OVERRIDES.get(name, {}))
    serial = runner(profile=profile, params=params, **kwargs)
    parallel = runner(
        profile=profile, params=params, executor=make_executor(jobs), **kwargs
    )
    serial_csv = sweep_to_csv(serial)
    parallel_csv = sweep_to_csv(parallel)
    identical = serial_csv == parallel_csv

    if artifacts is not None:
        out = Path(artifacts)
        out.mkdir(parents=True, exist_ok=True)
        write_sweep_csv(
            serial, str(out / f"{name}.serial.csv"), params=params, profile=profile
        )
        write_sweep_csv(
            parallel,
            str(out / f"{name}.jobs{jobs}.csv"),
            params=params,
            profile=profile,
        )
        if not identical:
            import difflib

            diff = "\n".join(
                difflib.unified_diff(
                    serial_csv.splitlines(),
                    parallel_csv.splitlines(),
                    fromfile=f"{name} serial",
                    tofile=f"{name} jobs={jobs}",
                    lineterm="",
                )
            )
            (out / f"{name}.diff").write_text(diff + "\n")
    return identical


def benchmark(
    jobs: int = 4,
    profile: ExperimentProfile = FULL_PROFILE,
    out: Optional[str] = None,
    schemes: Optional[Sequence[str]] = None,
    verbose: bool = True,
) -> Dict[str, Any]:
    """Serial vs ``--jobs N`` wall clock on the fig5 (left) FULL sweep.

    Records both runs, the measured speedup, and the machine's CPU
    count; on a >= 4-core machine the expected speedup is >= 2x (cells
    dominate, the merge is O(cells) dict folds).
    """
    from repro.experiments import fig5
    from repro.obs.manifest import git_revision

    kwargs: Dict[str, Any] = {}
    if schemes is not None:
        kwargs["schemes"] = tuple(schemes)

    start = time.perf_counter()
    serial = fig5.run_left(profile=profile, verbose=verbose, **kwargs)
    serial_wall = time.perf_counter() - start

    start = time.perf_counter()
    parallel = fig5.run_left(
        profile=profile, executor=make_executor(jobs), verbose=verbose, **kwargs
    )
    parallel_wall = time.perf_counter() - start

    from repro.experiments.render import sweep_to_csv

    record = {
        "benchmark": "parallel-sweep",
        "sweep": "fig5-left",
        "git_rev": git_revision(),
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        "cells": serial.stats.cells if serial.stats else 0,
        "profile": {
            "num_cycles": profile.num_cycles,
            "warmup_cycles": profile.warmup_cycles,
            "num_clients": profile.num_clients,
            "seeds": list(profile.seeds),
        },
        "serial_wall_s": round(serial_wall, 3),
        "parallel_wall_s": round(parallel_wall, 3),
        "speedup": round(serial_wall / parallel_wall, 3) if parallel_wall else None,
        "output_identical": sweep_to_csv(serial) == sweep_to_csv(parallel),
        "expectation": "speedup >= 2x with jobs=4 on >= 4 physical cores",
    }
    if out is not None:
        target = Path(out)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return record


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.parallel",
        description="parallel sweep executor: determinism check and benchmark",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser(
        "check", help="parallel-vs-serial byte-identity oracle"
    )
    check.add_argument(
        "names",
        nargs="*",
        help="experiments to check (default: all registered)",
    )
    check.add_argument("--jobs", type=int, default=2)
    check.add_argument(
        "--artifacts",
        default=None,
        metavar="DIR",
        help="write serial/parallel CSVs (and diffs on mismatch) here",
    )

    bench = sub.add_parser(
        "bench", help="serial vs parallel wall-clock on the fig5 FULL sweep"
    )
    bench.add_argument("--jobs", type=int, default=4)
    bench.add_argument("--quick", action="store_true")
    bench.add_argument(
        "--schemes", nargs="*", default=None, help="restrict the scheme line-up"
    )
    bench.add_argument("--out", default=None, metavar="FILE")

    args = parser.parse_args(argv)

    if args.command == "check":
        registered = oracle_experiments()
        names = args.names or sorted(registered)
        unknown = [n for n in names if n not in registered]
        if unknown:
            known = ", ".join(sorted(registered))
            print(f"Unknown experiment(s): {', '.join(unknown)}; known: {known}")
            return 2
        failures = []
        for name in names:
            ok = check_experiment(name, jobs=args.jobs, artifacts=args.artifacts)
            print(f"{name}: {'identical' if ok else 'MISMATCH'} (jobs={args.jobs})")
            if not ok:
                failures.append(name)
        if failures:
            print(f"determinism oracle FAILED: {', '.join(failures)}")
            return 1
        print(f"determinism oracle green for {len(names)} experiment(s)")
        return 0

    if args.command == "bench":
        profile = QUICK_PROFILE if args.quick else FULL_PROFILE
        record = benchmark(
            jobs=args.jobs, profile=profile, out=args.out, schemes=args.schemes
        )
        print(json.dumps(record, indent=2, sort_keys=True))
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
