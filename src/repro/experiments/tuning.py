"""Selective tuning study: access vs. tuning time under (1, m) indexing.

Section 2.1 background made quantitative: the clients of the paper's
model must either listen continuously (huge tuning time = battery drain)
or use air indexing.  This sweep reports, for the default 100-data-bucket
broadcast, the mean access time (latency) and tuning time (energy) as
the index replication ``m`` grows, bracketed by the no-index baseline and
highlighting the classic ``m* = sqrt(D / i)`` optimum.
"""

from __future__ import annotations

from typing import Sequence

from repro.broadcast.indexing import OneMIndex, no_index_costs
from repro.config import DEFAULTS, ModelParameters
from repro.experiments.render import render_sweep
from repro.experiments.runner import SweepResult

M_SWEEP: Sequence[int] = (1, 2, 3, 4, 6, 10)


def run(
    params: ModelParameters = DEFAULTS,
    m_sweep: Sequence[int] = M_SWEEP,
    fanout: int = 10,
) -> SweepResult:
    data_buckets = params.server.data_buckets
    sweep = SweepResult(
        name=f"(1, m) air indexing over {data_buckets} data buckets",
        x_label="m",
        xs=[float(m) for m in m_sweep],
        y_label="buckets",
    )
    base_access, base_tuning = no_index_costs(data_buckets)
    for m in m_sweep:
        index = OneMIndex(
            data_buckets=data_buckets,
            items_per_bucket=params.server.items_per_bucket,
            fanout=fanout,
            replication=m,
        )
        access, tuning = index.mean_costs(samples=60)
        sweep.series.setdefault("access_time", []).append(access)
        sweep.series.setdefault("tuning_time", []).append(tuning)
        sweep.series.setdefault("no_index_access", []).append(base_access)
        sweep.series.setdefault("no_index_tuning", []).append(base_tuning)
    return sweep


def main() -> None:
    sweep = run()
    print(render_sweep(sweep, precision=1))
    index = OneMIndex(
        data_buckets=DEFAULTS.server.data_buckets,
        items_per_bucket=DEFAULTS.server.items_per_bucket,
        fanout=10,
    )
    best = OneMIndex.optimal_replication(
        DEFAULTS.server.data_buckets, index.index_buckets
    )
    print(f"access-optimal replication m* = {best}")


if __name__ == "__main__":
    main()
