"""The scheme line-up used across the figures.

The paper's plots compare: invalidation-only (with and without a plain
cache), invalidation-only with versioned cache, SGT (with and without a
cache), multiversion broadcast, and multiversion caching.  This module
is the single place mapping series labels to scheme factories so every
figure uses consistent naming.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.base import Scheme
from repro.core.invalidation import InvalidationOnly
from repro.core.multiversion import MultiversionBroadcast
from repro.core.multiversion_cache import MultiversionCaching
from repro.core.sgt import SerializationGraphTesting
from repro.core.versioned_cache import InvalidationWithVersionedCache

SchemeFactory = Callable[[], Scheme]

SCHEME_FACTORIES: Dict[str, SchemeFactory] = {
    "inval": lambda: InvalidationOnly(use_cache=False),
    "inval+cache": lambda: InvalidationOnly(use_cache=True),
    "versioned-cache": lambda: InvalidationWithVersionedCache(),
    "sgt": lambda: SerializationGraphTesting(use_cache=False),
    "sgt+cache": lambda: SerializationGraphTesting(use_cache=True),
    "multiversion": lambda: MultiversionBroadcast(organization="overflow"),
    "multiversion+cache": lambda: MultiversionBroadcast(
        organization="overflow", use_cache=True
    ),
    "multiversion/clustered": lambda: MultiversionBroadcast(
        organization="clustered"
    ),
    "mv-caching": lambda: MultiversionCaching(),
}

#: The aborting schemes compared in Figures 5 and 6 (multiversion accepts
#: every transaction by construction, so its abort curve is identically 0).
ABORTING_SCHEMES: List[str] = [
    "inval",
    "inval+cache",
    "versioned-cache",
    "sgt",
    "sgt+cache",
    "mv-caching",
]

#: Schemes whose latency Figure 8 (left) contrasts.
LATENCY_SCHEMES: List[str] = [
    "inval",
    "inval+cache",
    "versioned-cache",
    "sgt+cache",
    "multiversion",
]


def scheme_factory(name: str) -> SchemeFactory:
    """Look up a factory by series label."""
    try:
        return SCHEME_FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(SCHEME_FACTORIES))
        raise KeyError(f"Unknown scheme {name!r}; known: {known}") from None
