"""V-multiversion ablation (Section 3.2).

A ``V``-multiversion server broadcasts only ``V`` old versions -- fewer
than the maximum transaction span ``S`` -- so long transactions "proceed
on their own risk".  This sweep measures the risk: abort rate and the
broadcast-size cost as ``V`` grows from 1 to past the typical span,
quantifying the bandwidth/concurrency dial the paper describes ("V can
be adapted depending on ... the allowable bandwidth, feedback from
clients, or update rate at the server").
"""

from __future__ import annotations

from typing import Sequence

from repro.config import DEFAULTS, ModelParameters
from repro.experiments.parallel import PointSpec, SweepPlan, run_plan
from repro.experiments.render import render_sweep
from repro.experiments.runner import (
    ExperimentProfile,
    FULL_PROFILE,
    SweepResult,
)

RETENTION_SWEEP: Sequence[int] = (1, 2, 4, 8, 16, 24)


def plan(
    params: ModelParameters = DEFAULTS,
    retention_sweep: Sequence[int] = RETENTION_SWEEP,
) -> SweepPlan:
    result = SweepPlan(
        name="V-multiversion: abort rate and bcast cost vs. retained versions",
        x_label="V",
        xs=[float(v) for v in retention_sweep],
        y_label="abort rate / slots per cycle",
    )
    for retention in retention_sweep:
        result.points.append(
            PointSpec(
                scheme="multiversion",
                params=params.with_server(retention=retention),
                x=float(retention),
                label=f"V={retention}",
                measures=(
                    ("abort_rate", "abort_rate"),
                    ("slots_per_cycle", "mean_cycle_slots"),
                ),
            )
        )
    return result


def run(
    profile: ExperimentProfile = FULL_PROFILE,
    params: ModelParameters = DEFAULTS,
    retention_sweep: Sequence[int] = RETENTION_SWEEP,
    executor=None,
    cache=None,
    verbose: bool = False,
) -> SweepResult:
    return run_plan(
        plan(params, retention_sweep),
        profile,
        executor=executor,
        cache=cache,
        verbose=verbose,
    )


def main(
    profile: ExperimentProfile = FULL_PROFILE,
    executor=None,
    cache=None,
    verbose: bool = False,
) -> None:
    print(
        render_sweep(
            run(profile, executor=executor, cache=cache, verbose=verbose),
            precision=3,
        )
    )


if __name__ == "__main__":
    main()
