"""V-multiversion ablation (Section 3.2).

A ``V``-multiversion server broadcasts only ``V`` old versions -- fewer
than the maximum transaction span ``S`` -- so long transactions "proceed
on their own risk".  This sweep measures the risk: abort rate and the
broadcast-size cost as ``V`` grows from 1 to past the typical span,
quantifying the bandwidth/concurrency dial the paper describes ("V can
be adapted depending on ... the allowable bandwidth, feedback from
clients, or update rate at the server").
"""

from __future__ import annotations

from typing import Sequence

from repro.config import DEFAULTS, ModelParameters
from repro.experiments.render import render_sweep
from repro.experiments.runner import (
    ExperimentProfile,
    FULL_PROFILE,
    SweepResult,
    run_point,
)
from repro.experiments.schemes import scheme_factory

RETENTION_SWEEP: Sequence[int] = (1, 2, 4, 8, 16, 24)


def run(
    profile: ExperimentProfile = FULL_PROFILE,
    params: ModelParameters = DEFAULTS,
    retention_sweep: Sequence[int] = RETENTION_SWEEP,
) -> SweepResult:
    sweep = SweepResult(
        name="V-multiversion: abort rate and bcast cost vs. retained versions",
        x_label="V",
        xs=[float(v) for v in retention_sweep],
        y_label="abort rate / slots per cycle",
    )
    factory = scheme_factory("multiversion")
    for retention in retention_sweep:
        point = run_point(
            params.with_server(retention=retention),
            factory,
            profile,
            label=f"V={retention}",
        )
        sweep.add_point("abort_rate", point, point.abort_rate)
        sweep.add_point("slots_per_cycle", point, point.mean_cycle_slots)
    return sweep


def main(profile: ExperimentProfile = FULL_PROFILE) -> None:
    print(render_sweep(run(profile), precision=3))


if __name__ == "__main__":
    main()
