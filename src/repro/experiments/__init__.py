"""Experiment harness: regenerates every table and figure of the paper.

Each module reproduces one artifact of Section 5:

* :mod:`repro.experiments.fig5` -- abort rate vs. operations per query
  (left) and vs. client/server access-pattern offset (right);
* :mod:`repro.experiments.fig6` -- abort rate vs. number of updates;
* :mod:`repro.experiments.fig7` -- broadcast-size increase vs. span and
  updates (analytic, from :mod:`repro.server.sizing`);
* :mod:`repro.experiments.fig8` -- latency vs. operations per query
  (left) and multiversion latency vs. offset (right);
* :mod:`repro.experiments.table1` -- the qualitative comparison table,
  with every qualitative row backed by a measured quantity;
* :mod:`repro.experiments.scalability` -- the headline claim: performance
  independent of the number of clients.

All experiments run through :func:`repro.experiments.runner.run_point`
(multi-seed merge) and render via :mod:`repro.experiments.render`.
Sweeps enumerate their (scheme, x, seed) cells as a
:class:`repro.experiments.parallel.SweepPlan`, so every figure accepts
an ``executor=`` to shard those cells over worker processes with
byte-identical output (``--jobs`` on the command line).
"""

from repro.experiments.runner import (
    ExperimentProfile,
    FULL_PROFILE,
    PointResult,
    QUICK_PROFILE,
    SweepResult,
    SweepStats,
    run_point,
)
from repro.experiments.parallel import (
    Cell,
    CellCache,
    CellOptions,
    CellResult,
    ProcessExecutor,
    SerialExecutor,
    SweepPlan,
    make_executor,
    run_cell,
    run_plan,
)
from repro.experiments.schemes import SCHEME_FACTORIES, scheme_factory

__all__ = [
    "Cell",
    "CellCache",
    "CellOptions",
    "CellResult",
    "ExperimentProfile",
    "FULL_PROFILE",
    "PointResult",
    "ProcessExecutor",
    "QUICK_PROFILE",
    "SCHEME_FACTORIES",
    "SerialExecutor",
    "SweepPlan",
    "SweepResult",
    "SweepStats",
    "make_executor",
    "run_cell",
    "run_plan",
    "run_point",
    "scheme_factory",
]
