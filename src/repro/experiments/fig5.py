"""Figure 5: abort rate vs. query size (left) and vs. offset (right).

Left panel: the number of read operations per query is swept; every
aborting scheme gets worse with longer queries, SGT+cache stays lowest,
and the versioned cache is competitive for short queries (the paper
quotes "less than 30 reads").

Right panel: the offset between the client-read and the server-update
Zipf patterns is swept; abort rates are highest at offset 0 (maximal
overlap) and fall as the patterns diverge.
"""

from __future__ import annotations

from typing import Sequence

from repro.config import DEFAULTS, ModelParameters
from repro.experiments.parallel import SweepPlan, run_plan
from repro.experiments.render import render_sweep
from repro.experiments.runner import (
    ExperimentProfile,
    FULL_PROFILE,
    SweepResult,
)
from repro.experiments.schemes import ABORTING_SCHEMES

#: Operations-per-query values swept in the left panel.
OPS_SWEEP: Sequence[int] = (4, 8, 16, 24, 32, 48)
#: Offsets swept in the right panel (the paper's 0-250 range).
OFFSET_SWEEP: Sequence[int] = (0, 50, 100, 150, 200, 250)


def _retention_for(ops: int) -> int:
    """S must cover the maximum span (Section 3.2); scale it with the
    query size so multiversion runs do not run "at their own risk"."""
    return max(16, ops + 8)


def plan_left(
    params: ModelParameters = DEFAULTS,
    schemes: Sequence[str] = tuple(ABORTING_SCHEMES),
    ops_sweep: Sequence[int] = OPS_SWEEP,
) -> SweepPlan:
    plan = SweepPlan(
        name="Figure 5 (left): abort rate vs. operations per query",
        x_label="ops/query",
        xs=[float(x) for x in ops_sweep],
        y_label="abort rate",
    )
    for name in schemes:
        for ops in ops_sweep:
            point_params = params.with_client(ops_per_query=ops).with_server(
                retention=_retention_for(ops)
            )
            plan.add(name, point_params, ops, series=name)
    return plan


def run_left(
    profile: ExperimentProfile = FULL_PROFILE,
    params: ModelParameters = DEFAULTS,
    schemes: Sequence[str] = tuple(ABORTING_SCHEMES),
    ops_sweep: Sequence[int] = OPS_SWEEP,
    executor=None,
    cache=None,
    verbose: bool = False,
) -> SweepResult:
    """Abort rate vs. number of operations per query."""
    return run_plan(
        plan_left(params, schemes, ops_sweep),
        profile,
        executor=executor,
        cache=cache,
        verbose=verbose,
    )


def plan_right(
    params: ModelParameters = DEFAULTS,
    schemes: Sequence[str] = tuple(ABORTING_SCHEMES),
    offset_sweep: Sequence[int] = OFFSET_SWEEP,
) -> SweepPlan:
    plan = SweepPlan(
        name="Figure 5 (right): abort rate vs. offset",
        x_label="offset",
        xs=[float(x) for x in offset_sweep],
        y_label="abort rate",
    )
    for name in schemes:
        for offset in offset_sweep:
            plan.add(name, params.with_server(offset=offset), offset, series=name)
    return plan


def run_right(
    profile: ExperimentProfile = FULL_PROFILE,
    params: ModelParameters = DEFAULTS,
    schemes: Sequence[str] = tuple(ABORTING_SCHEMES),
    offset_sweep: Sequence[int] = OFFSET_SWEEP,
    executor=None,
    cache=None,
    verbose: bool = False,
) -> SweepResult:
    """Abort rate vs. offset between read and update patterns."""
    return run_plan(
        plan_right(params, schemes, offset_sweep),
        profile,
        executor=executor,
        cache=cache,
        verbose=verbose,
    )


def main(
    profile: ExperimentProfile = FULL_PROFILE,
    executor=None,
    cache=None,
    verbose: bool = False,
) -> None:
    common = dict(executor=executor, cache=cache, verbose=verbose)
    print(render_sweep(run_left(profile, **common)))
    print(render_sweep(run_right(profile, **common)))


if __name__ == "__main__":
    main()
