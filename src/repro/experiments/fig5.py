"""Figure 5: abort rate vs. query size (left) and vs. offset (right).

Left panel: the number of read operations per query is swept; every
aborting scheme gets worse with longer queries, SGT+cache stays lowest,
and the versioned cache is competitive for short queries (the paper
quotes "less than 30 reads").

Right panel: the offset between the client-read and the server-update
Zipf patterns is swept; abort rates are highest at offset 0 (maximal
overlap) and fall as the patterns diverge.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import DEFAULTS, ModelParameters
from repro.experiments.render import render_sweep
from repro.experiments.runner import (
    ExperimentProfile,
    FULL_PROFILE,
    SweepResult,
    run_point,
)
from repro.experiments.schemes import ABORTING_SCHEMES, scheme_factory

#: Operations-per-query values swept in the left panel.
OPS_SWEEP: Sequence[int] = (4, 8, 16, 24, 32, 48)
#: Offsets swept in the right panel (the paper's 0-250 range).
OFFSET_SWEEP: Sequence[int] = (0, 50, 100, 150, 200, 250)


def _retention_for(ops: int) -> int:
    """S must cover the maximum span (Section 3.2); scale it with the
    query size so multiversion runs do not run "at their own risk"."""
    return max(16, ops + 8)


def run_left(
    profile: ExperimentProfile = FULL_PROFILE,
    params: ModelParameters = DEFAULTS,
    schemes: Sequence[str] = tuple(ABORTING_SCHEMES),
    ops_sweep: Sequence[int] = OPS_SWEEP,
) -> SweepResult:
    """Abort rate vs. number of operations per query."""
    sweep = SweepResult(
        name="Figure 5 (left): abort rate vs. operations per query",
        x_label="ops/query",
        xs=[float(x) for x in ops_sweep],
        y_label="abort rate",
    )
    for name in schemes:
        factory = scheme_factory(name)
        for ops in ops_sweep:
            point_params = params.with_client(ops_per_query=ops).with_server(
                retention=_retention_for(ops)
            )
            point = run_point(point_params, factory, profile, label=name)
            sweep.add_point(name, point, point.abort_rate)
    return sweep


def run_right(
    profile: ExperimentProfile = FULL_PROFILE,
    params: ModelParameters = DEFAULTS,
    schemes: Sequence[str] = tuple(ABORTING_SCHEMES),
    offset_sweep: Sequence[int] = OFFSET_SWEEP,
) -> SweepResult:
    """Abort rate vs. offset between read and update patterns."""
    sweep = SweepResult(
        name="Figure 5 (right): abort rate vs. offset",
        x_label="offset",
        xs=[float(x) for x in offset_sweep],
        y_label="abort rate",
    )
    for name in schemes:
        factory = scheme_factory(name)
        for offset in offset_sweep:
            point_params = params.with_server(offset=offset)
            point = run_point(point_params, factory, profile, label=name)
            sweep.add_point(name, point, point.abort_rate)
    return sweep


def main(profile: ExperimentProfile = FULL_PROFILE) -> None:
    print(render_sweep(run_left(profile)))
    print(render_sweep(run_right(profile)))


if __name__ == "__main__":
    main()
