"""Figure 6: abort rate vs. the number of updates per cycle.

Sweeping ``U`` from 50 to 500 (the paper's range).  Expected shape: every
scheme's abort rate grows with server activity; the SGT advantage over
invalidation-only shrinks as the serialization graph gets denser, and the
versioned cache overtakes SGT once updates exceed roughly a quarter of
the broadcast size.
"""

from __future__ import annotations

from typing import Sequence

from repro.config import DEFAULTS, ModelParameters
from repro.experiments.parallel import SweepPlan, run_plan
from repro.experiments.render import render_sweep
from repro.experiments.runner import (
    ExperimentProfile,
    FULL_PROFILE,
    SweepResult,
)
from repro.experiments.schemes import ABORTING_SCHEMES

#: Updates-per-cycle values swept (the paper's 50-500).
UPDATE_SWEEP: Sequence[int] = (50, 125, 250, 375, 500)


def plan(
    params: ModelParameters = DEFAULTS,
    schemes: Sequence[str] = tuple(ABORTING_SCHEMES),
    update_sweep: Sequence[int] = UPDATE_SWEEP,
) -> SweepPlan:
    result = SweepPlan(
        name="Figure 6: abort rate vs. updates per cycle",
        x_label="updates",
        xs=[float(u) for u in update_sweep],
        y_label="abort rate",
    )
    for name in schemes:
        for updates in update_sweep:
            result.add(
                name,
                params.with_server(updates_per_cycle=updates),
                updates,
                series=name,
            )
    return result


def run(
    profile: ExperimentProfile = FULL_PROFILE,
    params: ModelParameters = DEFAULTS,
    schemes: Sequence[str] = tuple(ABORTING_SCHEMES),
    update_sweep: Sequence[int] = UPDATE_SWEEP,
    executor=None,
    cache=None,
    verbose: bool = False,
) -> SweepResult:
    return run_plan(
        plan(params, schemes, update_sweep),
        profile,
        executor=executor,
        cache=cache,
        verbose=verbose,
    )


def main(
    profile: ExperimentProfile = FULL_PROFILE,
    executor=None,
    cache=None,
    verbose: bool = False,
) -> None:
    print(render_sweep(run(profile, executor=executor, cache=cache, verbose=verbose)))


if __name__ == "__main__":
    main()
