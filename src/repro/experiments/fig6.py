"""Figure 6: abort rate vs. the number of updates per cycle.

Sweeping ``U`` from 50 to 500 (the paper's range).  Expected shape: every
scheme's abort rate grows with server activity; the SGT advantage over
invalidation-only shrinks as the serialization graph gets denser, and the
versioned cache overtakes SGT once updates exceed roughly a quarter of
the broadcast size.
"""

from __future__ import annotations

from typing import Sequence

from repro.config import DEFAULTS, ModelParameters
from repro.experiments.render import render_sweep
from repro.experiments.runner import (
    ExperimentProfile,
    FULL_PROFILE,
    SweepResult,
    run_point,
)
from repro.experiments.schemes import ABORTING_SCHEMES, scheme_factory

#: Updates-per-cycle values swept (the paper's 50-500).
UPDATE_SWEEP: Sequence[int] = (50, 125, 250, 375, 500)


def run(
    profile: ExperimentProfile = FULL_PROFILE,
    params: ModelParameters = DEFAULTS,
    schemes: Sequence[str] = tuple(ABORTING_SCHEMES),
    update_sweep: Sequence[int] = UPDATE_SWEEP,
) -> SweepResult:
    sweep = SweepResult(
        name="Figure 6: abort rate vs. updates per cycle",
        x_label="updates",
        xs=[float(u) for u in update_sweep],
        y_label="abort rate",
    )
    for name in schemes:
        factory = scheme_factory(name)
        for updates in update_sweep:
            point_params = params.with_server(updates_per_cycle=updates)
            point = run_point(point_params, factory, profile, label=name)
            sweep.add_point(name, point, point.abort_rate)
    return sweep


def main(profile: ExperimentProfile = FULL_PROFILE) -> None:
    print(render_sweep(run(profile)))


if __name__ == "__main__":
    main()
