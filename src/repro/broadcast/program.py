"""The physical content of one broadcast cycle.

A program is what the server assembles at the start of a cycle and what
the channel then transmits bucket by bucket:

```
[ control segment ][ data buckets ... ][ overflow buckets ... ]
```

* The control segment carries the :class:`~repro.core.control.ControlInfo`
  (invalidation report, graph diff, window); its length in slots is
  derived from the sizing model.
* Data buckets hold :class:`ItemRecord` s -- current values tagged with
  version (visibility cycle) and last-writer transaction id.  In the
  *clustered* multiversion organization the old versions ride in the data
  buckets right after the current value; in the *overflow* organization
  each record instead carries a pointer into the overflow segment.
* Overflow buckets hold :class:`OldVersionRecord` s in reverse
  chronological order, mirroring Figure 2(b).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.graph.sgraph import TxnId

if TYPE_CHECKING:  # pragma: no cover - break the core <-> broadcast cycle
    from repro.core.control import ControlInfo


class MultiversionOrganization(Enum):
    """Where old versions physically live (Section 3.2, Figure 2)."""

    #: No old versions on the air at all.
    NONE = "none"
    #: All versions of an item transmitted successively (Figure 2(a));
    #: item positions shift between cycles, so an index segment is needed.
    CLUSTERED = "clustered"
    #: Old versions collected in overflow buckets at the end of the bcast
    #: (Figure 2(b)); item positions stay fixed, pointers link versions.
    OVERFLOW = "overflow"


@dataclass(frozen=True)
class ItemRecord:
    """The on-air representation of one (current) data item value."""

    item: int
    value: int
    #: Broadcast cycle at whose beginning this value became current.
    version: int
    #: Last committed transaction that wrote the item (SGT tag); ``None``
    #: for the initial database load.
    writer: Optional[TxnId] = None
    #: Overflow organization only: whether old versions exist on the air
    #: for this item (the "pointer" of Figure 2(b)).
    has_old_versions: bool = False


@dataclass(frozen=True)
class OldVersionRecord:
    """An old version riding in the broadcast.

    ``valid_to`` is the last cycle during which the value was current (its
    successor became current at ``valid_to + 1``).
    """

    item: int
    value: int
    version: int
    valid_to: int
    writer: Optional[TxnId] = None

    def covers(self, cycle: int) -> bool:
        """Was this value the current one at ``cycle``?"""
        return self.version <= cycle <= self.valid_to


@dataclass(frozen=True)
class Bucket:
    """The smallest logical broadcast unit (Section 2.1).

    The header of a real system (offset to bcast start / next bcast) is
    implicit: the channel knows every bucket's slot position.
    """

    index: int
    records: Tuple[ItemRecord, ...] = ()
    old_records: Tuple[OldVersionRecord, ...] = ()

    @property
    def items(self) -> Tuple[int, ...]:
        return tuple(record.item for record in self.records)


class BroadcastProgram:
    """One cycle's fully laid-out broadcast.

    Parameters
    ----------
    cycle:
        The broadcast cycle number this program airs in.
    control:
        Control segment content.
    control_slots:
        Length of the control segment in slots (>= 1: clients always need
        one slot to hear the report).
    index_slots:
        Extra index segment (clustered multiversion organization only).
    data_buckets / overflow_buckets:
        The payload.
    layout / records:
        Fast path for the incremental cycle build (see
        :class:`~repro.server.broadcast.ProgramBuilder`): ``layout`` maps
        each item to its sorted tuple of data-bucket offsets and
        ``records`` to its current :class:`ItemRecord`.  The layout is
        *shared* between consecutive programs -- item positions inside the
        data segment are fixed in the flat and overflow organizations --
        so it must never be mutated; ``records`` is owned by this program.
        When omitted, both indexes are built by scanning the buckets.
    """

    def __init__(
        self,
        cycle: int,
        control: "ControlInfo",
        data_buckets: Sequence[Bucket],
        overflow_buckets: Sequence[Bucket] = (),
        control_slots: int = 1,
        index_slots: int = 0,
        organization: MultiversionOrganization = MultiversionOrganization.NONE,
        *,
        layout: Optional[Dict[int, Tuple[int, ...]]] = None,
        records: Optional[Dict[int, ItemRecord]] = None,
    ) -> None:
        if control_slots < 1:
            raise ValueError("control_slots must be at least 1")
        self.cycle = cycle
        self.control = control
        self.control_slots = control_slots
        self.index_slots = index_slots
        self.data_buckets = list(data_buckets)
        self.overflow_buckets = list(overflow_buckets)
        self.organization = organization

        # Slot layout: control, index, data, overflow.
        self._data_start = control_slots + index_slots
        self._overflow_start = self._data_start + len(self.data_buckets)
        self.total_slots = self._overflow_start + len(self.overflow_buckets)

        # item -> every data-bucket offset it appears in, sorted ascending
        # (broadcast disks repeat items).  Offsets are cycle-invariant even
        # though absolute slots shift with the control segment's length.
        scanned_data = layout is None or records is None
        if scanned_data:
            offsets: Dict[int, List[int]] = {}
            record_map: Dict[int, ItemRecord] = {}
            for offset, bucket in enumerate(self.data_buckets):
                for record in bucket.records:
                    offsets.setdefault(record.item, []).append(offset)
                    record_map[record.item] = record
            self._item_offsets: Dict[int, Tuple[int, ...]] = {
                item: tuple(offs) for item, offs in offsets.items()
            }
            self._item_records = record_map
        else:
            self._item_offsets = layout
            self._item_records = records

        # Old versions: item -> records, plus the slot each rides in.
        self._old_versions: Dict[int, List[Tuple[OldVersionRecord, int]]] = {}
        for offset, bucket in enumerate(self.overflow_buckets):
            slot = self._overflow_start + offset
            for old in bucket.old_records:
                self._old_versions.setdefault(old.item, []).append((old, slot))
        # Clustered organization: old versions ride in the data buckets.
        # The incremental path never carries old records there (flat and
        # overflow layouts only), so the scan is skipped with the layout.
        if scanned_data:
            for offset, bucket in enumerate(self.data_buckets):
                slot = self._data_start + offset
                for old in bucket.old_records:
                    self._old_versions.setdefault(old.item, []).append((old, slot))

    # -- lookups --------------------------------------------------------------

    @property
    def items(self) -> Sequence[int]:
        return list(self._item_records)

    def record_of(self, item: int) -> ItemRecord:
        """The current-value record of ``item`` in this cycle."""
        record = self._item_records.get(item)
        if record is None:
            raise KeyError(f"Item {item} is not in this broadcast")
        return record

    def slots_of(self, item: int) -> List[int]:
        """All slots (cycle-relative) carrying ``item``'s current value."""
        offsets = self._item_offsets.get(item)
        if not offsets:
            raise KeyError(f"Item {item} is not in this broadcast")
        start = self._data_start
        return [start + offset for offset in offsets]

    def next_slot_of(self, item: int, after: float) -> Optional[int]:
        """First slot of ``item`` delivered *at or after* cycle-relative
        time ``after``; ``None`` if every copy has already flown by (the
        client must wait for the next cycle).

        A bucket is delivered at the middle of its slot, and the delivery
        instant is inclusive: a process that wakes exactly at
        ``delivery_time(slot)`` (e.g. resuming from a timeout landing on
        the boundary, or reading a second item out of the bucket it just
        heard) still receives that copy.  The earlier strict ``>`` made
        such a process silently wait a full extra cycle.
        """
        offsets = self._item_offsets.get(item)
        if not offsets:
            return None
        start = self._data_start
        if len(offsets) == 1:  # flat layout: one copy per cycle
            slot = start + offsets[0]
            return slot if slot + 0.5 >= after else None
        index = bisect_left(offsets, after, key=lambda o: start + o + 0.5)
        if index == len(offsets):
            return None
        return start + offsets[index]

    def old_version_at(
        self, item: int, cycle: int
    ) -> Optional[Tuple[OldVersionRecord, int]]:
        """The old version of ``item`` current at ``cycle``, with its slot.

        Returns ``None`` when no on-air old version covers the cycle; the
        caller should also check :meth:`record_of` (the current value may
        itself be old enough).
        """
        for old, slot in self._old_versions.get(item, ()):
            if old.covers(cycle):
                return (old, slot)
        return None

    def page_of(self, item: int) -> int:
        """Logical page (data-bucket index) of ``item`` -- the granularity
        of cache invalidation and of the bucket-level reports (§7)."""
        offsets = self._item_offsets.get(item)
        if not offsets:
            raise KeyError(f"Item {item} is not in this broadcast")
        return offsets[0]

    def old_versions_of(self, item: int) -> List[OldVersionRecord]:
        return [old for old, _ in self._old_versions.get(item, ())]

    @property
    def total_old_versions(self) -> int:
        return sum(len(v) for v in self._old_versions.values())

    def slot_breakdown(self) -> Dict[str, int]:
        """Airtime accounting for one cycle, segment by segment.

        The keys match the fields the tracer attaches to ``cycle.start``
        events, so ``repro trace airtime`` can be cross-checked against
        the program that actually flew.
        """
        return {
            "control_slots": self.control_slots,
            "index_slots": self.index_slots,
            "data_slots": len(self.data_buckets),
            "overflow_slots": len(self.overflow_buckets),
            "slots": self.total_slots,
        }

    def __repr__(self) -> str:
        return (
            f"<BroadcastProgram cycle={self.cycle} slots={self.total_slots} "
            f"(control={self.control_slots}, index={self.index_slots}, "
            f"data={len(self.data_buckets)}, overflow={len(self.overflow_buckets)})>"
        )
