"""Broadcast schedules: in what order items hit the air.

The paper evaluates a *flat* organization -- every item exactly once per
cycle, in key order -- and proposes the *broadcast-disk* organization of
Acharya et al. [1] as future work (Section 7): hot items are placed on
"faster disks" and appear several times per cycle.  Both are implemented
here as pure item-order generators; bucketization and timing live in
:mod:`repro.broadcast.program` and :mod:`repro.broadcast.channel`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


class Schedule:
    """Base class: a concrete schedule yields the per-cycle item order."""

    def item_order(self) -> List[int]:
        """The sequence of item numbers transmitted in one cycle."""
        raise NotImplementedError

    @property
    def length(self) -> int:
        """Items transmitted per cycle (>= database size if items repeat)."""
        return len(self.item_order())


class FlatSchedule(Schedule):
    """Every item once per cycle, in ascending key order (the paper's
    base organization -- clients can keep a static directory)."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        self.size = size
        self._order = list(range(1, size + 1))

    def item_order(self) -> List[int]:
        return list(self._order)


@dataclass(frozen=True)
class DiskSpec:
    """One broadcast disk: a contiguous key range and a relative speed.

    ``frequency`` is how many times per major cycle the disk's chunks are
    transmitted; the classic example is a 3-disk program with frequencies
    (4, 2, 1).
    """

    first: int
    last: int
    frequency: int

    def __post_init__(self) -> None:
        if self.first > self.last:
            raise ValueError(f"Empty disk range {self.first}..{self.last}")
        if self.frequency <= 0:
            raise ValueError(f"frequency must be positive, got {self.frequency}")

    @property
    def items(self) -> List[int]:
        return list(range(self.first, self.last + 1))


class BroadcastDiskSchedule(Schedule):
    """Multi-disk schedule after Acharya et al. SIGMOD'95.

    Each disk ``i`` is split into ``max_freq / freq_i`` chunks; the major
    cycle interleaves one chunk from every disk per minor cycle, so a disk
    with frequency ``f`` has each of its items appear ``f`` times per major
    cycle.  Frequencies must divide the maximum frequency (the standard
    broadcast-disk constraint).
    """

    def __init__(self, disks: Sequence[DiskSpec]) -> None:
        if not disks:
            raise ValueError("At least one disk is required")
        covered: set = set()
        for disk in disks:
            overlap = covered & set(disk.items)
            if overlap:
                raise ValueError(f"Disks overlap on items {sorted(overlap)[:5]}...")
            covered.update(disk.items)
        self.disks = list(disks)
        max_freq = max(d.frequency for d in disks)
        for disk in disks:
            if max_freq % disk.frequency != 0:
                raise ValueError(
                    f"Frequency {disk.frequency} does not divide the maximum "
                    f"frequency {max_freq}"
                )
        self.max_frequency = max_freq
        self._order = self._build_order()

    def _build_order(self) -> List[int]:
        # Split each disk into (max_freq / freq) chunks of near-equal size.
        chunks_per_disk: List[List[List[int]]] = []
        for disk in self.disks:
            num_chunks = self.max_frequency // disk.frequency
            items = disk.items
            size = math.ceil(len(items) / num_chunks)
            chunks = [items[i : i + size] for i in range(0, len(items), size)]
            while len(chunks) < num_chunks:
                chunks.append([])  # pad with empty chunks to keep cadence
            chunks_per_disk.append(chunks)

        order: List[int] = []
        for minor in range(self.max_frequency):
            for disk, chunks in zip(self.disks, chunks_per_disk):
                # The whole disk every minor cycle when frequency == max;
                # otherwise the chunk whose turn it is.
                if disk.frequency == self.max_frequency:
                    order.extend(disk.items)
                else:
                    order.extend(chunks[minor % len(chunks)])
        return order

    def item_order(self) -> List[int]:
        return list(self._order)

    def frequency_of(self, item: int) -> int:
        for disk in self.disks:
            if disk.first <= item <= disk.last:
                return disk.frequency
        raise KeyError(f"Item {item} is on no disk")

    @classmethod
    def classic(cls, size: int, hot_fraction: float = 0.1) -> "BroadcastDiskSchedule":
        """A conventional 3-disk (4, 2, 1) program over ``1..size``.

        The hottest ``hot_fraction`` of items go on the fast disk, the next
        ``2 * hot_fraction`` on the medium disk, the rest on the slow one.
        """
        hot_end = max(1, int(size * hot_fraction))
        warm_end = min(size, hot_end + max(1, int(2 * size * hot_fraction)))
        disks = [DiskSpec(1, hot_end, 4)]
        if warm_end > hot_end:
            disks.append(DiskSpec(hot_end + 1, warm_end, 2))
        if size > warm_end:
            disks.append(DiskSpec(warm_end + 1, size, 1))
        return cls(disks)
