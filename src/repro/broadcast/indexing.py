"""(1, m) index broadcasting and selective tuning.

Section 2.1 of the paper: clients with battery constraints must not
listen continuously; either they hold a directory, or "the broadcast can
be self-descriptive, in that some form of directory information is
broadcasted along with data", citing the air-indexing work of Imielinski
et al. [14].  This module implements the classic **(1, m) indexing**
scheme from that line of work, which the multiversion *clustered*
organization needs (item positions shift every cycle, so a local
directory goes stale):

* the index is a B+-tree over ``item -> data bucket``, fanout ``f``;
* the full index is broadcast ``m`` times per cycle, a copy in front of
  each of ``m`` equal data segments;
* every bucket header carries the offset to the next index copy, so a
  client that tunes in mid-stream dozes until the next index, probes
  ``1 + height`` index buckets while descending, then dozes again until
  the target data bucket.

Two cost measures (in buckets):

* **access time** -- how long until the item is delivered (latency);
* **tuning time** -- how many buckets the client actually listened to
  (energy); the whole point of air indexing is to trade a little access
  time for a lot of tuning time.

The classic results reproduce directly from the model: without an index
tuning time is half the broadcast; with (1, m) it drops to
``~2 + height``; the access-optimal replication is ``m* = sqrt(D / i)``
where ``i`` is the index size in buckets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class TuningCost:
    """Cost of locating one item, in bucket slots."""

    access_time: float
    tuning_time: int

    @property
    def doze_time(self) -> float:
        """Slots spent dozing (access minus tuned slots)."""
        return self.access_time - self.tuning_time


class OneMIndex:
    """The (1, m) air-index layout over a flat data segment.

    Parameters
    ----------
    data_buckets:
        Number of data buckets per cycle (``D / items_per_bucket``).
    items_per_bucket:
        Data items per bucket (defines the key -> bucket mapping).
    fanout:
        B+-tree fanout (keys per index bucket).
    replication:
        ``m`` -- how many times the index is broadcast per cycle.
    """

    def __init__(
        self,
        data_buckets: int,
        items_per_bucket: int,
        fanout: int = 8,
        replication: int = 1,
    ) -> None:
        if data_buckets <= 0:
            raise ValueError("data_buckets must be positive")
        if items_per_bucket <= 0:
            raise ValueError("items_per_bucket must be positive")
        if fanout < 2:
            raise ValueError("fanout must be at least 2")
        if replication < 1:
            raise ValueError("replication (m) must be at least 1")
        self.data_buckets = data_buckets
        self.items_per_bucket = items_per_bucket
        self.fanout = fanout
        self.replication = replication

    # -- index geometry ------------------------------------------------------

    @property
    def height(self) -> int:
        """Levels of the index tree above the leaves (>= 0)."""
        return max(0, math.ceil(math.log(self.data_buckets, self.fanout)) - 1)

    @property
    def index_buckets(self) -> int:
        """Buckets one full index copy occupies."""
        total = 0
        level = self.data_buckets
        while level > 1:
            level = math.ceil(level / self.fanout)
            total += level
        return max(1, total)

    @property
    def probes(self) -> int:
        """Index buckets a client listens to while descending (root to
        leaf, inclusive)."""
        probes = 0
        level = self.data_buckets
        while level > 1:
            level = math.ceil(level / self.fanout)
            probes += 1
        return max(1, probes)

    @property
    def cycle_length(self) -> int:
        """Total buckets per broadcast cycle (data + m index copies)."""
        return self.data_buckets + self.replication * self.index_buckets

    @property
    def segment_data(self) -> int:
        """Data buckets between consecutive index copies."""
        return math.ceil(self.data_buckets / self.replication)

    def data_bucket_of(self, item: int) -> int:
        """Which data bucket (0-based, in key order) carries ``item``."""
        if item < 1:
            raise ValueError(f"Item numbers start at 1, got {item}")
        bucket = (item - 1) // self.items_per_bucket
        if bucket >= self.data_buckets:
            raise ValueError(f"Item {item} is outside the broadcast")
        return bucket

    def slot_of_data_bucket(self, bucket: int) -> int:
        """Cycle-relative slot of data bucket ``bucket`` in the (1, m)
        layout ``[index][seg][index][seg]...``."""
        segment, offset = divmod(bucket, self.segment_data)
        return (segment + 1) * self.index_buckets + segment * self.segment_data + offset

    def next_index_slot(self, slot: float) -> int:
        """First slot of the next index copy at or after ``slot`` (may lie
        in the next cycle, returned as an absolute offset >= slot)."""
        period = self.index_buckets + self.segment_data
        k = math.ceil(slot / period)
        while True:
            candidate = k * period
            segment_start = candidate
            if segment_start >= slot:
                return segment_start
            k += 1

    # -- costs -----------------------------------------------------------------

    def locate(self, item: int, arrival_slot: float) -> TuningCost:
        """Cost of reading ``item`` when tuning in at ``arrival_slot``
        (cycle-relative, may be fractional).

        Protocol: one initial probe (learn the offset to the next index
        copy from any bucket header), doze to the index, descend
        (``probes`` tuned buckets), doze to the data bucket, read it.
        """
        index_slot = self.next_index_slot(arrival_slot)
        data_slot = self.slot_of_data_bucket(self.data_bucket_of(item))
        # Unroll into the next cycle if the item's copy precedes the index
        # we just used.
        while data_slot < index_slot + self.probes:
            data_slot += self.cycle_length
        access = (data_slot + 1) - arrival_slot
        tuning = 1 + self.probes + 1  # initial probe + descent + data bucket
        return TuningCost(access_time=access, tuning_time=tuning)

    def mean_costs(self, samples: int = 200) -> Tuple[float, float]:
        """Mean (access, tuning) over arrival phases and items."""
        total_access = 0.0
        total_tuning = 0
        count = 0
        items = range(1, self.data_buckets * self.items_per_bucket + 1,
                      max(1, self.items_per_bucket // 2))
        for k in range(samples):
            arrival = k * self.cycle_length / samples
            for item in items:
                cost = self.locate(item, arrival)
                total_access += cost.access_time
                total_tuning += cost.tuning_time
                count += 1
        return (total_access / count, total_tuning / count)

    @staticmethod
    def optimal_replication(data_buckets: int, index_buckets: int) -> int:
        """The access-optimal ``m* = sqrt(D / i)`` of Imielinski et al."""
        if index_buckets <= 0:
            return 1
        return max(1, round(math.sqrt(data_buckets / index_buckets)))


def no_index_costs(data_buckets: int) -> Tuple[float, float]:
    """Baseline without any index: the client listens from arrival until
    the item flies by -- mean access D/2, mean tuning D/2 (every slot
    listened)."""
    mean = data_buckets / 2
    return (mean, mean)
