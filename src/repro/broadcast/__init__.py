"""The air interface: broadcast programs, schedules, and the channel.

* :mod:`repro.broadcast.program` -- what one broadcast cycle physically
  contains: a control segment, data buckets of
  :class:`~repro.broadcast.program.ItemRecord` s, and (for the
  multiversion method's overflow organization) old-version buckets at the
  end of the bcast.
* :mod:`repro.broadcast.schedule` -- in which order items are transmitted:
  the paper's flat organization, and the broadcast-disk organization of
  [Acharya et al.] that Section 7 proposes as an extension.
* :mod:`repro.broadcast.channel` -- transmission timing: one bucket per
  slot, item delivery events, cycle-start synchronization, and the
  listener registry clients use to pick up control information.
"""

from repro.broadcast.channel import BroadcastChannel, ChannelListener
from repro.broadcast.indexing import OneMIndex, TuningCost, no_index_costs
from repro.broadcast.program import (
    Bucket,
    BroadcastProgram,
    ItemRecord,
    OldVersionRecord,
)
from repro.broadcast.schedule import (
    BroadcastDiskSchedule,
    DiskSpec,
    FlatSchedule,
    Schedule,
)

__all__ = [
    "BroadcastChannel",
    "BroadcastDiskSchedule",
    "BroadcastProgram",
    "Bucket",
    "ChannelListener",
    "DiskSpec",
    "FlatSchedule",
    "OneMIndex",
    "ItemRecord",
    "OldVersionRecord",
    "Schedule",
    "TuningCost",
    "no_index_costs",
]
