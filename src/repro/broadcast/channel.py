"""The broadcast channel: transmission timing and client tuning.

One bucket is transmitted per slot (one simulated time unit); a bucket is
considered delivered at the middle of its slot, so deliveries never
collide with cycle boundaries.  The channel also provides the
synchronization point clients use to tune in at the beginning of each
bcast: the server installs the next program and *then* fires the
cycle-start event, guaranteeing that a client resuming at the boundary
always sees the new program and its control information.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Protocol, Tuple

from repro.broadcast.program import BroadcastProgram, ItemRecord, OldVersionRecord
from repro.sim.engine import Environment
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.control import ControlInfo


class ChannelListener(Protocol):
    """Anything that wants the control segment at each cycle start."""

    def on_cycle_start(self, program: BroadcastProgram) -> None:
        """Called synchronously when a new cycle's program goes on air."""
        ...  # pragma: no cover


class BroadcastChannel:
    """Models the (single, high-bandwidth) downstream broadcast channel."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._program: Optional[BroadcastProgram] = None
        self._cycle_start_time: float = 0.0
        self._listeners: List[ChannelListener] = []
        #: Bound ``on_interim_report`` methods, resolved once at subscribe
        #: time: publishing a mid-cycle report must not pay a per-listener
        #: ``getattr`` scan on the hot path.
        self._interim_handlers: List[Any] = []
        self._cycle_started: Event = env.event()

    # -- server side -------------------------------------------------------

    def begin_cycle(self, program: BroadcastProgram) -> None:
        """Install ``program`` and notify listeners; called by the server
        at the exact cycle-start instant."""
        self._program = program
        self._cycle_start_time = self.env.now
        for listener in self._listeners:
            listener.on_cycle_start(program)
        # Wake everyone waiting for the boundary, then arm a fresh event.
        event, self._cycle_started = self._cycle_started, self.env.event()
        event.succeed(program)

    def publish_interim_report(self, report) -> None:
        """Push a mid-cycle invalidation report (§7 sub-cycle extension).

        Listeners that implement ``on_interim_report`` receive it; others
        are unaffected (the main per-cycle report still covers everything).
        """
        for handler in self._interim_handlers:
            handler(report)

    def subscribe(self, listener: ChannelListener) -> None:
        self._listeners.append(listener)
        handler = getattr(listener, "on_interim_report", None)
        if handler is not None:
            self._interim_handlers.append(handler)

    def unsubscribe(self, listener: ChannelListener) -> None:
        """Detach ``listener``; detaching one that is already gone is a
        no-op (a disconnect storm may race a client-initiated detach)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            return
        handler = getattr(listener, "on_interim_report", None)
        if handler is not None:
            try:
                self._interim_handlers.remove(handler)
            except ValueError:  # pragma: no cover - defensive
                pass

    # -- state -----------------------------------------------------------------

    @property
    def program(self) -> BroadcastProgram:
        if self._program is None:
            raise RuntimeError("The channel is not broadcasting yet")
        return self._program

    @property
    def on_air(self) -> bool:
        return self._program is not None

    @property
    def current_cycle(self) -> int:
        return self.program.cycle

    @property
    def cycle_start_time(self) -> float:
        return self._cycle_start_time

    def cycle_started(self) -> Event:
        """Event firing at the next cycle start with the new program."""
        return self._cycle_started

    # -- timing helpers -----------------------------------------------------------

    def delivery_time(self, slot: int) -> float:
        """Absolute delivery time of cycle-relative ``slot`` this cycle."""
        return self._cycle_start_time + slot + 0.5

    def prefetch_time(self, slot: int) -> float:
        """When a cache autoprefetch armed on ``slot`` obtains its value.

        On the perfect channel this equals :meth:`delivery_time`; a faulty
        channel returns ``inf`` for slots the client will not receive, so
        the prefetch never materializes (see :mod:`repro.faults`).
        """
        return self.delivery_time(slot)

    def relative_now(self) -> float:
        """Time since the current cycle started."""
        return self.env.now - self._cycle_start_time

    # -- client-side tuning (simulation processes) ---------------------------------

    def await_item(self, item: int):
        """Process: wait until ``item``'s current value flies by.

        Returns ``(record, cycle)`` where ``cycle`` is the broadcast cycle
        the value was read from.  If the item has already passed in the
        current cycle, waits for the next cycle.
        """
        while True:
            program = self.program
            slot = program.next_slot_of(item, self.relative_now())
            if slot is not None:
                record = program.record_of(item)
                yield self.env.timeout(self.delivery_time(slot) - self.env.now)
                return (record, program.cycle)
            # Already flown by: sleep until the next bcast begins.
            yield self.cycle_started()

    def await_old_version(self, item: int, cycle: int):
        """Process: wait for the on-air version of ``item`` current at
        ``cycle`` (Theorem 2's read rule: largest version <= first-read
        cycle).

        Returns ``(record, found, valid_to)``: ``found`` is ``False`` when
        the needed version is no longer on the air, in which case the
        transaction must abort.  ``valid_to`` is the last cycle the value
        was current for (``None`` when the current value satisfied the
        read).  The current value qualifies when its version is old
        enough; otherwise the old-version area is consulted, which in the
        overflow organization means waiting until the end of the bcast.
        """
        while True:
            program = self.program
            now_rel = self.relative_now()

            current = program.record_of(item)
            if current.version <= cycle:
                # The current value is the one we need.
                slot = program.next_slot_of(item, now_rel)
                if slot is not None:
                    yield self.env.timeout(self.delivery_time(slot) - self.env.now)
                    return (current, True, None)
            else:
                hit = program.old_version_at(item, cycle)
                if hit is None:
                    # Required version discarded from the air: abort.
                    return (None, False, None)
                old, slot = hit
                # Delivery-instant inclusive, like next_slot_of: a process
                # resuming exactly at the delivery time still hears it.
                if slot + 0.5 >= now_rel:
                    yield self.env.timeout(self.delivery_time(slot) - self.env.now)
                    record = ItemRecord(
                        item=old.item,
                        value=old.value,
                        version=old.version,
                        writer=old.writer,
                    )
                    return (record, True, old.valid_to)
            # Missed this cycle's copy; try again next cycle.
            yield self.cycle_started()
