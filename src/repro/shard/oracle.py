"""Differential oracle for the sharded broadcast server.

Two claims, both checked mechanically (``python -m repro.shard.oracle``):

1. **K=1 bit-identity** -- a :class:`~repro.shard.runtime.ShardedSimulation`
   with one shard IS the single-channel :class:`~repro.runtime.Simulation`:
   every metric counter, ratio and exact sampler sum, and every headline
   result field, matches exactly, across schemes × seeds × faults on/off.
   The comparison machinery is shared with the cohort oracle
   (:func:`repro.cohort.oracle.registry_delta`), which pins the same
   notion of "bit-identical".
2. **Multi-shard consistency contracts** -- for K > 1, every committed
   transaction satisfies its consistency mode's contract
   (:func:`repro.shard.verify.sharded_violations`): per-shard
   serializability always, plus a global snapshot for every
   snapshot-based scheme and for everything in ``epoch`` mode.

Exit status 0 iff every cell passes; cells past the ``--max-seconds``
budget are skipped (reported, not failed), like the cohort oracle.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.cohort.oracle import oracle_params, registry_delta, result_delta
from repro.config import ModelParameters
from repro.experiments.schemes import SCHEME_FACTORIES
from repro.runtime import Simulation
from repro.shard.runtime import ShardedSimulation
from repro.shard.verify import sharded_violations

#: Identity arm: the same line-up the cohort oracle pins down.
DEFAULT_SCHEMES = (
    "inval",
    "inval+cache",
    "versioned-cache",
    "sgt+cache",
    "multiversion+cache",
)
DEFAULT_SEEDS = (7, 11, 23, 42, 97)

#: Contract arm: one scheme per consistency behaviour class (plain
#: invalidation, marked-abort salvage, SGT, pinned-snapshot multiversion).
CONTRACT_SCHEMES = (
    "inval+cache",
    "versioned-cache",
    "sgt+cache",
    "multiversion+cache",
)
DEFAULT_SHARDS = (2, 4)
DEFAULT_FRACTIONS = (0.1, 0.5)
DEFAULT_MODES = ("local", "epoch")
DEFAULT_CONTRACT_SEEDS = (42,)


def contract_params(
    clients: int, seed: int, faults: bool, num_cycles: int = 30
) -> ModelParameters:
    """The contract arm's workload: the cohort-oracle cell, widened so
    the read range spans every shard under *both* partitioners (a range
    partition of 100 items at K=4 starts shard 3 at item 76)."""
    params = oracle_params(
        clients=clients, seed=seed, faults=faults, num_cycles=num_cycles
    )
    return params.with_client(read_range=80, cache_size=30)


def check_identity_cell(
    scheme: str, clients: int, seed: int, faults: bool, num_cycles: int
) -> Dict:
    """Compare one single-channel run against its K=1 sharded twin."""
    params = oracle_params(
        clients=clients, seed=seed, faults=faults, num_cycles=num_cycles
    )
    factory = SCHEME_FACTORIES[scheme]
    single = Simulation(params, factory, keep_history=True).run()
    sharded = ShardedSimulation(
        params, factory, num_shards=1, keep_history=True
    ).run()
    mismatches = registry_delta(single.metrics, sharded.metrics)
    mismatches.extend(result_delta(single, sharded))
    return {
        "arm": "identity",
        "scheme": scheme,
        "clients": clients,
        "seed": seed,
        "faults": faults,
        "mismatches": mismatches,
        "committed": sharded.committed_attempts,
    }


def check_contract_cell(
    scheme: str,
    shards: int,
    mode: str,
    fraction: float,
    partitioner: str,
    clients: int,
    seed: int,
    faults: bool,
    num_cycles: int,
) -> Dict:
    """Run one multi-shard cell and check every committed transaction."""
    params = contract_params(
        clients=clients, seed=seed, faults=faults, num_cycles=num_cycles
    )
    sim = ShardedSimulation(
        params,
        SCHEME_FACTORIES[scheme],
        num_shards=shards,
        partitioner=partitioner,
        consistency=mode,
        cross_shard_fraction=fraction,
        keep_history=True,
    )
    result = sim.run()
    violations = sharded_violations(sim)
    cross = result.metrics.get_counter("shard.cross_commits")
    return {
        "arm": "contract",
        "scheme": scheme,
        "shards": shards,
        "mode": mode,
        "fraction": fraction,
        "partitioner": partitioner,
        "seed": seed,
        "faults": faults,
        "committed": result.committed_attempts,
        "cross_commits": cross.value if cross else 0,
        "mismatches": [
            {"txn": txn.txn_id, "contract": why} for txn, why in violations
        ],
    }


def _dump_artifact(directory: str, name: str, report: Dict) -> None:
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True, default=str)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.shard.oracle", description=__doc__
    )
    parser.add_argument(
        "--schemes", nargs="+", default=list(DEFAULT_SCHEMES),
        choices=sorted(SCHEME_FACTORIES),
    )
    parser.add_argument("--seeds", nargs="+", type=int, default=list(DEFAULT_SEEDS))
    parser.add_argument(
        "--contract-seeds", nargs="+", type=int,
        default=list(DEFAULT_CONTRACT_SEEDS),
    )
    parser.add_argument("--shards", nargs="+", type=int, default=list(DEFAULT_SHARDS))
    parser.add_argument(
        "--fractions", nargs="+", type=float, default=list(DEFAULT_FRACTIONS)
    )
    parser.add_argument(
        "--modes", nargs="+", default=list(DEFAULT_MODES), choices=DEFAULT_MODES
    )
    parser.add_argument(
        "--partitioners", nargs="+", default=["hash", "range"],
        choices=["hash", "range"],
    )
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--cycles", type=int, default=30)
    parser.add_argument(
        "--max-seconds", type=float, default=None,
        help="wall budget; remaining cells are skipped, not failed",
    )
    parser.add_argument(
        "--artifacts", default=None,
        help="directory for per-failure JSON dumps",
    )
    args = parser.parse_args(argv)

    started = time.monotonic()

    def out_of_budget() -> bool:
        return (
            args.max_seconds is not None
            and time.monotonic() - started > args.max_seconds
        )

    cells: List[tuple] = []
    for scheme in args.schemes:
        for seed in args.seeds:
            for faults in (False, True):
                cells.append(("identity", scheme, seed, faults, None))
    for scheme in args.schemes:
        if scheme not in CONTRACT_SCHEMES:
            continue
        for shards in args.shards:
            for mode in args.modes:
                for partitioner in args.partitioners:
                    for fraction in args.fractions:
                        for seed in args.contract_seeds:
                            for faults in (False, True):
                                cells.append(
                                    (
                                        "contract",
                                        scheme,
                                        seed,
                                        faults,
                                        (shards, mode, partitioner, fraction),
                                    )
                                )

    passed = failed = skipped = 0
    for cell in cells:
        arm, scheme, seed, faults, extra = cell
        if arm == "identity":
            label = (
                f"identity {scheme} seed={seed} "
                f"faults={'on' if faults else 'off'}"
            )
        else:
            shards, mode, partitioner, fraction = extra
            label = (
                f"contract {scheme} K={shards} {mode} {partitioner} "
                f"f={fraction} seed={seed} faults={'on' if faults else 'off'}"
            )
        if out_of_budget():
            skipped += 1
            print(f"[skip] {label} (over --max-seconds budget)")
            continue
        if arm == "identity":
            report = check_identity_cell(
                scheme, args.clients, seed, faults, args.cycles
            )
        else:
            report = check_contract_cell(
                scheme,
                shards,
                mode,
                fraction,
                partitioner,
                args.clients,
                seed,
                faults,
                args.cycles,
            )
        if report["mismatches"]:
            failed += 1
            print(f"[FAIL] {label}: {len(report['mismatches'])} mismatch(es)")
            for mismatch in report["mismatches"][:5]:
                print(f"       {mismatch}")
            if args.artifacts:
                _dump_artifact(
                    args.artifacts,
                    label.replace(" ", "_").replace("=", ""),
                    report,
                )
        else:
            passed += 1
            print(f"[ok] {label} (committed={report['committed']})")

    total = passed + failed
    print(
        f"{'PASS' if failed == 0 else 'FAIL'}: {passed}/{total} cells clean"
        + (f", {skipped} skipped" if skipped else "")
    )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
