"""Cross-shard consistency: one scheme instance per touched shard.

A client of the sharded broadcast runs one :class:`MultiShardScheme`,
which owns an independent instance of the underlying scheme per
subscribed shard and routes every hook by item ownership:

* ``read(txn, item)`` goes to the sub-scheme of the item's shard, whose
  :class:`_ShardContext` points channel accesses at that shard's (per
  client, possibly fault-wrapped) channel;
* ``on_shard_cycle_start``/``on_shard_missed_cycle`` (called by the
  multi-tuner client) go to the shard that aired or missed the cycle.

Consistency modes
-----------------
``local``
    Each sub-scheme enforces its invariant against its own shard's
    serialization order.  For the snapshot-based schemes (invalidation,
    versioned cache, multiversion) the shared transaction state -- the
    first-invalidation deadline ``c_u`` and the first-read cycle ``c0``
    -- composes the per-shard guarantees into one *global* snapshot,
    because all shard cycles are epoch-aligned (see DESIGN §13).  SGT is
    the exception: per-shard serializability does not compose, so a
    multi-shard SGT query is only shard-wise serializable.

``epoch``
    Adds a strict currency discipline on top: a query touching more than
    one shard is aborted (``AbortReason.EPOCH_MISMATCH``) the moment any
    touched shard's invalidation report hits its readset, or any touched
    shard's cycle is missed, *before* the sub-scheme gets to salvage it
    (marking, old versions).  Committed multi-shard queries therefore
    read the globally current snapshot of their commit epoch.  Schemes
    that pin a global snapshot by construction (``needs_old_versions``,
    i.e. multiversion) are exempt -- their ``c0`` snapshot is already
    epoch-consistent.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.broadcast.program import BroadcastProgram
from repro.core.base import ReadContext, Scheme
from repro.core.control import BroadcastRequirements
from repro.core.transaction import (
    AbortReason,
    ReadOnlyTransaction,
    TransactionStatus,
)
from repro.shard.partition import Partitioner
from repro.stats import names as metric_names

CONSISTENCY_MODES = ("local", "epoch")


class _ShardContext(ReadContext):
    """A read context whose channel is one shard's channel.

    Everything else (env, cache, metrics, params) is shared with the
    client's primary context, so sub-schemes on different shards share
    the one client cache and metrics registry.
    """

    def __init__(self, runtime, channel) -> None:
        super().__init__(runtime)
        self._shard_channel = channel

    @property
    def channel(self):
        return self._shard_channel

    @property
    def current_cycle(self) -> int:
        return self._shard_channel.current_cycle


class MultiShardScheme(Scheme):
    """Routes one client's scheme traffic across per-shard sub-schemes."""

    def __init__(
        self,
        factory: Callable[[], Scheme],
        partitioner: Partitioner,
        mode: str = "local",
    ) -> None:
        if mode not in CONSISTENCY_MODES:
            raise ValueError(
                f"Unknown consistency mode {mode!r}; known: "
                + ", ".join(CONSISTENCY_MODES)
            )
        self._factory = factory
        self._partitioner = partitioner
        self.mode = mode
        #: Template instance: answers requirements/use_cache/label before
        #: the per-shard channels exist.
        self._probe = factory()
        self._requirements = self._probe.requirements()
        self._needs_old = self._requirements.needs_old_versions
        self._subs: Dict[int, Scheme] = {}
        self._channels: Dict[int, object] = {}
        #: txn_id -> (txn, touched shard tuple), for the epoch discipline
        #: and end() routing.
        self._active: Dict[str, Tuple[ReadOnlyTransaction, Tuple[int, ...]]] = {}
        super().__init__(use_cache=self._probe.use_cache)

    # -- identity ----------------------------------------------------------

    @property
    def name(self) -> str:  # type: ignore[override]
        return self._probe.name

    @property
    def label(self) -> str:  # type: ignore[override]
        return f"{self._probe.label}@{self._partitioner.num_shards}sh/{self.mode}"

    def requirements(self) -> BroadcastRequirements:
        return self._probe.requirements()

    # -- wiring ------------------------------------------------------------

    def bind_channels(self, channels: Dict[int, object]) -> None:
        """Install this client's per-shard channels and build the
        sub-schemes; must run before the client constructs (and thereby
        attaches) the scheme."""
        self._channels = dict(channels)
        self._subs = {shard: self._factory() for shard in sorted(channels)}

    def attach(self, ctx: ReadContext) -> None:
        if not self._subs:
            raise RuntimeError("bind_channels() must run before attach()")
        super().attach(ctx)
        runtime = ctx._runtime
        for shard, sub in self._subs.items():
            sub.attach(_ShardContext(runtime, self._channels[shard]))

    def _shard_of(self, item: int) -> int:
        return self._partitioner.shard_of(item)

    def _sub_for(self, item: int) -> Scheme:
        return self._subs[self._shard_of(item)]

    # -- per-shard cycle hooks (called by ShardedClient) -------------------

    def on_shard_cycle_start(self, shard: int, program: BroadcastProgram) -> None:
        if self.mode == "epoch" and not self._needs_old:
            report = program.control.invalidation
            for txn, touched in list(self._active.values()):
                if len(touched) < 2 or shard not in touched:
                    continue
                if not txn.is_active:
                    continue
                hit = report.invalidates(txn.readset)
                if hit:
                    self.ctx.metrics.count(metric_names.SHARD_EPOCH_ABORTS)
                    txn.abort(
                        AbortReason.EPOCH_MISMATCH,
                        self.ctx.env.now,
                        program.cycle,
                        cause={
                            "event": "epoch_mismatch",
                            "shard": shard,
                            "report_cycle": program.cycle,
                            "items": sorted(hit),
                        },
                    )
        self._subs[shard].on_cycle_start(program)

    def on_shard_missed_cycle(self, shard: int, cycle: int) -> None:
        if self.mode == "epoch" and not self._needs_old:
            for txn, touched in list(self._active.values()):
                if len(touched) < 2 or shard not in touched:
                    continue
                if not txn.is_active:
                    continue
                self.ctx.metrics.count(metric_names.SHARD_EPOCH_ABORTS)
                txn.abort(
                    AbortReason.EPOCH_MISMATCH,
                    self.ctx.env.now,
                    cycle,
                    cause={
                        "event": "epoch_missed_cycle",
                        "shard": shard,
                        "missed_cycle": cycle,
                    },
                )
        self._subs[shard].on_missed_cycle(cycle)

    # -- single-channel hooks (never used by the multi-tuner client, but
    # -- kept correct for direct driving in tests) -------------------------

    def on_cycle_start(self, program: BroadcastProgram) -> None:
        for shard in self._subs:
            self.on_shard_cycle_start(shard, program)

    def on_missed_cycle(self, cycle: int) -> None:
        for shard in self._subs:
            self.on_shard_missed_cycle(shard, cycle)

    # -- transaction lifecycle ---------------------------------------------

    def begin(self, txn: ReadOnlyTransaction) -> None:
        touched = tuple(
            sorted(
                {
                    self._shard_of(item)
                    for item in txn.items
                    if self._shard_of(item) in self._subs
                }
            )
        )
        self._active[txn.txn_id] = (txn, touched)
        for shard in touched:
            self._subs[shard].begin(txn)

    def read(self, txn: ReadOnlyTransaction, item: int):
        result = yield from self._sub_for(item).read(txn, item)
        return result

    def finish(self, txn: ReadOnlyTransaction) -> None:
        _, touched = self._active.get(txn.txn_id, (txn, ()))
        for shard in touched:
            self._subs[shard].finish(txn)

    def end(self, txn: ReadOnlyTransaction) -> None:
        _, touched = self._active.pop(txn.txn_id, (txn, ()))
        for shard in touched:
            self._subs[shard].end(txn)
        if (
            txn.status is TransactionStatus.COMMITTED
            and len(self._shards_read(txn)) > 1
        ):
            self.ctx.metrics.count(metric_names.SHARD_CROSS_COMMITS)

    def _shards_read(self, txn: ReadOnlyTransaction) -> frozenset:
        return frozenset(self._shard_of(item) for item in txn.reads)

    def state_cycle(self, txn: ReadOnlyTransaction) -> Optional[int]:
        """Delegate to any sub-scheme: every scheme's answer is a pure
        function of the (shared) transaction state, so the shard choice
        is immaterial; SGT answers ``None`` either way."""
        shards = self._shards_read(txn)
        if not shards:
            return None
        return self._subs[min(shards)].state_cycle(txn)

    # -- checkpoint surface (resilience is rejected in sharded mode, but
    # -- reset keeps direct drivers honest) --------------------------------

    def reset_state(self) -> None:
        self._active.clear()
        for sub in self._subs.values():
            sub.reset_state()
