"""The sharded multi-channel broadcast server.

:class:`ShardedSimulation` partitions the item space over ``K``
broadcast channels.  Each shard owns a full server substrate -- its own
transaction engine (restricted to the shard's items), program builder,
version store and channel -- while the one shared :class:`Database`
keeps the global item state authoritative.

Cycle alignment ("superframes")
-------------------------------
All shards begin cycle ``c`` at the same instant, in shard order; the
superframe lasts as long as the longest shard program.  The cycle number
therefore doubles as a *global epoch*: any two programs carrying the
same cycle number describe states current at the same moment.  This is
what lets the snapshot-based schemes compose per-shard guarantees into
global ones (DESIGN §13) and what the ``epoch`` consistency mode's
currency discipline is defined against.

K=1 bit-identity
----------------
With one shard the construction below performs *exactly* the RNG draws,
event creations, metric observations and trace emissions of
:class:`~repro.runtime.Simulation` -- it even reuses
:class:`~repro.server.backend.SingleChannelBackend` -- so results are
bit-identical; :mod:`repro.shard.oracle` enforces this differentially.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.broadcast.channel import BroadcastChannel
from repro.broadcast.schedule import Schedule
from repro.client.machine import BroadcastClient
from repro.config import ModelParameters
from repro.core.base import Scheme
from repro.core.control import BroadcastRequirements, ReportSchedule
from repro.faults.injector import _SEED_SALT, FaultInjector
from repro.obs.trace import (
    EV_CYCLE_END,
    EV_CYCLE_START,
    EV_ENGINE_STEP,
    EV_SHARD_CYCLE_START,
    Tracer,
    gate,
)
from repro.runtime import SimulationResult
from repro.server.backend import ServerBackend, SingleChannelBackend
from repro.server.broadcast import ProgramBuilder
from repro.server.database import Database
from repro.server.itemstate import ItemStateStore, make_item_state
from repro.server.transactions import TransactionEngine
from repro.shard.client import ShardedClient
from repro.shard.partition import Partitioner, make_partitioner
from repro.shard.scheme import CONSISTENCY_MODES, MultiShardScheme
from repro.sim.engine import Environment
from repro.stats import names as metric_names
from repro.stats.metrics import MetricsRegistry
from repro.stats.zipf import OffsetZipfGenerator

#: Knuth's 64-bit multiplicative constant, for per-shard fault seeds.
_MIX = 0x9E3779B97F4A7C15
_MASK = (1 << 64) - 1
#: Salt for the cross-shard query shaper's RNG tree (independent of the
#: workload and fault streams, like the fault injector's salt).
_SHAPER_SALT = 0x5A4D_C0DE


class ShardSchedule(Schedule):
    """One shard's flat broadcast order: its items, ascending."""

    def __init__(self, items: Sequence[int]) -> None:
        if not items:
            raise ValueError("A shard schedule needs at least one item")
        self._order = sorted(items)

    def item_order(self) -> List[int]:
        return list(self._order)


@dataclass
class ShardState:
    """One shard's server substrate."""

    index: int
    items: tuple
    channel: BroadcastChannel
    builder: ProgramBuilder
    engine: Optional[TransactionEngine]
    version_store: Optional[ItemStateStore]
    retention: int
    #: Server transactions committed per cycle on this shard.
    txn_count: int
    #: First per-cycle sequence number, so TxnIds stay globally unique.
    seq_base: int
    injector: Optional[FaultInjector] = None


def apportion(total: int, masses: Sequence[float]) -> List[int]:
    """Largest-remainder apportionment of ``total`` units over ``masses``.

    Zero-mass entries get zero; the result always sums to ``total`` when
    any mass is positive.
    """
    weight = sum(masses)
    if weight <= 0 or total <= 0:
        return [0] * len(masses)
    quotas = [total * mass / weight for mass in masses]
    shares = [int(quota) for quota in quotas]
    leftover = total - sum(shares)
    by_remainder = sorted(
        range(len(masses)),
        key=lambda idx: (-(quotas[idx] - shares[idx]), idx),
    )
    for idx in by_remainder[:leftover]:
        if masses[idx] > 0:
            shares[idx] += 1
        else:
            # Push the unit to the largest-mass shard instead.
            best = max(range(len(masses)), key=lambda j: masses[j])
            shares[best] += 1
    return shares


class ShardedBroadcastBackend(ServerBackend):
    """Aligned-superframe driver over K shard substrates (one process).

    Every shard builds and airs its cycle-``c`` program at the same
    instant; the frame advances by the *longest* program.  Per-shard
    engines then commit their apportioned slice of the cycle's update
    transactions (visible at ``c + 1`` on their shard's next program).
    """

    def __init__(
        self,
        *,
        env: Environment,
        params: ModelParameters,
        metrics: MetricsRegistry,
        shards: Sequence[ShardState],
        trace_cycles: Optional[Tracer] = None,
    ) -> None:
        self.env = env
        self.params = params
        self.metrics = metrics
        self.shards = list(shards)
        self._trace_c = trace_cycles
        self.cycles_completed = 0
        self.total_slots = 0

    def process(self):
        cycle = 1
        outcomes: Dict[int, object] = {shard.index: None for shard in self.shards}
        while cycle <= self.params.sim.num_cycles:
            programs = [
                shard.builder.build(cycle, outcomes[shard.index])
                for shard in self.shards
            ]
            superframe = max(program.total_slots for program in programs)
            self.metrics.observe(metric_names.BROADCAST_SLOTS, superframe)
            self.metrics.observe(
                metric_names.BROADCAST_CONTROL_SLOTS,
                sum(program.control_slots for program in programs),
            )
            self.metrics.observe(
                metric_names.BROADCAST_OVERFLOW_SLOTS,
                sum(len(program.overflow_buckets) for program in programs),
            )
            for shard, program in zip(self.shards, programs):
                self.metrics.observe(
                    metric_names.shard_metric(
                        shard.index, metric_names.BROADCAST_SLOTS
                    ),
                    program.total_slots,
                )
            if self._trace_c is not None:
                breakdowns = [program.slot_breakdown() for program in programs]
                totals = {
                    key: sum(b[key] for b in breakdowns)
                    for key in (
                        "control_slots",
                        "index_slots",
                        "data_slots",
                        "overflow_slots",
                    )
                }
                self._trace_c.emit(
                    EV_CYCLE_START,
                    cycle=cycle,
                    slots=superframe,
                    shards=len(self.shards),
                    **totals,
                )
                for shard, breakdown in zip(self.shards, breakdowns):
                    self._trace_c.emit(
                        EV_SHARD_CYCLE_START,
                        cycle=cycle,
                        shard=shard.index,
                        **breakdown,
                    )
            # All shards go on air at the same instant, in shard order.
            for shard, program in zip(self.shards, programs):
                shard.channel.begin_cycle(program)
            yield self.env.timeout(superframe)
            updates = 0
            for shard in self.shards:
                if shard.engine is None or shard.txn_count == 0:
                    outcomes[shard.index] = None
                    continue
                outcome = shard.engine.run_batch(
                    cycle, range(shard.seq_base, shard.seq_base + shard.txn_count)
                )
                shard.engine.record_outcome(outcome)
                shard.engine.prune_graph_before(
                    cycle - 4 * max(shard.retention, 2)
                )
                outcomes[shard.index] = outcome
                updates += len(outcome.updated_items)
            self.cycles_completed = cycle
            self.total_slots += superframe
            if self._trace_c is not None:
                self._trace_c.emit(EV_CYCLE_END, cycle=cycle, updates=updates)
            cycle += 1


class ShardedSimulation:
    """One sharded broadcast-push simulation (K channels, one database).

    ``shard_retention`` optionally tunes the old-version retention ``S``
    per shard (a sequence of K ints); the default applies the global
    ``ServerParameters.retention`` everywhere.
    """

    def __init__(
        self,
        params: ModelParameters,
        scheme_factory: Callable[[], Scheme],
        num_shards: int = 1,
        partitioner: str = "hash",
        consistency: str = "local",
        cross_shard_fraction: Optional[float] = None,
        schedule: Optional[Schedule] = None,
        keep_history: bool = False,
        report_schedule: Optional[ReportSchedule] = None,
        tracer: Optional[Tracer] = None,
        shard_retention: Optional[Sequence[int]] = None,
        columnar: bool = True,
    ) -> None:
        params.validate()
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if consistency not in CONSISTENCY_MODES:
            raise ValueError(
                f"Unknown consistency mode {consistency!r}; known: "
                + ", ".join(CONSISTENCY_MODES)
            )
        if params.resilience.active:
            raise ValueError(
                "sharded mode does not support the resilience layer; "
                "run without resilience knobs or with --shards omitted"
            )
        if schedule is not None and num_shards > 1:
            raise ValueError(
                "custom broadcast schedules apply to the single-channel "
                "server only; shards derive their order from the partitioner"
            )
        if shard_retention is not None and len(shard_retention) != num_shards:
            raise ValueError(
                f"shard_retention needs one entry per shard "
                f"({num_shards}), got {len(shard_retention)}"
            )
        if shard_retention is not None and columnar:
            deep = [s for s in shard_retention if s > 0xFF]
            if deep:
                raise ValueError(
                    f"shard_retention entries {deep} exceed the columnar "
                    "store's 255-version has-old column; pass "
                    "columnar=False for deeper retention"
                )
        self.params = params
        self.num_shards = num_shards
        self.consistency = consistency
        self.cross_shard_fraction = cross_shard_fraction
        self.report_schedule = report_schedule or ReportSchedule()
        if num_shards > 1 and self.report_schedule.per_cycle != 1:
            raise ValueError(
                "sub-cycle reports are a single-channel extension; "
                "sharded mode requires reports_per_cycle == 1"
            )
        if isinstance(partitioner, Partitioner):
            self.partitioner = partitioner
        else:
            self.partitioner = make_partitioner(
                partitioner, num_shards, params.server.broadcast_size
            )

        self.env = Environment()
        self.metrics = MetricsRegistry()
        self._rng = random.Random(params.sim.seed)
        self.tracer = tracer
        self._trace_c = gate(tracer, "cycles")
        if tracer is not None and tracer.enabled:
            tracer.bind_clock(lambda: self.env.now)
            if tracer.engine:
                self.env.set_trace_hook(
                    lambda now, ev: tracer.emit(
                        EV_ENGINE_STEP, event=type(ev).__name__
                    )
                )

        # -- shared server substrate ---------------------------------------
        self.database = Database(params.server.broadcast_size)

        if num_shards == 1:
            self.schemes: List[Scheme] = [
                scheme_factory() for _ in range(params.sim.num_clients)
            ]
        else:
            self.schemes = [
                MultiShardScheme(scheme_factory, self.partitioner, consistency)
                for _ in range(params.sim.num_clients)
            ]
        requirements = BroadcastRequirements(
            report_window=self.report_schedule.window
        )
        for scheme in self.schemes:
            requirements = requirements.merge(scheme.requirements())
        self.requirements = requirements

        # -- per-shard substrates --------------------------------------------
        shard_items = [
            tuple(self.partitioner.items_of(k)) for k in range(num_shards)
        ]
        for k, items in enumerate(shard_items):
            if not items:
                raise ValueError(
                    f"shard {k} owns no items under the "
                    f"{self.partitioner.name} partitioner; reduce the shard "
                    f"count or grow the item universe"
                )
        txn_counts, upt = self._apportion_workload(shard_items)
        seq_bases = []
        base = 0
        for count in txn_counts:
            seq_bases.append(base)
            base += count

        self.shards: List[ShardState] = []
        for k in range(num_shards):
            retention = (
                shard_retention[k]
                if shard_retention is not None
                else params.server.retention
            )
            # One item-state store per shard over its own item slice, so K
            # stores together hold one universe's worth of columns.
            item_state = make_item_state(
                self.database,
                retention=retention if requirements.needs_old_versions else 0,
                columnar=columnar,
                items=shard_items[k] if num_shards > 1 else None,
                items_per_bucket=params.server.items_per_bucket,
            )
            version_store: Optional[ItemStateStore] = (
                item_state if requirements.needs_old_versions else None
            )
            engine: Optional[TransactionEngine] = None
            if num_shards == 1:
                engine = TransactionEngine(
                    params.server,
                    self.database,
                    version_store=version_store,
                    rng=random.Random(self._rng.getrandbits(64)),
                    keep_history=keep_history,
                )
            elif txn_counts[k] > 0:
                shard_server = replace(
                    params.server,
                    transactions_per_cycle=txn_counts[k],
                    updates_per_cycle=txn_counts[k] * upt,
                )
                engine = TransactionEngine(
                    shard_server,
                    self.database,
                    version_store=version_store,
                    rng=random.Random(self._rng.getrandbits(64)),
                    keep_history=keep_history,
                    restrict_items=frozenset(shard_items[k]),
                )
            builder = ProgramBuilder(
                params.server,
                self.database,
                version_store=version_store,
                schedule=(
                    schedule
                    if num_shards == 1
                    else ShardSchedule(shard_items[k])
                ),
                requirements=requirements,
                tracer=tracer,
                item_state=item_state,
            )
            channel = BroadcastChannel(self.env)
            self.shards.append(
                ShardState(
                    index=k,
                    items=shard_items[k],
                    channel=channel,
                    builder=builder,
                    engine=engine,
                    version_store=version_store,
                    retention=retention,
                    txn_count=txn_counts[k] if num_shards > 1 else
                    params.server.transactions_per_cycle,
                    seq_base=seq_bases[k],
                )
            )

        # -- fault layer -----------------------------------------------------
        if params.faults.active:
            for shard in self.shards:
                faults = params.faults
                if shard.index > 0:
                    base_seed = (
                        faults.seed
                        if faults.seed is not None
                        else params.sim.seed ^ _SEED_SALT
                    )
                    derived = (base_seed ^ ((_MIX * shard.index) & _MASK)) & _MASK
                    faults = replace(faults, seed=derived)
                shard.injector = FaultInjector(
                    faults, params.sim, self.metrics, tracer=tracer
                )

        # -- clients ---------------------------------------------------------
        subscribed = sorted(
            {
                self.partitioner.shard_of(item)
                for item in range(1, params.client.read_range + 1)
            }
        )
        shaper_rng: Optional[random.Random] = None
        if cross_shard_fraction is not None and num_shards > 1:
            shaper_rng = random.Random(
                (params.sim.seed ^ _SHAPER_SALT) & _MASK
            )
        self.clients: List[BroadcastClient] = []
        for client_id, scheme in enumerate(self.schemes):
            channels: Dict[int, object] = {}
            for k in subscribed:
                shard = self.shards[k]
                channel = shard.channel
                if shard.injector is not None:
                    channel = shard.injector.wrap(shard.channel, client_id)
                channels[k] = channel
            storm = None
            if self.shards[0].injector is not None:
                storm = self.shards[0].injector.disconnections_for(client_id)
            if num_shards > 1:
                scheme.bind_channels(channels)
            self.clients.append(
                ShardedClient(
                    env=self.env,
                    channels=channels,
                    primary=subscribed[0],
                    partitioner=self.partitioner,
                    scheme=scheme,
                    params=params.client,
                    metrics=self.metrics,
                    rng=random.Random(self._rng.getrandbits(64)),
                    disconnect=storm,
                    client_id=client_id,
                    warmup_cycles=params.sim.warmup_cycles,
                    tracer=tracer,
                    cross_fraction=(
                        cross_shard_fraction if num_shards > 1 else None
                    ),
                    shaper_rng=(
                        random.Random(shaper_rng.getrandbits(64))
                        if shaper_rng is not None
                        else None
                    ),
                )
            )

        # -- the driver -------------------------------------------------------
        if num_shards == 1:
            self.backend: ServerBackend = SingleChannelBackend(
                env=self.env,
                params=params,
                report_schedule=self.report_schedule,
                metrics=self.metrics,
                engine=self.shards[0].engine,
                builder=self.shards[0].builder,
                channel=self.shards[0].channel,
                trace_cycles=self._trace_c,
            )
        else:
            self.backend = ShardedBroadcastBackend(
                env=self.env,
                params=params,
                metrics=self.metrics,
                shards=self.shards,
                trace_cycles=self._trace_c,
            )
        self._stop = self.env.event()
        self.env.process(self._server_process())

    # -- workload apportionment -------------------------------------------

    def _apportion_workload(self, shard_items) -> tuple:
        """Per-shard transaction counts plus the (global) updates per
        transaction.

        Transactions are apportioned by each shard's share of the update
        Zipf mass, so the *aggregate* update workload -- skew included --
        matches the single-channel server's; each transaction keeps the
        global updates-per-transaction size.  Shards with no update mass
        commit nothing (their items are read-only at the server).
        """
        server = self.params.server
        if self.num_shards == 1:
            return [server.transactions_per_cycle], server.updates_per_transaction
        probe = OffsetZipfGenerator(
            n=server.update_range,
            theta=server.theta,
            offset=server.offset,
            universe=server.broadcast_size,
            rng=random.Random(0),
        )
        support = set(probe.support())
        masses = [
            sum(probe.probability(item) for item in items if item in support)
            for items in shard_items
        ]
        counts = apportion(server.transactions_per_cycle, masses)
        return counts, server.updates_per_transaction

    # -- the server loop ---------------------------------------------------

    def _server_process(self):
        yield from self.backend.process()
        self._stop.succeed()

    # -- single-channel compatibility surface ------------------------------

    @property
    def engine(self) -> Optional[TransactionEngine]:
        return self.shards[0].engine

    @property
    def builder(self) -> ProgramBuilder:
        return self.shards[0].builder

    @property
    def channel(self) -> BroadcastChannel:
        return self.shards[0].channel

    @property
    def version_store(self) -> Optional[ItemStateStore]:
        return self.shards[0].version_store

    @property
    def _cycles_completed(self) -> int:
        return self.backend.cycles_completed

    @property
    def _total_slots(self) -> int:
        return self.backend.total_slots

    # -- running -----------------------------------------------------------

    def run(self) -> SimulationResult:
        """Run to the configured number of cycles and aggregate results."""
        self.env.run(until=self._stop)
        mean_slots = (
            self._total_slots / self._cycles_completed
            if self._cycles_completed
            else 0.0
        )
        return SimulationResult(
            params=self.params,
            scheme_label=self.schemes[0].label if self.schemes else "none",
            metrics=self.metrics,
            cycles_completed=self._cycles_completed,
            mean_cycle_slots=mean_slots,
            clients=self.clients,
        )
