"""Correctness contracts for the sharded broadcast.

What a committed read-only transaction is entitled to depends on the
consistency mode (see :mod:`repro.shard.scheme`):

* **Per-shard contract (both modes)** -- for every shard a transaction
  read from, the sub-readset restricted to that shard must satisfy the
  single-channel correctness oracle (:func:`repro.verify.check_transaction`)
  against that shard's history: a snapshot of some shard cycle, or
  serializable with the shard's update transactions (SGT).
* **Global snapshot** -- the whole readset matches the database at one
  cycle (:func:`repro.verify.snapshot_cycle_of`).  Guaranteed for every
  snapshot-based scheme in *both* modes (the shared deadline/first-read
  state composes across epoch-aligned shards) and for every scheme in
  ``epoch`` mode.  The one documented anomaly -- multi-shard SGT in
  ``local`` mode -- is exactly the case this check is *not* applied to.

Because server transactions never span shards, a globally
snapshot-consistent read is also globally serializable: any cycle through
the reader in the union serialization graph would need a cross-shard
server-server edge, which cannot exist (DESIGN §13).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.transaction import ReadOnlyTransaction, TransactionStatus
from repro.verify import check_transaction, snapshot_cycle_of


def _sub_txn(txn: ReadOnlyTransaction, shard: int, items) -> ReadOnlyTransaction:
    """The restriction of ``txn`` to one shard's items, as a pseudo
    transaction the single-channel oracle can check."""
    sub = ReadOnlyTransaction(
        txn_id=f"{txn.txn_id}#s{shard}", items=list(items)
    )
    for item in items:
        result = txn.reads[item]
        sub.reads[item] = result
        sub.cycles_touched.add(result.read_cycle)
        if sub.first_read_cycle is None:
            sub.first_read_cycle = result.read_cycle
    sub.status = TransactionStatus.COMMITTED
    sub.end_cycle = txn.end_cycle
    return sub


def sharded_violations(sim) -> List[Tuple[ReadOnlyTransaction, str]]:
    """Committed client transactions violating their mode's contract.

    ``sim`` is a :class:`~repro.shard.runtime.ShardedSimulation` after
    :meth:`run`.  Returns ``(transaction, description)`` pairs; empty
    means every committed transaction met its consistency contract.
    """
    partitioner = sim.partitioner
    sgt = sim.requirements.needs_sgt
    check_global = sim.consistency == "epoch" or not sgt

    histories: Dict[int, object] = {}
    base_graphs: Dict[int, object] = {}
    for shard in sim.shards:
        if shard.engine is not None and shard.engine.history is not None:
            histories[shard.index] = shard.engine.history
            base_graphs[shard.index] = (
                shard.engine.history.serialization_graph()
            )

    bad: List[Tuple[ReadOnlyTransaction, str]] = []
    for client in sim.clients:
        for txn in client.completed:
            if txn.status is not TransactionStatus.COMMITTED:
                continue
            by_shard: Dict[int, List[int]] = {}
            for item in txn.reads:
                by_shard.setdefault(partitioner.shard_of(item), []).append(item)
            for shard_index, items in sorted(by_shard.items()):
                sub = _sub_txn(txn, shard_index, sorted(items))
                if not check_transaction(
                    sub,
                    sim.database,
                    history=histories.get(shard_index),
                    base_graph=base_graphs.get(shard_index),
                ):
                    bad.append(
                        (txn, f"shard {shard_index} per-shard contract")
                    )
            if check_global and len(by_shard) > 1:
                if snapshot_cycle_of(txn, sim.database) is None:
                    bad.append((txn, "global snapshot"))
    return bad
