"""Item-space partitioners for the sharded broadcast server.

A partitioner is a pure function from item id to shard index, fixed for
the lifetime of a simulation.  Two are provided:

* :class:`HashPartitioner` -- a multiplicative hash of the item id.  The
  assignment of any single item depends only on ``(item, num_shards)``,
  so growing the item universe never moves existing items between shards
  (the property tests pin this down).  Hot items scatter uniformly, which
  balances update load but makes almost every multi-item query
  cross-shard.
* :class:`RangePartitioner` -- contiguous blocks of the item space.  A
  query over a narrow item range stays on one shard (good locality), but
  a Zipf-skewed update workload concentrates on the shard holding the hot
  range (the skew property test demonstrates the imbalance).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List

#: Knuth's multiplicative constant (golden ratio of 2^64), the same mix
#: used to derive per-shard fault seeds in :mod:`repro.shard.runtime`.
_MIX = 0x9E3779B97F4A7C15
_MASK = (1 << 64) - 1


class Partitioner(ABC):
    """Maps every item of a fixed universe onto one of ``num_shards``."""

    #: Registry key and CLI spelling (``--partitioner hash``).
    name: str = ""

    def __init__(self, num_shards: int, universe: int) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if universe < num_shards:
            raise ValueError(
                f"cannot split {universe} items over {num_shards} shards"
            )
        self.num_shards = num_shards
        self.universe = universe

    @abstractmethod
    def shard_of(self, item: int) -> int:
        """Shard index in ``[0, num_shards)`` owning ``item``."""

    def items_of(self, shard: int) -> List[int]:
        """Sorted item ids of ``shard`` (the shard's broadcast schedule)."""
        return [
            item
            for item in range(1, self.universe + 1)
            if self.shard_of(item) == shard
        ]

    def shards_of(self, items) -> frozenset:
        """Set of shard indices touched by ``items``."""
        return frozenset(self.shard_of(item) for item in items)


class HashPartitioner(Partitioner):
    """Multiplicative-hash assignment; stable under universe growth."""

    name = "hash"

    def shard_of(self, item: int) -> int:
        return (((item * _MIX) & _MASK) >> 32) % self.num_shards


class RangePartitioner(Partitioner):
    """Contiguous equal ranges; shard boundaries move when the universe
    grows (it is *not* growth-stable, unlike the hash partitioner)."""

    name = "range"

    def shard_of(self, item: int) -> int:
        if not 1 <= item <= self.universe:
            # Out-of-universe items hash onto the last shard deterministically
            # rather than raising: the verify layer probes freely.
            return self.num_shards - 1
        return min(
            self.num_shards - 1, (item - 1) * self.num_shards // self.universe
        )


#: CLI name -> class, for ``repro run --partitioner``.
PARTITIONERS: Dict[str, type] = {
    HashPartitioner.name: HashPartitioner,
    RangePartitioner.name: RangePartitioner,
}


def make_partitioner(name: str, num_shards: int, universe: int) -> Partitioner:
    """Instantiate a registered partitioner by CLI name."""
    try:
        cls = PARTITIONERS[name]
    except KeyError:
        known = ", ".join(sorted(PARTITIONERS))
        raise ValueError(f"Unknown partitioner {name!r}; known: {known}")
    return cls(num_shards, universe)
