"""Sharded multi-channel broadcast push (see DESIGN §13).

The item space is partitioned over K broadcast channels, each a full
server substrate (cycle, control information, version store, retention
tuning); clients tune to exactly the shards their readset can touch.
Cross-shard read consistency comes in two modes -- shard-local
guarantees with a global cycle-epoch stamp, or the epoch-aligned
currency discipline -- and :mod:`repro.shard.oracle` differentially
verifies both, plus bit-identity of K=1 with the single-channel server.
"""

from repro.shard.client import CrossShardQueryShaper, ShardedClient
from repro.shard.partition import (
    PARTITIONERS,
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    make_partitioner,
)
from repro.shard.runtime import (
    ShardedBroadcastBackend,
    ShardedSimulation,
    ShardSchedule,
    ShardState,
    apportion,
)
from repro.shard.scheme import CONSISTENCY_MODES, MultiShardScheme
from repro.shard.verify import sharded_violations

__all__ = [
    "CONSISTENCY_MODES",
    "CrossShardQueryShaper",
    "HashPartitioner",
    "MultiShardScheme",
    "PARTITIONERS",
    "Partitioner",
    "RangePartitioner",
    "ShardSchedule",
    "ShardState",
    "ShardedBroadcastBackend",
    "ShardedClient",
    "ShardedSimulation",
    "apportion",
    "make_partitioner",
    "sharded_violations",
]
