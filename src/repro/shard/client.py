"""The multi-tuner client: one tuner per shard its readset can touch.

:class:`ShardedClient` extends the single-channel
:class:`~repro.client.machine.BroadcastClient` with a channel map.  The
*primary* shard (lowest subscribed index) plays the role of the base
class's only channel -- query pacing, warmup accounting and commit-cycle
stamps all key off it -- while :class:`_ShardListener` adapters forward
the other shards' cycle starts and signal losses into per-shard
listening state.

With exactly one subscribed shard every override delegates straight to
the base class, so a K=1 sharded simulation is *bit-identical* to the
single-channel simulation (the oracle in :mod:`repro.shard.oracle`
enforces this).
"""

from __future__ import annotations

import random
from typing import Dict, Generator, Optional

from repro.broadcast.program import BroadcastProgram
from repro.client.machine import BroadcastClient
from repro.client.query import Query, QueryGenerator
from repro.core.transaction import TransactionStatus
from repro.obs.trace import EV_CACHE_FLUSH, EV_CLIENT_RESYNC, EV_CONTROL_DECODE
from repro.shard.partition import Partitioner
from repro.stats import names as metric_names


class _ShardListener:
    """Subscribes a non-primary shard channel on a client's behalf."""

    __slots__ = ("_client", "_shard")

    def __init__(self, client: "ShardedClient", shard: int) -> None:
        self._client = client
        self._shard = shard

    def on_cycle_start(self, program: BroadcastProgram) -> None:
        self._client._shard_cycle_start(self._shard, program)

    def on_signal_lost(self, cycle: int) -> None:
        self._client._miss_shard_cycle(self._shard, cycle, fault=True)


class CrossShardQueryShaper:
    """Wraps a :class:`QueryGenerator` to hit a target cross-shard rate.

    Draws pass through untouched unless the query's natural shard spread
    disagrees with an independent Bernoulli draw at ``fraction``: then
    one item is remapped (cross) or out-of-home items are pulled back
    into the first item's shard (confine), always within the client's
    read range.  The shaper has its own RNG so enabling it perturbs
    neither the query stream's identity (query ids, sizes) nor any other
    seeded stream.
    """

    def __init__(
        self,
        inner: QueryGenerator,
        partitioner: Partitioner,
        fraction: float,
        rng: random.Random,
        read_range: int,
    ) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"cross-shard fraction must be in [0,1], got {fraction}")
        self._inner = inner
        self._partitioner = partitioner
        self._fraction = fraction
        self._rng = rng
        self._pools: Dict[int, list] = {}
        for item in range(1, read_range + 1):
            self._pools.setdefault(partitioner.shard_of(item), []).append(item)

    def think_time(self) -> float:
        return self._inner.think_time()

    def _pick(self, pool, exclude) -> Optional[int]:
        for _ in range(8):
            item = pool[self._rng.randrange(len(pool))]
            if item not in exclude:
                return item
        for item in pool:
            if item not in exclude:
                return item
        return None

    def next_query(self) -> Query:
        query = self._inner.next_query()
        items = list(query.items)
        if len(self._pools) < 2 or len(items) < 2:
            return query
        want_cross = self._rng.random() < self._fraction
        shards = {self._partitioner.shard_of(item) for item in items}
        if want_cross == (len(shards) > 1):
            return query
        home = self._partitioner.shard_of(items[0])
        if want_cross:
            others = [s for s in sorted(self._pools) if s != home]
            target = others[self._rng.randrange(len(others))]
            replacement = self._pick(self._pools[target], set(items))
            if replacement is None:
                return query
            items[-1] = replacement
        else:
            pool = self._pools[home]
            if len(pool) < len(items):
                return query
            for index, item in enumerate(items):
                if self._partitioner.shard_of(item) != home:
                    replacement = self._pick(pool, set(items))
                    if replacement is None:
                        return query
                    items[index] = replacement
        if self._inner.params.sort_reads:
            items.sort()
        return Query(query_id=query.query_id, items=tuple(items))


class ShardedClient(BroadcastClient):
    """A broadcast client tuned to every shard its readset can touch."""

    def __init__(
        self,
        *,
        env,
        channels: Dict[int, object],
        primary: int,
        partitioner: Partitioner,
        scheme,
        params,
        metrics=None,
        rng=None,
        disconnect=None,
        client_id: int = 0,
        warmup_cycles: int = 0,
        tracer=None,
        cross_fraction: Optional[float] = None,
        shaper_rng: Optional[random.Random] = None,
    ) -> None:
        self._shard_channels = dict(channels)
        self._partitioner = partitioner
        self._primary = primary
        self._single = len(channels) == 1
        self._listening_s = {shard: True for shard in channels}
        self._last_heard_s = {shard: 0 for shard in channels}
        #: Per-cycle memo of the disconnection model's verdict: the model
        #: is asked once per epoch, not once per shard, so storm metrics
        #: and state transitions are not multiplied by K.
        self._disc_cache = (0, True)
        super().__init__(
            env=env,
            channel=channels[primary],
            scheme=scheme,
            params=params,
            metrics=metrics,
            rng=rng,
            disconnect=disconnect,
            client_id=client_id,
            warmup_cycles=warmup_cycles,
            tracer=tracer,
            resilience=None,
        )
        for shard, channel in sorted(self._shard_channels.items()):
            if shard != primary:
                channel.subscribe(_ShardListener(self, shard))
        if cross_fraction is not None and not self._single:
            self.generator = CrossShardQueryShaper(
                self.generator,
                partitioner,
                cross_fraction,
                shaper_rng if shaper_rng is not None else random.Random(),
                read_range=params.read_range,
            )

    # -- channel listener ---------------------------------------------------

    def on_cycle_start(self, program: BroadcastProgram) -> None:
        if self._single:
            super().on_cycle_start(program)
            return
        self._shard_cycle_start(self._primary, program)

    def on_signal_lost(self, cycle: int) -> None:
        if self._single:
            super().on_signal_lost(cycle)
            return
        self._miss_shard_cycle(self._primary, cycle, fault=True)

    def _disconnect_allows(self, cycle: int) -> bool:
        if self._disc_cache[0] != cycle:
            self._disc_cache = (cycle, self.disconnect.is_listening(cycle))
        return self._disc_cache[1]

    def _shard_cycle_start(self, shard: int, program: BroadcastProgram) -> None:
        cycle = program.cycle
        if not self._disconnect_allows(cycle):
            self._miss_shard_cycle(shard, cycle, fault=False)
            return
        if not self._listening_s[shard]:
            self._resync_shard(shard, program)
        self._listening_s[shard] = True
        if self._fault_desynced and all(self._listening_s.values()):
            # The whole tuner bank is coherent again: the fault recovery
            # completes (mirrors the single-channel accounting).
            self.metrics.count(metric_names.FAULT_RECOVERIES)
            self._fault_desynced = False
        self._last_heard_s[shard] = cycle
        if shard == self._primary:
            self.last_heard_cycle = cycle
        self.listening = all(self._listening_s.values())
        if self._trace_r is not None:
            control = program.control
            self._trace_r.emit(
                EV_CONTROL_DECODE,
                client=self.client_id,
                cycle=cycle,
                shard=shard,
                invalidated=len(control.invalidation.updated_items),
                has_graph_diff=control.graph_diff is not None,
            )
        if self.cache is not None:
            self.cache.handle_cycle_start(program, self._shard_channels[shard])
        self.scheme.on_shard_cycle_start(shard, program)

    def _miss_shard_cycle(self, shard: int, cycle: int, fault: bool) -> None:
        if self._single:
            self._miss_cycle(cycle, fault)
            return
        if self._listening_s[shard] and not fault:
            self.metrics.count(metric_names.CLIENT_DISCONNECTIONS)
        self._listening_s[shard] = False
        self.listening = False
        self.missed_cycles += 1
        if fault:
            self._fault_desynced = True
        txn = self._current_txn
        was_active = txn is not None and txn.status is TransactionStatus.ACTIVE
        self.scheme.on_shard_missed_cycle(shard, cycle)
        if (
            fault
            and was_active
            and txn is not None
            and txn.status is TransactionStatus.ABORTED
        ):
            self.metrics.count(metric_names.FAULT_FORCED_ABORTS)
            txn.cause_chain.append(
                {"event": "fault_forced", "cycle": cycle, "shard": shard}
            )

    def _resync_shard(self, shard: int, program: BroadcastProgram) -> None:
        """Per-shard variant of the base resynchronization: replay this
        shard's retransmitted reports if they cover the gap, else drop
        the whole cache -- entries from *other* shards are still valid,
        but the cache is not shard-aware, so the conservative flush
        mirrors the single-channel safety argument."""
        if self.cache is None:
            return
        self.metrics.count(metric_names.CLIENT_RESYNCS)
        if self._trace_q is not None:
            self._trace_q.emit(
                EV_CLIENT_RESYNC,
                client=self.client_id,
                cycle=program.cycle,
                shard=shard,
                last_heard=self._last_heard_s[shard],
            )
        control = program.control
        if control.missed_window_ok(self._last_heard_s[shard]):
            for missed in range(self._last_heard_s[shard] + 1, program.cycle):
                report = control.report_covering(missed)
                if report is not None:
                    self.cache.apply_missed_report(report)
        else:
            self.cache.clear()
            self.metrics.count(metric_names.CLIENT_CACHE_DROPS)
            if self._trace_q is not None:
                self._trace_q.emit(
                    EV_CACHE_FLUSH,
                    client=self.client_id,
                    cycle=program.cycle,
                    reason="resync_window_exceeded",
                )

    # -- read blocking ------------------------------------------------------

    def _await_readable(self, item: int) -> Generator:
        if self._single:
            yield from super()._await_readable(item)
            return
        shard = self._partitioner.shard_of(item)
        channel = self._shard_channels.get(shard)
        if channel is None:
            yield from super()._await_readable(item)
            return
        while not self._listening_s[shard]:
            yield channel.cycle_started()
