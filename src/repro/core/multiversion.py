"""The multiversion broadcast method (Section 3.2, Theorem 2).

The server keeps the last ``S`` versions of every item on the air.  A
query ``R`` whose first read happened at cycle ``c0`` subsequently reads,
for every item, the largest version not exceeding ``c0`` -- i.e. exactly
the state ``DS^{c0}``.  ``R`` is serialized *before* every transaction
that committed after ``c0``: maximal concurrency (no aborts while the
span fits the retention window) at the price of the oldest currency of
all the schemes.

Two physical organizations (Figure 2) are supported by the program
builder; the *overflow* one keeps item positions fixed but makes queries
that need old versions wait for the end of the bcast -- the latency
penalty Figure 8 measures.
"""

from __future__ import annotations

from typing import Dict, Generator

from repro.broadcast.program import BroadcastProgram, ItemRecord
from repro.core.base import ReadAborted, Scheme
from repro.core.control import BroadcastRequirements
from repro.core.transaction import (
    AbortReason,
    ReadOnlyTransaction,
    ReadResult,
)


class MultiversionBroadcast(Scheme):
    """Read old versions off the air; serialize at the first-read cycle."""

    name = "multiversion"

    def __init__(
        self,
        use_cache: bool = False,
        organization: str = "overflow",
    ) -> None:
        super().__init__(use_cache=use_cache)
        if organization not in ("overflow", "clustered"):
            raise ValueError(f"Unknown multiversion organization {organization!r}")
        self.organization = organization

    def requirements(self) -> BroadcastRequirements:
        return BroadcastRequirements(
            needs_old_versions=True,
            organization=self.organization,
            needs_versions_on_items=True,
        )

    @property
    def label(self) -> str:
        suffix = "+cache" if self.use_cache else ""
        return f"{self.name}/{self.organization}{suffix}"

    # -- protocol --------------------------------------------------------------
    #
    # No on_cycle_start logic at all: invalidation reports never abort a
    # multiversion query, and a client may even sleep through cycles
    # (Table 1's disconnection-tolerance row) -- it only loses if the
    # version it needs ages off the air meanwhile.

    def on_missed_cycle(self, cycle: int) -> None:
        """Tolerated: reads are validated against explicit version numbers,
        so missing a report loses nothing."""

    def read(
        self, txn: ReadOnlyTransaction, item: int
    ) -> Generator[object, object, ReadResult]:
        ctx = self.ctx
        if txn.first_read_cycle is None:
            # First read: the most up-to-date value, fixing c0.
            record, cycle, from_cache = yield from self._read_current(item)
            return self._result_from_record(record, cycle, from_cache)

        c0 = txn.first_read_cycle
        if self.use_cache and ctx.cache is not None:
            entry = ctx.cache.get_covering(item, c0, ctx.env.now)
            if entry is not None:
                record = ItemRecord(
                    item=item,
                    value=entry.value,
                    version=entry.version,
                    writer=entry.writer,
                )
                return self._result_from_record(
                    record, ctx.current_cycle, from_cache=True
                )

        record, found, valid_to = yield from ctx.channel.await_old_version(item, c0)
        if not found:
            raise ReadAborted(
                AbortReason.VERSION_GONE,
                f"{txn.txn_id}: version of item {item} at cycle {c0} is no "
                "longer on the air (span exceeded the retention window)",
                cause={
                    "event": "version_overwritten",
                    "item": item,
                    "needed_cycle": c0,
                },
            )
        if self.use_cache and ctx.cache is not None:
            if valid_to is None:
                ctx.cache.insert_current(record, ctx.env.now)
            else:
                ctx.cache.insert_old(record, valid_to, ctx.env.now)
        return self._result_from_record(
            record, ctx.channel.current_cycle, from_cache=False
        )

    def state_cycle(self, txn: ReadOnlyTransaction):
        # Theorem 2: the state at the beginning of the first-read cycle.
        return txn.first_read_cycle
