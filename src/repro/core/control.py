"""Control information broadcast alongside the data.

Every scheme's correctness rests on some slice of this structure:

* the plain :class:`InvalidationReport` (items updated during the previous
  cycle) drives the invalidation-only family (§3.1, §4.1);
* the *augmented* report adds the first writer of each updated item, and
  the :class:`~repro.graph.sgraph.GraphDiff` adds the new conflict edges
  -- together the SGT method's inputs (§3.3);
* the bucket-level report is the cache-consistency report of §4 and the
  granularity extension of §7;
* the ``window`` retransmits the reports of the last ``w`` cycles so that
  briefly disconnected clients can resynchronize (§5.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.graph.sgraph import GraphDiff, TxnId


@dataclass(frozen=True)
class InvalidationReport:
    """Items updated during the cycle preceding ``cycle``.

    ``first_writers`` is only populated when the server runs the SGT
    method (the augmented report); ``updated_buckets`` is derived from
    ``updated_items`` by the program builder for cache-level invalidation
    and for the bucket-granularity query processing extension.
    """

    cycle: int
    updated_items: FrozenSet[int] = frozenset()
    first_writers: Mapping[int, TxnId] = field(default_factory=dict)
    updated_buckets: FrozenSet[int] = frozenset()

    def invalidates(self, items: FrozenSet[int]) -> FrozenSet[int]:
        """The subset of ``items`` that this report invalidates."""
        return items & self.updated_items

    def invalidates_buckets(self, buckets: FrozenSet[int]) -> FrozenSet[int]:
        return buckets & self.updated_buckets


def report_from_updates(
    cycle: int,
    updated_items: FrozenSet[int],
    first_writers: Optional[Mapping[int, TxnId]] = None,
    items_per_bucket: int = 1,
    buckets_of: Optional[Callable[[Iterable[int]], FrozenSet[int]]] = None,
) -> InvalidationReport:
    """Assemble one cycle's invalidation report from the commit outcome.

    ``buckets_of`` lets a columnar item-state store project the updated
    items onto data buckets off its precomputed bucket column; without
    it the flat-layout page arithmetic applies.  ``first_writers`` is
    only carried when the server runs the SGT method (augmented report).
    """
    if buckets_of is not None:
        buckets = buckets_of(updated_items)
    else:
        buckets = frozenset(
            (item - 1) // items_per_bucket for item in updated_items
        )
    return InvalidationReport(
        cycle=cycle,
        updated_items=updated_items,
        first_writers=dict(first_writers) if first_writers else {},
        updated_buckets=buckets,
    )


@dataclass(frozen=True)
class ControlInfo:
    """The complete control segment at the head of one broadcast cycle."""

    cycle: int
    invalidation: InvalidationReport
    #: Serialization-graph difference (SGT method only).
    graph_diff: Optional[GraphDiff] = None
    #: Reports of the last ``w`` cycles, oldest first (disconnection
    #: resynchronization extension); excludes the current report.
    window: Tuple[InvalidationReport, ...] = ()
    #: Wire size of this control segment in units (for sizing/latency).
    size_units: int = 0

    def report_covering(self, cycle: int) -> Optional[InvalidationReport]:
        """Find the (current or windowed) report broadcast at ``cycle``."""
        if cycle == self.invalidation.cycle:
            return self.invalidation
        for report in self.window:
            if report.cycle == cycle:
                return report
        return None

    def missed_window_ok(self, last_heard: int) -> bool:
        """Can a client that last listened at ``last_heard`` catch up?

        True when every cycle in ``(last_heard, cycle]`` is covered by the
        current report plus the window.
        """
        covered = {self.invalidation.cycle}
        covered.update(report.cycle for report in self.window)
        return all(c in covered for c in range(last_heard + 1, self.cycle + 1))


@dataclass(frozen=True)
class BroadcastRequirements:
    """What a scheme needs the server to put on the air.

    The client hands this to the server-side program builder when the
    simulation is wired up; it is the contract between a processing scheme
    and the broadcast organization.
    """

    #: Retain and broadcast old versions (multiversion broadcast, §3.2).
    needs_old_versions: bool = False
    #: Physical organization of old versions: "clustered" or "overflow"
    #: (only meaningful when ``needs_old_versions``).
    organization: str = "overflow"
    #: Tag every item with its last writer and broadcast the augmented
    #: report plus graph diff (SGT, §3.3).
    needs_sgt: bool = False
    #: Broadcast version numbers with items (multiversion caching, §4.2,
    #: and the SGT disconnection enhancement of §5.2.2).
    needs_versions_on_items: bool = False
    #: Retransmit the invalidation reports of the last ``w`` cycles.
    report_window: int = 0

    def merge(self, other: "BroadcastRequirements") -> "BroadcastRequirements":
        """Combine the needs of several co-existing client schemes."""
        if (
            self.needs_old_versions
            and other.needs_old_versions
            and self.organization != other.organization
        ):
            raise ValueError(
                "Conflicting multiversion organizations: "
                f"{self.organization} vs {other.organization}"
            )
        organization = (
            self.organization if self.needs_old_versions else other.organization
        )
        return BroadcastRequirements(
            needs_old_versions=self.needs_old_versions or other.needs_old_versions,
            organization=organization,
            needs_sgt=self.needs_sgt or other.needs_sgt,
            needs_versions_on_items=(
                self.needs_versions_on_items or other.needs_versions_on_items
            ),
            report_window=max(self.report_window, other.report_window),
        )


@dataclass(frozen=True)
class ReportSchedule:
    """How often control information goes on the air (§7, first extension).

    ``per_cycle = 1`` is the paper's base scheme: one report at the head of
    each bcast.  Larger values split the cycle into ``per_cycle`` intervals
    of length ``h = T / per_cycle`` with a report at the head of each; the
    mid-cycle reports cover updates committed during the interval, letting
    clients abort doomed queries earlier.  ``window`` asks the server to
    retransmit the last ``window`` cycles' reports for resynchronization.
    """

    per_cycle: int = 1
    window: int = 0

    def __post_init__(self) -> None:
        if self.per_cycle < 1:
            raise ValueError("per_cycle must be at least 1")
        if self.window < 0:
            raise ValueError("window must be non-negative")
