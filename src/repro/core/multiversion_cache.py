"""Multiversion caching (Section 4.2, Theorem 5).

Old versions live in the *client cache* instead of on the air: when a
cached item is updated, its entry is demoted into a dedicated old-version
partition rather than replaced.  A query ``R`` runs like invalidation-only
until the first report hits it at cycle ``c_u``; from then on every
remaining read must produce the value that was current at ``c_u - 1`` --
from the cache if a covering version is held, or straight off the
broadcast when the item has not been updated since (version numbers are
broadcast with items in this scheme, so the client can tell).

Compared with multiversion *broadcast*, the retention horizon ``S`` is a
per-client property (its cache partition) rather than a server property,
and no bandwidth is spent on old versions -- Table 1's trade-off row.
"""

from __future__ import annotations

from typing import Dict, Generator

from repro.broadcast.program import BroadcastProgram, ItemRecord
from repro.core.base import ReadAborted, Scheme
from repro.core.control import BroadcastRequirements
from repro.core.transaction import (
    AbortReason,
    ReadOnlyTransaction,
    ReadResult,
    TransactionStatus,
)


def _mark_cause(report, hit, interim: bool = False):
    """Cause-chain entry for the first invalidation that marks a query."""
    cause = {
        "event": "invalidation",
        "report_cycle": report.cycle,
        "items": sorted(hit),
        "terminal": False,
    }
    if interim:
        cause["interim"] = True
    return cause


class MultiversionCaching(Scheme):
    """Invalidation reports + versioned values kept in a partitioned cache."""

    name = "multiversion-caching"

    def __init__(self) -> None:
        super().__init__(use_cache=True)
        self._active: Dict[str, ReadOnlyTransaction] = {}

    def requirements(self) -> BroadcastRequirements:
        # Version numbers ride with the items (the paper: "the increase in
        # the broadcast size is that of the invalidation-only method plus
        # the additional space needed to broadcast version numbers").
        return BroadcastRequirements(needs_versions_on_items=True)

    @property
    def label(self) -> str:
        return self.name

    def attach(self, ctx) -> None:
        super().attach(ctx)
        if ctx.cache is None or not ctx.cache.multiversion:
            raise RuntimeError(
                f"{self.name} requires a cache with an old-version partition"
            )

    # -- protocol ---------------------------------------------------------------

    def on_cycle_start(self, program: BroadcastProgram) -> None:
        report = program.control.invalidation
        for txn in self._active.values():
            if txn.status is not TransactionStatus.ACTIVE:
                continue
            hit = report.invalidates(txn.readset)
            if hit:
                txn.mark(deadline=report.cycle, cause=_mark_cause(report, hit))

    def on_interim_report(self, report) -> None:
        """Sub-cycle reports (§7): mark at the interval, not the cycle.

        The broadcast fallback of :meth:`_read_marked` already validates
        versions explicitly, so earlier marking is purely beneficial.
        """
        for txn in self._active.values():
            if txn.status is not TransactionStatus.ACTIVE:
                continue
            hit = report.invalidates(txn.readset)
            if hit:
                txn.mark(
                    deadline=report.cycle,
                    cause=_mark_cause(report, hit, interim=True),
                )

    def on_missed_cycle(self, cycle: int) -> None:
        # Partially tolerated in principle (versions are broadcast), but a
        # missed report can hide the *first* invalidation, which fixes the
        # serialization point; be safe and abort, as the base paper does
        # for the invalidation-driven schemes.
        for txn in list(self._active.values()):
            if txn.is_active:
                txn.abort(
                    AbortReason.DISCONNECTED,
                    self.ctx.env.now,
                    cycle,
                    cause={"event": "missed_cycle", "missed_cycle": cycle},
                )

    def begin(self, txn: ReadOnlyTransaction) -> None:
        self._active[txn.txn_id] = txn

    def read(
        self, txn: ReadOnlyTransaction, item: int
    ) -> Generator[object, object, ReadResult]:
        while True:
            if txn.is_marked:
                result = yield from self._read_marked(txn, item)
                return result
            record, cycle, from_cache = yield from self._read_current(item)
            if txn.is_marked and not from_cache:
                # Marked while waiting on the channel; versions are on the
                # air here, so the delivered value may still qualify.
                assert txn.deadline is not None
                if record.version <= txn.deadline - 1:
                    return self._result_from_record(record, cycle, from_cache)
                continue  # retry through the marked path
            return self._result_from_record(record, cycle, from_cache)

    def _read_marked(
        self, txn: ReadOnlyTransaction, item: int
    ) -> Generator[object, object, ReadResult]:
        ctx = self.ctx
        assert txn.deadline is not None
        target = txn.deadline - 1

        entry = ctx.cache.get_covering(item, target, ctx.env.now)
        if entry is not None:
            record = ItemRecord(
                item=item,
                value=entry.value,
                version=entry.version,
                writer=entry.writer,
            )
            return self._result_from_record(record, ctx.current_cycle, True)

        # Not cached: the broadcast current value qualifies iff the item
        # has not been updated since the deadline (checkable because the
        # version number is broadcast with the item).
        record, cycle = yield from ctx.channel.await_item(item)
        if record.version <= target:
            ctx.cache.insert_current(record, ctx.env.now)
            return self._result_from_record(record, cycle, False)
        raise ReadAborted(
            AbortReason.STALE_CACHE,
            f"{txn.txn_id}: no version of item {item} current at cycle "
            f"{target} is cached, and the item has been updated since",
            cause={
                "event": "stale_cache",
                "item": item,
                "target_cycle": target,
            },
        )

    def state_cycle(self, txn: ReadOnlyTransaction):
        # Theorem 5: DS^{c_u - 1} once invalidated, else the current state.
        if txn.deadline is not None:
            return txn.deadline - 1
        return txn.end_cycle

    def end(self, txn: ReadOnlyTransaction) -> None:
        self._active.pop(txn.txn_id, None)
