"""Serialization-graph testing (Section 3.3, Theorem 3).

The client maintains a local copy of the server's serialization graph,
extended with its own active read-only transactions:

* at each cycle start it integrates the broadcast graph *diff* and, for
  every active query ``R`` invalidated by the (augmented) report, adds a
  precedence edge ``R -> T_f`` to the *first* transaction that overwrote
  the item during the previous cycle (Claim 2: one edge suffices);
* every read adds a dependency edge ``T_l -> R`` from the *last* writer
  tagged on the broadcast item (Claim 3) and is accepted only if the edge
  closes no cycle.

The scheme accepts strictly more queries than invalidation-only: a query
whose read values happen to be mutually consistent commits even though
items it read were updated.  The space bound of the paper's
"Space Efficiency" paragraph is honoured by pruning every server subgraph
older than the earliest first-invalidation cycle among active queries
(Lemma 1 makes those unreachable from any future cycle through ``R``).

The ``enhanced_disconnections`` flag implements the §5.2.2 enhancement:
version numbers are broadcast with items, and after missing cycles a
query may continue as long as it only reads values created before the
gap; without the flag a missed cycle dooms every active query.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from repro.broadcast.program import BroadcastProgram
from repro.core.base import ReadAborted, Scheme
from repro.core.control import BroadcastRequirements
from repro.core.transaction import (
    AbortReason,
    ReadOnlyTransaction,
    ReadResult,
)
from repro.graph.sgraph import SerializationGraph


class SerializationGraphTesting(Scheme):
    """Accept a read iff it keeps the local serialization graph acyclic."""

    name = "sgt"

    def __init__(
        self,
        use_cache: bool = False,
        enhanced_disconnections: bool = False,
    ) -> None:
        super().__init__(use_cache=use_cache)
        self.enhanced_disconnections = enhanced_disconnections
        self.graph = SerializationGraph()
        self._active: Dict[str, ReadOnlyTransaction] = {}
        #: First-invalidation cycle per active query (the paper's ``o``).
        self._first_invalidation: Dict[str, int] = {}
        #: Enhanced mode: per-query upper bound on acceptable versions,
        #: frozen at the last cycle heard before a gap.
        self._version_bound: Dict[str, int] = {}
        self._last_heard: Optional[int] = None

    def requirements(self) -> BroadcastRequirements:
        return BroadcastRequirements(
            needs_sgt=True,
            needs_versions_on_items=self.enhanced_disconnections,
        )

    @property
    def label(self) -> str:
        suffix = "+cache" if self.use_cache else ""
        enhanced = "/enhanced" if self.enhanced_disconnections else ""
        return f"{self.name}{enhanced}{suffix}"

    # -- cycle starts -----------------------------------------------------------

    def on_cycle_start(self, program: BroadcastProgram) -> None:
        control = program.control
        if control.graph_diff is not None:
            self.graph.apply_diff(control.graph_diff)

        report = control.invalidation
        for txn in self._active.values():
            if not txn.is_active:
                continue
            edged = []
            for item in report.invalidates(txn.readset):
                first_writer = report.first_writers.get(item)
                if first_writer is None:
                    continue
                # Precedence edge R -> T_f; by Lemma 1 (part ii of the
                # proof) adding it can never itself close a cycle.
                self.graph.add_node(first_writer, cycle=first_writer.cycle)
                self.graph.add_node(txn.txn_id)
                self.graph.add_edge(txn.txn_id, first_writer)
                self._first_invalidation.setdefault(txn.txn_id, report.cycle)
                edged.append(item)
            if edged:
                # Not an abort -- but if a later read closes a cycle, the
                # chain shows which invalidation pulled the query into it.
                txn.cause_chain.append(
                    {
                        "event": "invalidation",
                        "report_cycle": report.cycle,
                        "items": sorted(edged),
                        "terminal": False,
                    }
                )

        self._prune(program.cycle)
        self._last_heard = program.cycle

    def _prune(self, current_cycle: int) -> None:
        """Space efficiency: only subgraphs since the earliest ``o`` of an
        active query can participate in a future cycle through a query."""
        if self._first_invalidation:
            horizon = min(self._first_invalidation.values()) - 1
        else:
            horizon = current_cycle - 1
        self.graph.prune_before(horizon)

    def on_missed_cycle(self, cycle: int) -> None:
        if not self.enhanced_disconnections:
            # The graph can no longer be kept consistent: every active
            # query dies and the stale graph is dropped; future diffs
            # rebuild what future queries can possibly need.
            for txn in list(self._active.values()):
                if txn.is_active:
                    txn.abort(
                        AbortReason.DISCONNECTED,
                        self.ctx.env.now,
                        cycle,
                        cause={"event": "missed_cycle", "missed_cycle": cycle},
                    )
                    self._forget(txn)
            self.graph = SerializationGraph()
            return
        # Enhanced mode: freeze each spanning query's acceptable-version
        # bound at the last cycle it heard completely.
        if self._last_heard is not None:
            for txn in self._active.values():
                if txn.is_active:
                    bound = self._version_bound.get(txn.txn_id, self._last_heard)
                    self._version_bound[txn.txn_id] = min(bound, self._last_heard)

    # -- checkpoint / recovery (see repro.resilience) ----------------------------

    def export_state(self):
        """Snapshot the serialization graph and its anchor cycle."""
        return {"graph": self.graph.copy(), "last_heard": self._last_heard}

    def restore_state(self, state, cycles_missed: int) -> None:
        """Adopt a checkpointed graph *only* across a gap-free restart.

        The broadcast retransmission window carries invalidation reports
        but no graph diffs, so a graph missing the diffs of even one
        unheard cycle lacks edges -- and a missing edge can wrongly
        *accept* a cyclic read.  After any gap the safe move is the same
        as :meth:`on_missed_cycle`: start from an empty graph and let
        future diffs rebuild what future queries can reach.
        """
        if cycles_missed > 0:
            return
        self.graph = state["graph"].copy()
        self._last_heard = state["last_heard"]

    def reset_state(self) -> None:
        self.graph = SerializationGraph()
        self._last_heard = None

    # -- transaction lifecycle ------------------------------------------------------

    def begin(self, txn: ReadOnlyTransaction) -> None:
        self._active[txn.txn_id] = txn
        self.graph.add_node(txn.txn_id)

    def read(
        self, txn: ReadOnlyTransaction, item: int
    ) -> Generator[object, object, ReadResult]:
        record, cycle, from_cache = yield from self._read_current(item)

        bound = self._version_bound.get(txn.txn_id)
        if bound is not None and record.version > bound:
            raise ReadAborted(
                AbortReason.DISCONNECTED,
                f"{txn.txn_id}: item {item} was written during or after a "
                f"missed cycle (version {record.version} > bound {bound})",
                cause={
                    "event": "version_bound",
                    "item": item,
                    "version": record.version,
                    "bound": bound,
                },
            )

        writer = record.writer
        if writer is not None:
            # Dependency edge T_l -> R (Claim 3: the last writer alone
            # preserves all cycles).  Reject the read if it closes one.
            self.graph.add_node(writer, cycle=writer.cycle)
            if not self.graph.add_edge_checked(writer, txn.txn_id):
                raise ReadAborted(
                    AbortReason.CYCLE_DETECTED,
                    f"{txn.txn_id}: reading item {item} from {writer} would "
                    "close a serialization cycle",
                    cause={
                        "event": "sgt_cycle",
                        "item": item,
                        "writer": str(writer),
                    },
                )
        return self._result_from_record(record, cycle, from_cache)

    def end(self, txn: ReadOnlyTransaction) -> None:
        self._forget(txn)

    def _forget(self, txn: ReadOnlyTransaction) -> None:
        self._active.pop(txn.txn_id, None)
        self._first_invalidation.pop(txn.txn_id, None)
        self._version_bound.pop(txn.txn_id, None)
        self.graph.remove_node(txn.txn_id)
