"""Client read-only transaction bookkeeping.

A :class:`ReadOnlyTransaction` records what the paper calls ``RS(R)`` --
the set of items read so far with the values obtained -- plus the state
every scheme's validation logic keys off: the first-read cycle ``c0``
(multiversion), the first-invalidation deadline ``c_u`` (versioned cache
and multiversion caching), and the set of cycles touched (the span).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Sequence, Set

from repro.graph.sgraph import TxnId


class TransactionStatus(enum.Enum):
    """Lifecycle of a client query."""

    ACTIVE = "active"
    #: Invalidated but still salvageable from old-enough versions
    #: (the paper's "marked abort" state of Section 4.1).
    MARKED = "marked"
    COMMITTED = "committed"
    ABORTED = "aborted"


class AbortReason(enum.Enum):
    """Why an attempt aborted (per-reason counters in the harness)."""

    INVALIDATED = "invalidated"
    VERSION_GONE = "version_gone"
    STALE_CACHE = "stale_cache"
    CYCLE_DETECTED = "cycle_detected"
    DISCONNECTED = "disconnected"
    #: A multi-shard query's touched shards diverged (sharded mode's
    #: epoch-aligned consistency discipline, see :mod:`repro.shard`).
    EPOCH_MISMATCH = "epoch_mismatch"


@dataclass
class ReadResult:
    """One completed read: the value and its provenance."""

    item: int
    value: int
    #: Broadcast cycle at whose beginning this value became current.
    version: int
    #: Broadcast cycle the read was satisfied in.
    read_cycle: int
    writer: Optional[TxnId] = None
    from_cache: bool = False


@dataclass
class ReadOnlyTransaction:
    """The client-local state of one query attempt."""

    txn_id: str
    items: Sequence[int]
    status: TransactionStatus = TransactionStatus.ACTIVE
    #: ``c0`` -- cycle of the first read (multiversion serialization point).
    first_read_cycle: Optional[int] = None
    #: ``c_u`` -- first cycle whose report invalidated an item we read; the
    #: transaction may only continue on values current at ``deadline - 1``.
    deadline: Optional[int] = None
    abort_reason: Optional[AbortReason] = None
    #: Machine-readable history of why the attempt went wrong: every
    #: ``mark()`` and ``abort()`` appends an entry, so an aborted attempt
    #: always carries the full cause chain (e.g. the invalidation that
    #: marked it, then the stale-cache read that killed it, then the
    #: terminal abort record).  The tracer ships this verbatim.
    cause_chain: List[Dict[str, Any]] = field(default_factory=list)
    reads: Dict[int, ReadResult] = field(default_factory=dict)
    cycles_touched: Set[int] = field(default_factory=set)
    start_time: float = 0.0
    end_time: Optional[float] = None
    start_cycle: int = 0
    end_cycle: Optional[int] = None

    # -- queries ----------------------------------------------------------

    @property
    def readset(self) -> FrozenSet[int]:
        """``RS(R)``: items read so far."""
        return frozenset(self.reads)

    @property
    def is_active(self) -> bool:
        return self.status in (TransactionStatus.ACTIVE, TransactionStatus.MARKED)

    @property
    def is_marked(self) -> bool:
        return self.status is TransactionStatus.MARKED

    @property
    def span(self) -> int:
        """Number of distinct cycles data was read from."""
        return len(self.cycles_touched)

    @property
    def remaining(self) -> List[int]:
        return [item for item in self.items if item not in self.reads]

    # -- transitions -------------------------------------------------------

    def record_read(self, result: ReadResult) -> None:
        if not self.is_active:
            raise RuntimeError(f"{self.txn_id}: read on a finished transaction")
        self.reads[result.item] = result
        self.cycles_touched.add(result.read_cycle)
        if self.first_read_cycle is None:
            self.first_read_cycle = result.read_cycle

    def mark(
        self, deadline: int, cause: Optional[Mapping[str, Any]] = None
    ) -> None:
        """Enter the "marked abort" state with invalidation cycle
        ``deadline`` (only the first invalidation counts)."""
        if self.status is TransactionStatus.ACTIVE:
            self.status = TransactionStatus.MARKED
            self.deadline = deadline
            if cause is not None:
                self.cause_chain.append(dict(cause))

    def commit(self, time: float, cycle: int) -> None:
        if not self.is_active:
            raise RuntimeError(f"{self.txn_id}: commit on a finished transaction")
        self.status = TransactionStatus.COMMITTED
        self.end_time = time
        self.end_cycle = cycle

    def abort(
        self,
        reason: AbortReason,
        time: float,
        cycle: int,
        cause: Optional[Mapping[str, Any]] = None,
    ) -> None:
        if self.status is TransactionStatus.COMMITTED:
            raise RuntimeError(f"{self.txn_id}: abort after commit")
        self.status = TransactionStatus.ABORTED
        self.abort_reason = reason
        self.end_time = time
        self.end_cycle = cycle
        terminal: Dict[str, Any] = dict(cause) if cause is not None else {}
        terminal.setdefault("event", "abort")
        terminal.setdefault("reason", reason.value)
        terminal.setdefault("cycle", cycle)
        self.cause_chain.append(terminal)

    @property
    def latency_cycles(self) -> int:
        """Cycles from first activity to completion, inclusive."""
        if self.end_cycle is None:
            raise RuntimeError(f"{self.txn_id} has not finished")
        return self.end_cycle - self.start_cycle + 1
