"""A deliberately unsafe baseline: read whatever flies by, never abort.

This is what a client does with *no* consistency support -- the problem
statement of Section 2.2.  Queries spanning several cycles mix values
from different database states, so their readsets generally correspond to
no consistent snapshot at all.  The baseline exists to make the paper's
motivation measurable: the test suite and the examples count how many of
its committed queries are actually non-serializable, a number every real
scheme drives to zero.
"""

from __future__ import annotations

from typing import Generator

from repro.core.base import Scheme
from repro.core.control import BroadcastRequirements
from repro.core.transaction import ReadOnlyTransaction, ReadResult


class NoConsistency(Scheme):
    """The null protocol: current values, no validation, no aborts."""

    name = "no-consistency"

    def requirements(self) -> BroadcastRequirements:
        return BroadcastRequirements()

    def on_missed_cycle(self, cycle: int) -> None:
        """Nothing to lose: the scheme never validates anything."""

    def read(
        self, txn: ReadOnlyTransaction, item: int
    ) -> Generator[object, object, ReadResult]:
        record, cycle, from_cache = yield from self._read_current(item)
        return self._result_from_record(record, cycle, from_cache)
