"""The scheme interface shared by every read-only processing protocol.

A scheme is purely client-local logic: it sees the control information at
the start of each broadcast cycle (:meth:`Scheme.on_cycle_start`), mediates
every read (:meth:`Scheme.read`, a simulation sub-process that may wait on
the channel or consult the cache), and validates the final commit
(:meth:`Scheme.finish`).  It *never* talks to the server -- that is the
paper's scalability property, and the test suite asserts it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Mapping, Optional, Tuple

from repro.broadcast.program import BroadcastProgram, ItemRecord
from repro.core.control import BroadcastRequirements
from repro.core.transaction import (
    AbortReason,
    ReadOnlyTransaction,
    ReadResult,
    TransactionStatus,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.client.machine import ClientRuntime


class ReadAborted(Exception):
    """Raised inside :meth:`Scheme.read` when the attempt must abort.

    ``cause`` is an optional machine-readable record of what doomed the
    read (item, cycle, writer, ...); the client machine appends it to
    the transaction's cause chain so traced aborts are attributable.
    """

    def __init__(
        self,
        reason: AbortReason,
        detail: str = "",
        cause: Optional[Mapping[str, Any]] = None,
    ) -> None:
        super().__init__(detail or reason.value)
        self.reason = reason
        self.cause = dict(cause) if cause is not None else None


class ReadContext:
    """Everything a scheme may touch, handed over by the client machine.

    Deliberately narrow: the channel (listen only), the local cache, the
    simulation clock.  No server handle exists, by construction.
    """

    def __init__(self, runtime: "ClientRuntime") -> None:
        self._runtime = runtime

    @property
    def env(self):
        return self._runtime.env

    @property
    def channel(self):
        return self._runtime.channel

    @property
    def cache(self):
        return self._runtime.cache

    @property
    def metrics(self):
        return self._runtime.metrics

    @property
    def current_cycle(self) -> int:
        return self._runtime.channel.current_cycle


class Scheme:
    """Base class for the read-only transaction processing protocols."""

    #: Human-readable scheme name used in result tables.
    name: str = "abstract"

    def __init__(self, use_cache: bool = True) -> None:
        self.use_cache = use_cache
        self._ctx: Optional[ReadContext] = None

    # -- wiring ------------------------------------------------------------

    def requirements(self) -> BroadcastRequirements:
        """What this scheme needs the server to broadcast."""
        return BroadcastRequirements()

    def attach(self, ctx: ReadContext) -> None:
        """Bind the scheme to one client's runtime context."""
        self._ctx = ctx

    @property
    def ctx(self) -> ReadContext:
        if self._ctx is None:
            raise RuntimeError(f"Scheme {self.name} is not attached to a client")
        return self._ctx

    @property
    def label(self) -> str:
        """Name qualified with the cache setting, for result tables."""
        return f"{self.name}+cache" if self.use_cache else self.name

    # -- protocol hooks -----------------------------------------------------

    def on_cycle_start(self, program: BroadcastProgram) -> None:
        """Process the control segment of a new broadcast cycle."""

    def on_interim_report(self, report) -> None:
        """A mid-cycle invalidation report arrived (§7's sub-cycle
        extension).

        ``report.cycle`` is the cycle at whose *start* the announced
        updates become visible (the current cycle + 1): the broadcast
        values of the current cycle are unaffected.  Default: ignore --
        the main report at the next cycle start covers everything.
        """

    def on_missed_cycle(self, cycle: int) -> None:
        """The client was disconnected during ``cycle`` and heard nothing.

        Default: no protocol state to lose.  Schemes that depend on hearing
        every report (invalidation-only, SGT) override this to doom their
        active transactions (Section 5.2.2, Table 1 last row).
        """

    def begin(self, txn: ReadOnlyTransaction) -> None:
        """A new query attempt starts."""

    def read(
        self, txn: ReadOnlyTransaction, item: int
    ) -> Generator[object, object, ReadResult]:
        """Simulation sub-process performing one read.

        Returns the :class:`ReadResult` or raises :class:`ReadAborted`.
        """
        raise NotImplementedError

    def finish(self, txn: ReadOnlyTransaction) -> None:
        """Final commit-time validation; raises :class:`ReadAborted` to
        reject.  Default: queries that survived every per-cycle check
        commit."""

    def end(self, txn: ReadOnlyTransaction) -> None:
        """Called after the attempt terminated (committed or aborted), for
        schemes holding per-transaction state (SGT node cleanup)."""

    # -- checkpoint / recovery hooks (see repro.resilience) -------------------

    def export_state(self) -> Optional[Mapping[str, Any]]:
        """Checkpointable cross-cycle control state, or ``None``.

        Called at checkpoint instants (cycle starts, after the scheme
        processed the control segment).  The returned mapping must be
        self-contained: live structures are copied, never aliased.
        Default: the scheme holds nothing worth checkpointing.
        """
        return None

    def restore_state(
        self, state: Mapping[str, Any], cycles_missed: int
    ) -> None:
        """Restore exported state after a crash-restart.

        ``cycles_missed`` is the number of broadcast cycles between the
        checkpoint and the restart that the client never heard.  Schemes
        whose state cannot survive a gap (SGT: missed graph diffs mean
        missing edges, which could wrongly *accept* reads) must discard
        the stale part rather than trust it.  Default: nothing to do.
        """

    def reset_state(self) -> None:
        """A crash wiped the client's memory: drop all cross-cycle
        control state, as if freshly constructed.  Per-transaction state
        drains through :meth:`end` when the machine aborts the active
        attempt.  Default: nothing held."""

    def state_cycle(self, txn: ReadOnlyTransaction) -> Optional[int]:
        """The broadcast cycle whose database state a *committed* ``txn``'s
        readset corresponds to -- the currency measure of Table 1.

        ``None`` when the scheme cannot pin a single cycle (SGT serializes
        somewhere between the first and the last operation).
        """
        return None

    # -- shared helpers -------------------------------------------------------

    def _check_not_aborted(self, txn: ReadOnlyTransaction) -> None:
        if txn.status is TransactionStatus.ABORTED:
            raise ReadAborted(
                txn.abort_reason or AbortReason.INVALIDATED,
                f"{txn.txn_id} aborted by an invalidation report",
            )

    def _read_current(
        self, item: int
    ) -> Generator[object, object, Tuple[ItemRecord, int, bool]]:
        """Shared read path for current values: cache first, else air.

        Returns ``(record, read_cycle, from_cache)``.  A value read off
        the air is inserted into the cache (demand caching).
        """
        ctx = self.ctx
        if self.use_cache and ctx.cache is not None:
            entry = ctx.cache.get_current(item, ctx.env.now)
            if entry is not None:
                record = ItemRecord(
                    item=item,
                    value=entry.value,
                    version=entry.version,
                    writer=entry.writer,
                )
                return (record, ctx.current_cycle, True)
        record, cycle = yield from ctx.channel.await_item(item)
        if self.use_cache and ctx.cache is not None:
            ctx.cache.insert_current(record, ctx.env.now)
        return (record, cycle, False)

    def _result_from_record(
        self,
        record: ItemRecord,
        read_cycle: int,
        from_cache: bool,
    ) -> ReadResult:
        return ReadResult(
            item=record.item,
            value=record.value,
            version=record.version,
            read_cycle=read_cycle,
            writer=record.writer,
            from_cache=from_cache,
        )
