"""The invalidation-only method (Section 3.1).

The simplest protocol: the client keeps ``RS(R)`` for every active query
``R`` and tunes in at each cycle start for the invalidation report.  If
any item ``R`` has read was updated during the previous cycle, ``R`` is
aborted; otherwise ``R`` keeps reading the most current values.  Theorem 1:
a committed query's readset equals the database state broadcast during the
cycle of its last read -- the *most current* of all the schemes.

The bucket-granularity variant (Section 7) coarsens the check: a query is
aborted when any *page* it has read from was updated, trading false aborts
for a smaller report.
"""

from __future__ import annotations

import enum
from typing import Dict, Generator, Optional

from repro.broadcast.program import BroadcastProgram
from repro.core.base import ReadAborted, Scheme
from repro.core.control import BroadcastRequirements
from repro.core.transaction import (
    AbortReason,
    ReadOnlyTransaction,
    ReadResult,
)


class Granularity(enum.Enum):
    """Granularity of the invalidation check."""

    ITEM = "item"
    BUCKET = "bucket"


def _invalidation_cause(
    report_cycle: int,
    granularity: Granularity,
    hit: frozenset,
    interim: bool = False,
):
    """Cause-chain entry for an invalidation-report abort."""
    cause = {
        "event": "invalidation",
        "report_cycle": report_cycle,
        ("pages" if granularity is Granularity.BUCKET else "items"): sorted(hit),
    }
    if interim:
        cause["interim"] = True
    return cause


class InvalidationOnly(Scheme):
    """Abort-on-invalidation processing of read-only transactions."""

    name = "invalidation-only"

    def __init__(
        self,
        use_cache: bool = False,
        granularity: Granularity = Granularity.ITEM,
    ) -> None:
        super().__init__(use_cache=use_cache)
        self.granularity = granularity
        self._active: Dict[str, ReadOnlyTransaction] = {}
        #: item -> logical page, learned from the broadcast layout.
        self._page_of: Dict[int, int] = {}

    def requirements(self) -> BroadcastRequirements:
        return BroadcastRequirements()

    @property
    def label(self) -> str:
        suffix = "+cache" if self.use_cache else ""
        grain = "/bucket" if self.granularity is Granularity.BUCKET else ""
        return f"{self.name}{grain}{suffix}"

    # -- protocol ------------------------------------------------------------

    def on_cycle_start(self, program: BroadcastProgram) -> None:
        report = program.control.invalidation
        if self.granularity is Granularity.BUCKET:
            for item in program.items:
                self._page_of[item] = program.page_of(item)
        for txn in list(self._active.values()):
            if not txn.is_active:
                continue
            hit = self._invalidated(txn, report, program)
            if hit:
                txn.abort(
                    AbortReason.INVALIDATED,
                    self.ctx.env.now,
                    program.cycle,
                    cause=_invalidation_cause(report.cycle, self.granularity, hit),
                )

    def _invalidated(self, txn, report, program) -> frozenset:
        """The invalidated items (or pages) of ``txn``; empty = survives."""
        if self.granularity is Granularity.ITEM:
            return report.invalidates(txn.readset)
        pages = frozenset(
            self._page_of[item] for item in txn.readset if item in self._page_of
        )
        return report.invalidates_buckets(pages)

    def on_interim_report(self, report) -> None:
        """Sub-cycle reports (§7): learn about invalidations within ``h``
        instead of a full cycle.

        Doomed queries abort immediately and retry sooner.  In the paper's
        variant the broadcast values also advance per interval, making the
        abort mandatory; our data stay fixed per cycle, so this is
        (slightly) pessimistic -- a query that would have finished within
        the current cycle is killed early.  The fig5 ablation bench
        measures the trade.
        """
        for txn in list(self._active.values()):
            if not txn.is_active:
                continue
            if self.granularity is Granularity.ITEM:
                hit = report.invalidates(txn.readset)
            else:
                pages = frozenset(
                    self._page_of[item]
                    for item in txn.readset
                    if item in self._page_of
                )
                hit = report.invalidates_buckets(pages)
            if hit:
                txn.abort(
                    AbortReason.INVALIDATED,
                    self.ctx.env.now,
                    self.ctx.current_cycle,
                    cause=_invalidation_cause(
                        report.cycle, self.granularity, hit, interim=True
                    ),
                )

    def on_missed_cycle(self, cycle: int) -> None:
        # Without the report there is no way to validate: every active
        # query dies (Table 1: no tolerance to disconnections).
        for txn in list(self._active.values()):
            if txn.is_active:
                txn.abort(
                    AbortReason.DISCONNECTED,
                    self.ctx.env.now,
                    cycle,
                    cause={"event": "missed_cycle", "missed_cycle": cycle},
                )

    # -- checkpoint / recovery (see repro.resilience) -------------------------

    def export_state(self):
        """The learned item->page layout (bucket granularity only)."""
        if not self._page_of:
            return None
        return {"page_of": dict(self._page_of)}

    def restore_state(self, state, cycles_missed: int) -> None:
        # Safe across any gap: the layout is re-learned from the program
        # at every heard cycle start, before any query consults it.
        self._page_of.update(state["page_of"])

    def reset_state(self) -> None:
        self._page_of.clear()

    def begin(self, txn: ReadOnlyTransaction) -> None:
        self._active[txn.txn_id] = txn

    def read(
        self, txn: ReadOnlyTransaction, item: int
    ) -> Generator[object, object, ReadResult]:
        record, cycle, from_cache = yield from self._read_current(item)
        return self._result_from_record(record, cycle, from_cache)

    def state_cycle(self, txn: ReadOnlyTransaction):
        # Theorem 1: the state broadcast during the cycle of the last read.
        return txn.end_cycle

    def end(self, txn: ReadOnlyTransaction) -> None:
        self._active.pop(txn.txn_id, None)
