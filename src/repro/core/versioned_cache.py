"""Invalidation-only with versioned cache (Section 4.1, Theorem 4).

The enhancement over plain invalidation-only: when the first invalidation
report hits a query ``R`` at cycle ``u``, ``R`` is *marked* instead of
aborted.  It may then finish, provided every remaining read can be served
by a cached value that was current at cycle ``u - 1``.  The committed
readset equals the database state ``DS^{u-1}`` -- slightly less current
than plain invalidation-only, in exchange for far fewer aborts.

The cache tracks, per entry, the interval of cycles its value was current
for (see :class:`~repro.client.cache.ClientCache`); "old enough" is the
interval-containment test the proof of Theorem 4 quantifies over.
"""

from __future__ import annotations

from typing import Dict, Generator

from repro.broadcast.program import BroadcastProgram, ItemRecord
from repro.core.base import ReadAborted, Scheme
from repro.core.control import BroadcastRequirements
from repro.core.transaction import (
    AbortReason,
    ReadOnlyTransaction,
    ReadResult,
    TransactionStatus,
)


def _mark_cause(report, hit, interim: bool = False):
    """Cause-chain entry for the first invalidation that marks a query."""
    cause = {
        "event": "invalidation",
        "report_cycle": report.cycle,
        "items": sorted(hit),
        "terminal": False,
    }
    if interim:
        cause["interim"] = True
    return cause


class InvalidationWithVersionedCache(Scheme):
    """Marked-abort processing: continue on old-enough cached values."""

    name = "inval-versioned-cache"

    def __init__(self) -> None:
        # The whole point of the scheme is the cache; it is mandatory.
        super().__init__(use_cache=True)
        self._active: Dict[str, ReadOnlyTransaction] = {}

    def requirements(self) -> BroadcastRequirements:
        return BroadcastRequirements()

    @property
    def label(self) -> str:
        return self.name

    def attach(self, ctx) -> None:
        super().attach(ctx)
        if ctx.cache is None:
            raise RuntimeError(f"{self.name} requires a client cache")

    # -- protocol -------------------------------------------------------------

    def on_cycle_start(self, program: BroadcastProgram) -> None:
        report = program.control.invalidation
        for txn in self._active.values():
            if txn.status is not TransactionStatus.ACTIVE:
                continue
            hit = report.invalidates(txn.readset)
            if hit:
                # First invalidation: mark, do not abort (Section 4.1).
                txn.mark(deadline=report.cycle, cause=_mark_cause(report, hit))

    def on_interim_report(self, report) -> None:
        """Sub-cycle reports (§7): mark affected queries immediately.

        ``report.cycle`` equals the deadline the next main report would
        set, so marking early is behaviour-preserving for the values read
        -- it only lets the query switch to the old-value path (and detect
        a hopeless cache) sooner.
        """
        for txn in self._active.values():
            if txn.status is not TransactionStatus.ACTIVE:
                continue
            hit = report.invalidates(txn.readset)
            if hit:
                txn.mark(
                    deadline=report.cycle,
                    cause=_mark_cause(report, hit, interim=True),
                )

    def on_missed_cycle(self, cycle: int) -> None:
        for txn in list(self._active.values()):
            if txn.is_active:
                txn.abort(
                    AbortReason.DISCONNECTED,
                    self.ctx.env.now,
                    cycle,
                    cause={"event": "missed_cycle", "missed_cycle": cycle},
                )

    def begin(self, txn: ReadOnlyTransaction) -> None:
        self._active[txn.txn_id] = txn

    def read(
        self, txn: ReadOnlyTransaction, item: int
    ) -> Generator[object, object, ReadResult]:
        while True:
            if txn.is_marked:
                result = yield from self._read_marked(txn, item)
                return result
            record, cycle, from_cache = yield from self._read_current(item)
            if txn.is_marked and not from_cache:
                if txn.deadline is not None and cycle == txn.deadline - 1:
                    # Marked mid-wait by an *interim* report: the value
                    # just delivered still belongs to the target state.
                    return self._result_from_record(record, cycle, from_cache)
                # Marked by a cycle-start report: the delivered value is
                # from a cycle at or past the deadline and versions are
                # not on the air in this scheme -- retry via the cache.
                continue
            return self._result_from_record(record, cycle, from_cache)

    def _read_marked(self, txn: ReadOnlyTransaction, item: int):
        """Serve a read for a marked query: a value current at
        ``deadline - 1``, from the cache or (while the target cycle is
        still on the air -- possible only with interim marking) from the
        broadcast; otherwise abort."""
        ctx = self.ctx
        assert txn.deadline is not None
        target = txn.deadline - 1

        entry = ctx.cache.get_covering(item, target, ctx.env.now)
        if entry is not None:
            record = ItemRecord(
                item=item,
                value=entry.value,
                version=entry.version,
                writer=entry.writer,
            )
            return self._result_from_record(record, ctx.current_cycle, True)

        if ctx.current_cycle <= target:
            record, cycle = yield from ctx.channel.await_item(item)
            if cycle == target:
                ctx.cache.insert_current(record, ctx.env.now)
                return self._result_from_record(record, cycle, False)
            # Delivered only in a later cycle; last chance via the cache
            # (the autoprefetched old value may still cover the target).
            entry = ctx.cache.get_covering(item, target, ctx.env.now)
            if entry is not None:
                record = ItemRecord(
                    item=item,
                    value=entry.value,
                    version=entry.version,
                    writer=entry.writer,
                )
                return self._result_from_record(record, ctx.current_cycle, True)

        raise ReadAborted(
            AbortReason.STALE_CACHE,
            f"{txn.txn_id}: no value of item {item} current at cycle "
            f"{target} is obtainable",
            cause={
                "event": "stale_cache",
                "item": item,
                "target_cycle": target,
            },
        )

    def state_cycle(self, txn: ReadOnlyTransaction):
        # Theorem 4: DS^{u-1} once marked, else the most current state.
        if txn.deadline is not None:
            return txn.deadline - 1
        return txn.end_cycle

    def end(self, txn: ReadOnlyTransaction) -> None:
        self._active.pop(txn.txn_id, None)
