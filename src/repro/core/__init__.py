"""The paper's contribution: read-only transaction processing schemes.

Five protocols ensure that a client query's readset is a subset of a
consistent database state, without ever contacting the server:

* :class:`~repro.core.invalidation.InvalidationOnly` (§3.1) -- abort on
  invalidation; reads are the most current.
* :class:`~repro.core.versioned_cache.InvalidationWithVersionedCache`
  (§4.1) -- instead of aborting, keep going on old-enough cached values.
* :class:`~repro.core.multiversion.MultiversionBroadcast` (§3.2) -- read
  old versions off the air; never aborts while the span fits the
  retention window.
* :class:`~repro.core.sgt.SerializationGraphTesting` (§3.3) -- accept any
  read that keeps the local serialization graph acyclic.
* :class:`~repro.core.multiversion_cache.MultiversionCaching` (§4.2) --
  old versions live in a partitioned client cache instead of on the air.

All schemes share the :class:`~repro.core.base.Scheme` interface and the
:class:`~repro.core.transaction.ReadOnlyTransaction` bookkeeping, and are
driven by :class:`~repro.client.machine.BroadcastClient`.
"""

from repro.core.base import ReadAborted, ReadContext, Scheme
from repro.core.control import ControlInfo, InvalidationReport, ReportSchedule
from repro.core.invalidation import Granularity, InvalidationOnly
from repro.core.multiversion import MultiversionBroadcast
from repro.core.multiversion_cache import MultiversionCaching
from repro.core.sgt import SerializationGraphTesting
from repro.core.transaction import ReadOnlyTransaction, TransactionStatus
from repro.core.unsafe import NoConsistency
from repro.core.versioned_cache import InvalidationWithVersionedCache

__all__ = [
    "ControlInfo",
    "Granularity",
    "InvalidationOnly",
    "InvalidationReport",
    "InvalidationWithVersionedCache",
    "MultiversionBroadcast",
    "MultiversionCaching",
    "NoConsistency",
    "ReadAborted",
    "ReadContext",
    "ReadOnlyTransaction",
    "ReportSchedule",
    "Scheme",
    "SerializationGraphTesting",
    "TransactionStatus",
]
