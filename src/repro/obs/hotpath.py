"""Hot-path micro-suite: the per-event kernel under a magnifying glass.

Where :mod:`repro.obs.bench` times whole simulations to price the tracing
subsystem, this suite isolates the three layers the simulator spends its
life in, so a kernel change can be attributed to the layer it touched:

* ``dispatch``  -- a pure engine ping benchmark (processes trading
  timeouts, no broadcast machinery): events per second through
  :meth:`repro.sim.engine.Environment.run`;
* ``programs``  -- :class:`repro.server.broadcast.ProgramBuilder` builds
  per second while a real :class:`TransactionEngine` advances the
  database between builds, for both the flat and the overflow layout
  (and, when the builder supports it, with the incremental cycle build
  disabled, so the copy-on-write win is measured, not asserted);
* ``clients``   -- full simulations at 1/10/100 clients: cycles per
  second and events per second, the end-to-end number the ROADMAP's
  "fast as the hardware allows" is judged by;
* ``profile``   -- one run under :mod:`cProfile`, top-N functions by
  cumulative time, so the next optimization pass starts from evidence.

Run as a module::

    python -m repro.obs.hotpath --out results/BENCH_hotpath.json
    python -m repro.obs.hotpath --quick --against results/BENCH_hotpath.json

``--before FILE`` embeds a previously captured payload under ``before``
and records honest speedup ratios next to the fresh numbers.
``--against FILE --max-regression 0.2`` turns the dispatch events/sec
comparison into an exit code for CI.
"""

from __future__ import annotations

import argparse
import cProfile
import gc
import inspect
import json
import os
import platform
import pstats
import random
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.config import DEFAULTS, ModelParameters
from repro.obs.manifest import git_revision, package_versions

#: Suite layout: (clients tried by the end-to-end benchmark).
CLIENT_COUNTS = (1, 10, 100)


# -- dispatch: the bare engine ---------------------------------------------


def _dispatch_once(processes: int, hops: int) -> Dict[str, float]:
    """Ping benchmark: ``processes`` generators each awaiting ``hops``
    timeouts with co-prime delays (so the heap stays busy and events
    interleave rather than batching at one instant)."""
    from repro.sim.engine import Environment

    env = Environment()

    def ping(env, delay):
        for _ in range(hops):
            yield env.timeout(delay)

    for i in range(processes):
        env.process(ping(env, 1.0 + (i % 7) * 0.25))
    gc.collect()
    start = time.perf_counter()
    env.run()
    elapsed = time.perf_counter() - start
    return {
        "seconds": elapsed,
        "events": float(env.events_processed),
        "events_per_sec": env.events_processed / elapsed if elapsed else 0.0,
    }


def bench_dispatch(repeats: int, processes: int = 64, hops: int = 2000) -> Dict[str, float]:
    best: Optional[Dict[str, float]] = None
    for _ in range(max(1, repeats)):
        sample = _dispatch_once(processes, hops)
        if best is None or sample["seconds"] < best["seconds"]:
            best = sample
    assert best is not None
    best["processes"] = float(processes)
    best["hops"] = float(hops)
    return best


# -- programs: the per-cycle builder ---------------------------------------


def _builder_supports_incremental() -> bool:
    from repro.server.broadcast import ProgramBuilder

    return "incremental" in inspect.signature(ProgramBuilder.__init__).parameters


def _programs_once(
    cycles: int,
    organization: Optional[str],
    incremental: bool,
    columnar: bool = True,
    db_size: Optional[int] = None,
) -> Dict[str, float]:
    """Time ``cycles`` builder invocations while a real engine advances
    the database between them (the server loop minus the channel).

    ``columnar=False`` runs the dict-backed reference item-state store
    (the pre-refactor path) so the columnar speedup is measured within
    one payload, on one machine.  ``db_size`` overrides the item count
    (the ``bigdb`` lane airs a 10^5-item database)."""
    from dataclasses import replace

    from repro.core.control import BroadcastRequirements
    from repro.server.broadcast import ProgramBuilder
    from repro.server.database import Database
    from repro.server.itemstate import make_item_state
    from repro.server.transactions import TransactionEngine

    params = DEFAULTS.server
    if db_size is not None:
        params = replace(params, broadcast_size=db_size)
    database = Database(params.broadcast_size)
    requirements = BroadcastRequirements()
    retention = 0
    if organization is not None:
        requirements = BroadcastRequirements(
            needs_old_versions=True, organization=organization
        )
        retention = params.retention
    item_state = make_item_state(
        database,
        retention=retention,
        columnar=columnar,
        items_per_bucket=params.items_per_bucket,
    )
    version_store = item_state if organization is not None else None
    engine = TransactionEngine(
        params, database, version_store=version_store, rng=random.Random(11)
    )
    kwargs = {}
    if _builder_supports_incremental():
        kwargs["incremental"] = incremental
    builder = ProgramBuilder(
        params,
        database,
        version_store=version_store,
        requirements=requirements,
        item_state=item_state,
        **kwargs,
    )

    gc.collect()
    outcome = None
    built = 0.0
    for cycle in range(1, cycles + 1):
        start = time.perf_counter()
        builder.build(cycle, outcome)
        built += time.perf_counter() - start
        outcome = engine.run_cycle(cycle)
    return {
        "seconds": built,
        "builds": float(cycles),
        "builds_per_sec": cycles / built if built else 0.0,
    }


def bench_programs(
    repeats: int, cycles: int = 120, bigdb_size: int = 100_000
) -> Dict[str, object]:
    out: Dict[str, object] = {"cycles": cycles}
    variants = [("flat", None), ("overflow", "overflow"), ("clustered", "clustered")]
    # The columnar lane and its dict-reference twin alternate within
    # every repeat round, so the in-process ratio (the CI
    # columnar-regression gate) brackets the same noise window — a CPU
    # spike landing on one lane's consecutive repeats would otherwise
    # fake a regression either way.
    for label, organization in variants[:2]:
        best: Optional[Dict[str, float]] = None
        best_dict: Optional[Dict[str, float]] = None
        for _ in range(max(1, repeats)):
            sample = _programs_once(cycles, organization, incremental=True)
            if best is None or sample["seconds"] < best["seconds"]:
                best = sample
            twin = _programs_once(
                cycles, organization, incremental=True, columnar=False
            )
            if best_dict is None or twin["seconds"] < best_dict["seconds"]:
                best_dict = twin
        out[label] = best
        out[f"{label}_dict"] = best_dict
    best = None
    for _ in range(max(1, repeats)):
        sample = _programs_once(cycles, "clustered", incremental=True)
        if best is None or sample["seconds"] < best["seconds"]:
            best = sample
    out["clustered"] = best
    if _builder_supports_incremental():
        # The same build loop with the persistent index switched off: the
        # copy-on-write win is measured against the full rebuild, on the
        # same machine, in the same process.
        for label, organization in variants[:2]:
            best = None
            for _ in range(max(1, repeats)):
                sample = _programs_once(cycles, organization, incremental=False)
                if best is None or sample["seconds"] < best["seconds"]:
                    best = sample
            out[f"{label}_full_rebuild"] = best
    # The item-count scale lane the columnar store unlocks (ROADMAP
    # item 4): overflow builds over a 10^5-item database, columnar and
    # dict reference alternating round by round.
    bigdb_cycles = max(6, cycles // 10)
    best = None
    best_dict: Optional[Dict[str, float]] = None
    for _ in range(max(1, repeats)):
        sample = _programs_once(
            bigdb_cycles, "overflow", incremental=True, db_size=bigdb_size
        )
        if best is None or sample["seconds"] < best["seconds"]:
            best = sample
        twin = _programs_once(
            bigdb_cycles, "overflow", incremental=True, columnar=False,
            db_size=bigdb_size,
        )
        if best_dict is None or twin["seconds"] < best_dict["seconds"]:
            best_dict = twin
    out["bigdb"] = best
    out["bigdb"]["db_size"] = float(bigdb_size)
    out["bigdb_dict"] = best_dict
    out["bigdb_dict"]["db_size"] = float(bigdb_size)
    return out


# -- codec: the live wire format -------------------------------------------


def _codec_once(
    cycles: int, organization: Optional[str], sgt: bool = False
) -> Dict[str, float]:
    """Time encode + decode of real builder programs: the per-cycle wire
    work of the live serving mode (`repro.live`), measured against the
    same server loop the ``programs`` lanes drive."""
    from repro.core.control import BroadcastRequirements
    from repro.live.codec import CycleCodec, WireProfile
    from repro.server.broadcast import ProgramBuilder
    from repro.server.database import Database
    from repro.server.itemstate import make_item_state
    from repro.server.transactions import TransactionEngine

    params = DEFAULTS.server
    database = Database(params.broadcast_size)
    retention = params.retention if organization is not None else 0
    requirements = BroadcastRequirements(
        needs_old_versions=organization is not None,
        organization=organization or "overflow",
        needs_sgt=sgt,
    )
    item_state = make_item_state(
        database,
        retention=retention,
        columnar=True,
        items_per_bucket=params.items_per_bucket,
    )
    version_store = item_state if organization is not None else None
    engine = TransactionEngine(
        params, database, version_store=version_store, rng=random.Random(11)
    )
    builder = ProgramBuilder(
        params,
        database,
        version_store=version_store,
        requirements=requirements,
        item_state=item_state,
    )
    codec = CycleCodec(WireProfile.from_params(params, requirements))

    gc.collect()
    outcome = None
    encoding = decoding = 0.0
    wire_bytes = 0
    for cycle in range(1, cycles + 1):
        program = builder.build(cycle, outcome)
        start = time.perf_counter()
        frames = codec.encode_cycle(program, 0)
        encoding += time.perf_counter() - start
        wire_bytes += sum(len(frame) for frame in frames)
        start = time.perf_counter()
        codec.decode_cycle(frames)
        decoding += time.perf_counter() - start
        outcome = engine.run_cycle(cycle)
    return {
        "seconds": encoding,
        "encodes": float(cycles),
        "encodes_per_sec": cycles / encoding if encoding else 0.0,
        "decodes_per_sec": cycles / decoding if decoding else 0.0,
        "bytes_per_cycle": wire_bytes / cycles,
    }


def bench_codec(repeats: int, cycles: int = 60) -> Dict[str, object]:
    """Encode/decode throughput over the three wire layouts the live
    mode airs: flat (invalidation), overflow multiversion, and the
    SGT-augmented control segment."""
    out: Dict[str, object] = {"cycles": cycles}
    variants = [
        ("flat", None, False),
        ("overflow", "overflow", False),
        ("sgt", None, True),
    ]
    for label, organization, needs_sgt in variants:
        best: Optional[Dict[str, float]] = None
        for _ in range(max(1, repeats)):
            sample = _codec_once(cycles, organization, sgt=needs_sgt)
            if best is None or sample["seconds"] < best["seconds"]:
                best = sample
        out[label] = best
    return out


# -- clients: the end-to-end simulator -------------------------------------


def _clients_params(num_clients: int, cycles: int) -> ModelParameters:
    return DEFAULTS.with_sim(
        num_cycles=cycles,
        warmup_cycles=5,
        num_clients=num_clients,
        seed=11,
    )


def _clients_once(
    num_clients: int, cycles: int, columnar: bool = True
) -> Dict[str, float]:
    from repro.experiments.schemes import scheme_factory
    from repro.runtime import Simulation

    sim = Simulation(
        _clients_params(num_clients, cycles),
        scheme_factory=scheme_factory("inval"),
        columnar=columnar,
    )
    gc.collect()
    start = time.perf_counter()
    result = sim.run()
    elapsed = time.perf_counter() - start
    return {
        "seconds": elapsed,
        "events": float(sim.env.events_processed),
        "cycles": float(result.cycles_completed),
        "events_per_sec": sim.env.events_processed / elapsed if elapsed else 0.0,
        "cycles_per_sec": result.cycles_completed / elapsed if elapsed else 0.0,
    }


def bench_clients(repeats: int, cycles: int = 60) -> Dict[str, Dict[str, float]]:
    out: Dict[str, Dict[str, float]] = {}
    for count in CLIENT_COUNTS:
        best: Optional[Dict[str, float]] = None
        best_dict: Optional[Dict[str, float]] = None
        # The 100-client point is the slow one; one repeat is plenty there.
        rounds = max(1, repeats if count < 100 else 1)
        for _ in range(rounds):
            sample = _clients_once(count, cycles)
            if best is None or sample["seconds"] < best["seconds"]:
                best = sample
            if count == 10:
                # The dict-reference twin alternates with the columnar
                # lane so the in-process end-to-end comparison brackets
                # the same noise window (same rationale as the program
                # lanes).
                twin = _clients_once(10, cycles, columnar=False)
                if best_dict is None or twin["seconds"] < best_dict["seconds"]:
                    best_dict = twin
        out[str(count)] = best
        if count == 10:
            out["10_dict"] = best_dict
    return out


# -- cohort: the population engine -----------------------------------------


def _cohort_once(num_clients: int, cycles: int) -> Dict[str, float]:
    """One cohort-engine run at ``num_clients``: the same workload as the
    ``clients`` suite, advanced client-major instead of through the
    kernel heap.  ``steps`` (generator resumptions) is the cohort
    analogue of the kernel's events-processed figure."""
    from repro.cohort import CohortSimulation
    from repro.experiments.schemes import scheme_factory

    sim = CohortSimulation(
        _clients_params(num_clients, cycles),
        scheme_factory=scheme_factory("inval"),
    )
    gc.collect()
    start = time.perf_counter()
    result = sim.run()
    elapsed = time.perf_counter() - start
    return {
        "seconds": elapsed,
        "clients": float(num_clients),
        "cycles": float(result.cycles_completed),
        "steps": float(sim.steps),
        "clients_per_sec": num_clients / elapsed if elapsed else 0.0,
        "steps_per_sec": sim.steps / elapsed if elapsed else 0.0,
    }


def bench_cohort(
    repeats: int, num_clients: int = 1000, cycles: int = 60
) -> Dict[str, float]:
    best: Optional[Dict[str, float]] = None
    for _ in range(max(1, repeats)):
        sample = _cohort_once(num_clients, cycles)
        if best is None or sample["seconds"] < best["seconds"]:
            best = sample
    assert best is not None
    return best


# -- shard: the multi-channel server ----------------------------------------


def _shard_once(num_shards: int, num_clients: int, cycles: int) -> Dict[str, float]:
    """One sharded run: the ``clients`` workload on the K-channel server.

    At K=1 the sharded runtime is bit-identical to the single-channel
    simulator (the shard oracle pins this), so the event count matches
    ``_clients_once`` exactly and the wall-clock delta is pure seam
    overhead."""
    from repro.experiments.schemes import scheme_factory
    from repro.shard.runtime import ShardedSimulation

    sim = ShardedSimulation(
        _clients_params(num_clients, cycles),
        scheme_factory("inval"),
        num_shards=num_shards,
    )
    gc.collect()
    start = time.perf_counter()
    result = sim.run()
    elapsed = time.perf_counter() - start
    return {
        "seconds": elapsed,
        "shards": float(num_shards),
        "events": float(sim.env.events_processed),
        "cycles": float(result.cycles_completed),
        "events_per_sec": sim.env.events_processed / elapsed if elapsed else 0.0,
        "cycles_per_sec": result.cycles_completed / elapsed if elapsed else 0.0,
    }


def bench_shard(
    repeats: int, num_clients: int = 10, cycles: int = 60
) -> Dict[str, object]:
    """K=1 (seam-overhead lane) and K=4 (multi-channel lane), plus the
    single-channel run the K=1 lane is priced against."""
    out: Dict[str, object] = {}
    for label, thunk in (
        ("single", lambda: _clients_once(num_clients, cycles)),
        ("k1", lambda: _shard_once(1, num_clients, cycles)),
        ("k4", lambda: _shard_once(4, num_clients, cycles)),
    ):
        best: Optional[Dict[str, float]] = None
        for _ in range(max(1, repeats)):
            sample = thunk()
            if best is None or sample["seconds"] < best["seconds"]:
                best = sample
        out[label] = best
    single = out["single"]["seconds"]
    if single:
        out["k1_overhead"] = round(out["k1"]["seconds"] / single - 1.0, 4)
    return out


# -- profile: where the time actually goes ---------------------------------


def bench_profile(top: int = 15, cycles: int = 60) -> List[Dict[str, object]]:
    from repro.experiments.schemes import scheme_factory
    from repro.runtime import Simulation

    sim = Simulation(
        _clients_params(10, cycles), scheme_factory=scheme_factory("inval")
    )
    profiler = cProfile.Profile()
    profiler.enable()
    sim.run()
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats(pstats.SortKey.CUMULATIVE)
    rows: List[Dict[str, object]] = []
    for func, (cc, nc, tt, ct, _callers) in sorted(
        stats.stats.items(), key=lambda kv: kv[1][3], reverse=True
    ):
        filename, lineno, name = func
        if "hotpath.py" in filename or filename.startswith("<"):
            continue
        rows.append(
            {
                "function": f"{os.path.basename(filename)}:{lineno}:{name}",
                "ncalls": nc,
                "tottime": round(tt, 6),
                "cumtime": round(ct, 6),
            }
        )
        if len(rows) >= top:
            break
    return rows


# -- assembly ---------------------------------------------------------------


def run_suite(
    repeats: int = 3,
    quick: bool = False,
    profile_top: int = 15,
    progress: Optional[callable] = None,
) -> Dict[str, object]:
    """Run every micro-benchmark and assemble the JSON payload."""

    def say(message: str) -> None:
        if progress is not None:
            progress(message)

    hops = 400 if quick else 2000
    cycles = 30 if quick else 120
    client_cycles = 20 if quick else 60

    say("dispatch: engine ping ...")
    dispatch = bench_dispatch(repeats, hops=hops)
    say(f"  {dispatch['events_per_sec']:,.0f} events/s")
    say("programs: builder loop (columnar + dict reference + bigdb) ...")
    programs = bench_programs(
        repeats, cycles=cycles, bigdb_size=20_000 if quick else 100_000
    )
    say(
        f"  flat {programs['flat']['builds_per_sec']:,.1f} builds/s "
        f"(dict {programs['flat_dict']['builds_per_sec']:,.1f})  "
        f"bigdb {programs['bigdb']['builds_per_sec']:,.1f} builds/s "
        f"(dict {programs['bigdb_dict']['builds_per_sec']:,.1f})"
    )
    say("clients: end-to-end at 1/10/100 ...")
    clients = bench_clients(repeats, cycles=client_cycles)
    for count, sample in clients.items():
        say(
            f"  {count:>3} clients: {sample['cycles_per_sec']:,.1f} cycles/s  "
            f"{sample['events_per_sec']:,.0f} events/s"
        )
    say("cohort: population engine ...")
    cohort = bench_cohort(repeats, cycles=client_cycles)
    say(
        f"  {cohort['clients']:,.0f} clients: "
        f"{cohort['clients_per_sec']:,.0f} clients/s  "
        f"{cohort['steps_per_sec']:,.0f} steps/s"
    )
    say("shard: multi-channel server at K=1/K=4 ...")
    shard = bench_shard(repeats, cycles=client_cycles)
    say(
        f"  K=1 overhead {shard.get('k1_overhead', 0.0):+.1%}  "
        f"K=4 {shard['k4']['events_per_sec']:,.0f} events/s"
    )
    say("codec: live wire format encode/decode ...")
    codec = bench_codec(repeats, cycles=client_cycles)
    say(
        f"  flat {codec['flat']['encodes_per_sec']:,.1f} enc/s  "
        f"overflow {codec['overflow']['encodes_per_sec']:,.1f} enc/s  "
        f"sgt {codec['sgt']['encodes_per_sec']:,.1f} enc/s"
    )
    say("profile: cProfile top functions ...")
    profile = bench_profile(top=profile_top, cycles=client_cycles)

    return {
        "bench": "repro.obs.hotpath",
        "git_rev": git_revision(),
        "packages": package_versions(),
        "platform": platform.platform(),
        "repeats": repeats,
        "quick": quick,
        "suites": {
            "dispatch": dispatch,
            "programs": programs,
            "clients": clients,
            "cohort": cohort,
            "shard": shard,
            "codec": codec,
            "profile": profile,
        },
    }


def _rate(payload: Dict[str, object], *path: str) -> Optional[float]:
    node: object = payload
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return float(node) if isinstance(node, (int, float)) else None


def attach_before(payload: Dict[str, object], before: Dict[str, object]) -> None:
    """Embed ``before`` and record after/before speedup ratios."""
    payload["before"] = before
    speedups: Dict[str, float] = {}
    comparisons = [
        ("dispatch_events_per_sec", ("suites", "dispatch", "events_per_sec")),
        (
            "programs_flat_builds_per_sec",
            ("suites", "programs", "flat", "builds_per_sec"),
        ),
        (
            "programs_overflow_builds_per_sec",
            ("suites", "programs", "overflow", "builds_per_sec"),
        ),
    ] + [
        (
            f"clients_{count}_events_per_sec",
            ("suites", "clients", str(count), "events_per_sec"),
        )
        for count in CLIENT_COUNTS
    ] + [
        (
            "clients_10_cycles_per_sec",
            ("suites", "clients", "10", "cycles_per_sec"),
        ),
        ("cohort_clients_per_sec", ("suites", "cohort", "clients_per_sec")),
        ("shard_k4_events_per_sec", ("suites", "shard", "k4", "events_per_sec")),
        ("codec_flat_encodes_per_sec", ("suites", "codec", "flat", "encodes_per_sec")),
        (
            "codec_overflow_encodes_per_sec",
            ("suites", "codec", "overflow", "encodes_per_sec"),
        ),
    ]
    for label, path in comparisons:
        now, then = _rate(payload, *path), _rate(before, *path)
        if now is not None and then:
            speedups[label] = round(now / then, 4)
    payload["speedup_vs_before"] = speedups


def columnar_regressions(
    payload: Dict[str, object], max_regression: float
) -> List[str]:
    """CI gate for the columnar refactor: each columnar lane must not
    fall more than ``max_regression`` below its dict-reference twin,
    measured back-to-back in the same process (machine-independent).
    Returns the violated checks (empty = pass)."""
    failures: List[str] = []
    pairs = [
        (
            "flat builds/sec",
            ("suites", "programs", "flat", "builds_per_sec"),
            ("suites", "programs", "flat_dict", "builds_per_sec"),
        ),
        (
            "overflow builds/sec",
            ("suites", "programs", "overflow", "builds_per_sec"),
            ("suites", "programs", "overflow_dict", "builds_per_sec"),
        ),
        (
            "bigdb builds/sec",
            ("suites", "programs", "bigdb", "builds_per_sec"),
            ("suites", "programs", "bigdb_dict", "builds_per_sec"),
        ),
        (
            "10-client cycles/sec",
            ("suites", "clients", "10", "cycles_per_sec"),
            ("suites", "clients", "10_dict", "cycles_per_sec"),
        ),
    ]
    for label, now_path, ref_path in pairs:
        now, ref = _rate(payload, *now_path), _rate(payload, *ref_path)
        if now is None or not ref:
            continue
        floor = ref * (1.0 - max_regression)
        if now < floor:
            failures.append(
                f"columnar {label} below dict reference: {now:,.1f} < "
                f"{floor:,.1f} (dict {ref:,.1f}, allowed -{max_regression:.0%})"
            )
    return failures


def compare_against(
    payload: Dict[str, object],
    baseline: Dict[str, object],
    max_regression: float,
) -> List[str]:
    """CI gate: the dispatch and end-to-end events/sec must not fall more
    than ``max_regression`` below the committed baseline.  Returns the
    list of violated checks (empty = pass)."""
    failures: List[str] = []
    for label, path in (
        ("dispatch events/sec", ("suites", "dispatch", "events_per_sec")),
        ("10-client events/sec", ("suites", "clients", "10", "events_per_sec")),
        # Codec lanes skip cleanly against pre-live baselines (missing
        # entries are not failures), so old payloads stay valid gates.
        ("codec flat encodes/sec", ("suites", "codec", "flat", "encodes_per_sec")),
        (
            "codec overflow encodes/sec",
            ("suites", "codec", "overflow", "encodes_per_sec"),
        ),
    ):
        now, then = _rate(payload, *path), _rate(baseline, *path)
        if now is None or not then:
            continue
        floor = then * (1.0 - max_regression)
        if now < floor:
            failures.append(
                f"{label} regressed: {now:,.0f} < {floor:,.0f} "
                f"(baseline {then:,.0f}, allowed -{max_regression:.0%})"
            )
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.hotpath",
        description="Micro-benchmark the simulator's per-event hot paths.",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="rounds per benchmark; best kept"
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced sizes for CI smoke runs"
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="output JSON path (default: BENCH_hotpath.json)",
    )
    parser.add_argument(
        "--before",
        default=None,
        metavar="FILE",
        help="embed this earlier payload and record speedup ratios",
    )
    parser.add_argument(
        "--against",
        default=None,
        metavar="FILE",
        help="baseline JSON to compare events/sec against (CI gate)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.2,
        metavar="FRACTION",
        help="allowed events/sec drop vs --against (default: 0.2)",
    )
    parser.add_argument(
        "--max-columnar-regression",
        type=float,
        default=None,
        metavar="FRACTION",
        help=(
            "fail if any columnar lane is more than this fraction slower "
            "than its dict-reference twin in the same payload (target: 0.02)"
        ),
    )
    parser.add_argument(
        "--max-before-regression",
        type=float,
        default=None,
        metavar="FRACTION",
        help=(
            "with --before: fail if any recorded speedup ratio falls "
            "below 1 minus this fraction (hard regression gate)"
        ),
    )
    parser.add_argument(
        "--max-shard-overhead",
        type=float,
        default=None,
        metavar="FRACTION",
        help=(
            "fail if the K=1 sharded run is more than this fraction "
            "slower than the single-channel run (target: 0.02)"
        ),
    )
    parser.add_argument(
        "--profile-top", type=int, default=15, help="profile rows kept"
    )
    args = parser.parse_args(argv)

    payload = run_suite(
        repeats=args.repeats,
        quick=args.quick,
        profile_top=args.profile_top,
        progress=print,
    )

    before_failures: List[str] = []
    if args.before:
        with open(args.before, "r", encoding="utf-8") as handle:
            attach_before(payload, json.load(handle))
        for label, ratio in sorted(payload["speedup_vs_before"].items()):
            print(f"  speedup {label}: {ratio:.2f}x")
        if args.max_before_regression is not None:
            floor = 1.0 - args.max_before_regression
            before_failures = [
                f"{label} regressed vs --before: {ratio:.3f}x < {floor:.3f}x"
                for label, ratio in sorted(
                    payload["speedup_vs_before"].items()
                )
                if ratio < floor
            ]

    out = args.out or "BENCH_hotpath.json"
    directory = os.path.dirname(out)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out}")

    # Every requested gate is evaluated so one failure does not mask
    # another; the exit code aggregates them at the end.
    all_failures: List[str] = list(before_failures)

    if args.max_columnar_regression is not None:
        failures = columnar_regressions(payload, args.max_columnar_regression)
        all_failures.extend(failures)
        if not failures:
            print(
                f"columnar lanes within {args.max_columnar_regression:.0%} "
                "of their dict-reference twins"
            )

    if args.max_shard_overhead is not None:
        overhead = payload["suites"]["shard"].get("k1_overhead")
        if overhead is not None and overhead > args.max_shard_overhead:
            all_failures.append(
                f"K=1 sharded overhead {overhead:+.1%} exceeds "
                f"{args.max_shard_overhead:.0%} of the single-channel run"
            )
        else:
            print(
                f"K=1 sharded overhead {overhead:+.1%} "
                f"(allowed: {args.max_shard_overhead:.0%})"
            )

    if args.against:
        with open(args.against, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        failures = compare_against(payload, baseline, args.max_regression)
        all_failures.extend(failures)
        if not failures:
            print(
                f"within {args.max_regression:.0%} of baseline "
                f"{args.against} ({baseline.get('git_rev', '?')})"
            )

    if all_failures:
        for failure in all_failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
