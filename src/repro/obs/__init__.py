"""repro.obs -- observability for the broadcast-push simulator.

Three pillars, all optional and near-zero-cost when off:

* :mod:`repro.obs.trace` -- a structured event/span tracer with a
  bounded ring-buffer sink and a JSONL file sink.  Emission sites are
  gated on precomputed level flags (see :func:`repro.obs.trace.gate`),
  so a simulation constructed without a tracer pays one ``is None``
  branch per potential event at most.
* :mod:`repro.obs.manifest` -- run-manifest capture (config, seed, git
  revision, package versions, fault knobs) for experiment provenance.
* :mod:`repro.obs.bench` -- the performance harness timing the hot
  simulation loop (events/sec, queries/sec) and the disabled-tracer
  overhead contract; emits ``BENCH_<rev>.json``.

Trace files are dissected by :mod:`repro.obs.analyze` (per-query
timelines, abort-cause breakdowns, per-cycle airtime occupancy), which
backs the ``repro trace`` CLI.
"""

from repro.obs.analyze import TraceAnalyzer
from repro.obs.manifest import RunManifest, git_revision, write_manifest
from repro.obs.trace import (
    NULL_TRACER,
    JsonlSink,
    RingBufferSink,
    TraceLevel,
    Tracer,
    gate,
)

__all__ = [
    "JsonlSink",
    "NULL_TRACER",
    "RingBufferSink",
    "RunManifest",
    "TraceAnalyzer",
    "TraceLevel",
    "Tracer",
    "gate",
    "git_revision",
    "write_manifest",
]
