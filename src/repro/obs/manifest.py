"""Run manifests: everything needed to re-run or attribute a result.

A manifest captures the complete provenance of one simulation or
experiment run: the full parameter set (including fault knobs), the
seed(s), the repro package version, the git revision the code ran at,
interpreter/platform identifiers, and the versions of the optional
test/bench packages when present.  Experiment CSVs reference their
manifest in a leading comment row (see
:func:`repro.experiments.runner.write_sweep_csv`), so a results file
can always be traced back to the exact configuration that produced it.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Sequence

from repro.config import ModelParameters

#: Optional packages whose versions are worth recording when installed.
_INTERESTING_PACKAGES = ("pytest", "hypothesis", "networkx", "pytest-benchmark")


def git_revision(short: bool = True, cwd: Optional[str] = None) -> str:
    """The current git revision, or ``"unknown"`` outside a checkout."""
    cmd = ["git", "rev-parse", "--short" if short else "--verify", "HEAD"]
    try:
        out = subprocess.run(
            cmd,
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def package_versions() -> Dict[str, str]:
    """Versions of the interpreter, repro, and optional dependencies."""
    from repro import __version__

    versions = {
        "python": platform.python_version(),
        "repro": __version__,
    }
    try:
        from importlib import metadata
    except ImportError:  # pragma: no cover - py3.10+ always has it
        return versions
    for name in _INTERESTING_PACKAGES:
        try:
            versions[name] = metadata.version(name)
        except metadata.PackageNotFoundError:
            continue
    return versions


@dataclass
class RunManifest:
    """The provenance record of one run."""

    #: repro package version (also embedded in trace headers).
    version: str
    git_rev: str
    platform: str
    packages: Dict[str, str]
    #: Full parameter tree as nested plain dicts (JSON-ready).
    params: Dict[str, Any]
    seed: Optional[int] = None
    scheme: Optional[str] = None
    #: Seeds of a multi-seed experiment (runner provenance).
    seeds: Sequence[int] = ()
    #: Free-form caller context (experiment name, sweep axis, ...).
    extra: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def collect(
        cls,
        params: Optional[ModelParameters] = None,
        seed: Optional[int] = None,
        scheme: Optional[str] = None,
        seeds: Sequence[int] = (),
        extra: Optional[Dict[str, Any]] = None,
    ) -> "RunManifest":
        """Build a manifest from the current environment and ``params``."""
        from repro import __version__

        return cls(
            version=__version__,
            git_rev=git_revision(),
            platform=f"{platform.system()}-{platform.machine()}-{sys.implementation.name}",
            packages=package_versions(),
            params=dataclasses.asdict(params) if params is not None else {},
            seed=seed if seed is not None else _seed_of(params),
            scheme=scheme,
            seeds=tuple(seeds),
            extra=dict(extra or {}),
        )

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["seeds"] = list(self.seeds)
        return data

    def write(self, path: str) -> Path:
        """Write the manifest as pretty-printed JSON; returns the path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return target

    @property
    def fault_knobs(self) -> Dict[str, Any]:
        """The fault-parameter subtree (empty dict when params absent)."""
        return dict(self.params.get("faults", {}))


def _seed_of(params: Optional[ModelParameters]) -> Optional[int]:
    return params.sim.seed if params is not None else None


def write_manifest(
    path: str,
    params: Optional[ModelParameters] = None,
    seed: Optional[int] = None,
    scheme: Optional[str] = None,
    seeds: Sequence[int] = (),
    extra: Optional[Dict[str, Any]] = None,
) -> Path:
    """Collect-and-write convenience used by the CLI and the runner."""
    manifest = RunManifest.collect(
        params=params, seed=seed, scheme=scheme, seeds=seeds, extra=extra
    )
    return manifest.write(path)


def load_manifest(path: str) -> Dict[str, Any]:
    """Read a manifest JSON file back as a plain dict."""
    return json.loads(Path(path).read_text())
