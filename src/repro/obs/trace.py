"""Structured event tracing for the simulator.

Every trace event is one flat dict: ``t`` (simulation time), ``kind``
(one of the ``EV_*`` constants below), plus kind-specific fields.  The
flat shape keeps the JSONL sink line-oriented and lets the analyzer
group by any field without schema knowledge.

Overhead contract
-----------------
Tracing is *opt-in per simulation*.  Components never call
``tracer.emit`` directly on a hot path; they hold a per-level reference
computed once at construction time via :func:`gate`::

    self._trace_q = gate(tracer, "queries")   # None unless QUERY level on
    ...
    if self._trace_q is not None:
        self._trace_q.emit(EV_QUERY_BEGIN, client=..., txn=...)

so a simulation with no tracer -- or a tracer at a lower level -- pays
exactly one ``is None`` test per potential event.  The bench harness
(:mod:`repro.obs.bench`) measures this contract: disabled-mode overhead
must stay within 5% of an untraced control run.

Levels
------
``CYCLE``  -- O(cycles): server-side cycle/program events.
``QUERY``  -- O(attempts): query lifecycle, aborts with cause chains,
              per-cycle fault fates, resynchronizations.
``READ``   -- O(reads): individual reads, control decodes, slot losses.
``ENGINE`` -- O(events): one record per simulation-engine dispatch.
"""

from __future__ import annotations

import enum
import json
from collections import deque
from typing import IO, Any, Callable, Deque, Dict, List, Optional, Sequence

# -- event kinds -----------------------------------------------------------

#: First record of every trace: version, scheme, seed, level, manifest.
EV_HEADER = "trace.header"

# CYCLE level (server side, O(cycles)).
EV_CYCLE_START = "cycle.start"
EV_CYCLE_END = "cycle.end"
EV_PROGRAM_BUILD = "program.build"
#: Per-shard cycle start (sharded mode only, one per shard per cycle):
#: carries ``shard`` plus the shard program's slot breakdown, while the
#: plain ``cycle.start`` carries the superframe totals.
EV_SHARD_CYCLE_START = "shard.cycle.start"

# CYCLE level, emitted by the sweep harness (O(cells), outside any one
# simulation): per-cell completion and whole-sweep wall/cpu accounting.
EV_SWEEP_CELL = "sweep.cell"
EV_SWEEP_DONE = "sweep.done"

# QUERY level (client side, O(attempts)).
EV_QUERY_BEGIN = "query.begin"
EV_QUERY_ACCEPT = "query.accept"
EV_QUERY_ABORT = "query.abort"
EV_CLIENT_RESYNC = "client.resync"
EV_CACHE_FLUSH = "cache.flush"
EV_FAULT_REPORT_MISSED = "fault.report_missed"
EV_FAULT_REPORT_DELAYED = "fault.report_delayed"
EV_FAULT_TRUNCATED = "fault.truncated"

# QUERY level: resilience layer (see repro.resilience).
EV_RESILIENCE_RETRY = "resilience.retry"
EV_RESILIENCE_DEADLINE = "resilience.deadline"
EV_RESILIENCE_WATCHDOG = "resilience.watchdog"
EV_RESILIENCE_CRASH = "resilience.crash"
EV_RESILIENCE_RESTART = "resilience.restart"
EV_RESILIENCE_CHECKPOINT = "resilience.checkpoint"
EV_RESILIENCE_RESTORE = "resilience.restore"
EV_RESILIENCE_DEGRADE = "resilience.degrade"

# READ level (client side, O(reads)).
EV_QUERY_READ = "query.read"
EV_CONTROL_DECODE = "control.decode"
EV_FAULT_READ_LOST = "fault.read_lost"

# ENGINE level (O(simulation events)).
EV_ENGINE_STEP = "engine.step"


class TraceLevel(enum.IntEnum):
    """How deep the tracer records; each level includes the ones above."""

    OFF = 0
    CYCLE = 1
    QUERY = 2
    READ = 3
    ENGINE = 4

    @classmethod
    def parse(cls, name: str) -> "TraceLevel":
        try:
            return cls[name.upper()]
        except KeyError:
            known = ", ".join(level.name.lower() for level in cls)
            raise ValueError(f"Unknown trace level {name!r}; known: {known}")


class RingBufferSink:
    """Keeps the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._events: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self.dropped = 0

    def write(self, event: Dict[str, Any]) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)

    def close(self) -> None:
        """Nothing to release; present for sink-interface symmetry."""

    @property
    def events(self) -> List[Dict[str, Any]]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)


class JsonlSink:
    """Appends one JSON object per line to a file."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._file: Optional[IO[str]] = open(path, "w", encoding="utf-8")

    def write(self, event: Dict[str, Any]) -> None:
        if self._file is None:
            raise RuntimeError(f"JsonlSink {self.path} is closed")
        self._file.write(json.dumps(event, separators=(",", ":")) + "\n")

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


class Tracer:
    """Routes events above the configured level to every sink.

    The per-level boolean attributes (``cycles`` .. ``engine``) are
    computed once so call sites -- via :func:`gate` -- can gate on a
    plain ``is None`` check instead of comparing levels per event.
    """

    def __init__(
        self,
        level: TraceLevel = TraceLevel.QUERY,
        sinks: Sequence[object] = (),
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.level = TraceLevel(level)
        self.sinks = list(sinks)
        self._clock = clock
        self.cycles = self.level >= TraceLevel.CYCLE
        self.queries = self.level >= TraceLevel.QUERY
        self.reads = self.level >= TraceLevel.READ
        self.engine = self.level >= TraceLevel.ENGINE

    @property
    def enabled(self) -> bool:
        return self.level > TraceLevel.OFF and bool(self.sinks)

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the simulation clock; events stamp ``t`` from it."""
        self._clock = clock

    def emit(self, kind: str, **fields: Any) -> None:
        event: Dict[str, Any] = {
            "t": self._clock() if self._clock is not None else 0.0,
            "kind": kind,
        }
        event.update(fields)
        for sink in self.sinks:
            sink.write(event)

    def header(self, **fields: Any) -> None:
        """Emit the :data:`EV_HEADER` record (call once, first)."""
        self.emit(EV_HEADER, level=self.level.name.lower(), **fields)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


class _NullTracer(Tracer):
    """Shared always-off tracer; every gate on it yields ``None``."""

    def __init__(self) -> None:
        super().__init__(level=TraceLevel.OFF, sinks=())

    def emit(self, kind: str, **fields: Any) -> None:  # pragma: no cover
        pass


NULL_TRACER = _NullTracer()


def gate(tracer: Optional[Tracer], flag: str) -> Optional[Tracer]:
    """The tracer itself when ``flag`` ('cycles'/'queries'/'reads'/
    'engine') is live on it, else ``None`` -- the one-branch idiom every
    instrumented component uses."""
    if tracer is None or not tracer.enabled or not getattr(tracer, flag):
        return None
    return tracer


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL trace file back into a list of event dicts."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
