"""Throughput benchmark for the simulator and its tracing overhead.

Three modes of the same simulation are timed:

* ``control``  -- no tracer at all (the pre-observability baseline);
* ``disabled`` -- a tracer constructed at :data:`TraceLevel.OFF`: every
  instrumentation site collapses to one ``is None`` test, and the
  measured slowdown over ``control`` is the *disabled-mode overhead*
  the subsystem promises to keep within 5%;
* ``ring``     -- full ``READ``-level tracing into an in-memory ring
  buffer, the realistic cost of running with tracing on.

Each mode runs ``repeats`` times and the *minimum* wall time is kept
(the usual noise-robust estimator for short benchmarks).  Throughput is
reported as simulation events per second (the engine's dispatch counter)
and queries per second (finished attempts across all clients).

Run as a module::

    python -m repro.obs.bench --scenario smoke --repeats 3
    python -m repro.obs.bench --out results/BENCH_baseline.json

The output file defaults to ``BENCH_<git-rev>.json`` so successive
revisions can be diffed; ``--max-overhead`` turns the overhead contract
into an exit code for CI.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import statistics
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.config import DEFAULTS, ModelParameters
from repro.obs.manifest import git_revision, package_versions
from repro.obs.trace import JsonlSink, RingBufferSink, TraceLevel, Tracer

#: Modes every scenario is timed under.
MODES = ("control", "disabled", "ring")


@dataclass(frozen=True)
class BenchScenario:
    """One benchmarkable simulation configuration."""

    name: str
    description: str
    params: ModelParameters
    scheme: str
    ring_capacity: int = 1 << 16


def _fig5_params() -> ModelParameters:
    # The standard Figure 5 operating point: FULL_PROFILE dimensions at
    # the paper's default workload, one representative aborting scheme.
    return DEFAULTS.with_sim(
        num_cycles=150, warmup_cycles=10, num_clients=10, seed=11
    )


def _smoke_params() -> ModelParameters:
    return DEFAULTS.with_sim(
        num_cycles=30, warmup_cycles=5, num_clients=4, seed=11
    )


def scenarios() -> Dict[str, BenchScenario]:
    return {
        "fig5": BenchScenario(
            name="fig5",
            description=(
                "Standard Figure 5 scenario: paper defaults, 150 cycles, "
                "10 clients, invalidation-only"
            ),
            params=_fig5_params(),
            scheme="inval",
        ),
        "smoke": BenchScenario(
            name="smoke",
            description="CI smoke: 30 cycles, 4 clients, invalidation-only",
            params=_smoke_params(),
            scheme="inval",
        ),
    }


def _make_tracer(mode: str, scenario: BenchScenario) -> Optional[Tracer]:
    if mode == "control":
        return None
    if mode == "disabled":
        # Sinks attached but level OFF: enabled is False, every gate()
        # yields None -- this is the deployed-but-quiet configuration.
        return Tracer(
            level=TraceLevel.OFF,
            sinks=[RingBufferSink(scenario.ring_capacity)],
        )
    if mode == "ring":
        return Tracer(
            level=TraceLevel.READ,
            sinks=[RingBufferSink(scenario.ring_capacity)],
        )
    raise ValueError(f"Unknown bench mode {mode!r}")


def _run_once(scenario: BenchScenario, mode: str) -> Dict[str, float]:
    # Import here: the bench is the only obs module that needs the whole
    # simulator, and repro.obs must stay importable from low-level code.
    from repro.experiments.schemes import scheme_factory
    from repro.runtime import Simulation

    tracer = _make_tracer(mode, scenario)
    sim = Simulation(
        scenario.params,
        scheme_factory=scheme_factory(scenario.scheme),
        tracer=tracer,
    )
    # Pay down garbage inherited from the previous run (a traced run leaves
    # thousands of event dicts behind) so no mode is billed for another
    # mode's collection.
    gc.collect()
    start = time.perf_counter()
    result = sim.run()
    elapsed = time.perf_counter() - start
    attempts = sum(len(client.completed) for client in result.clients)
    out = {
        "seconds": elapsed,
        "events": float(sim.env.events_processed),
        "queries": float(attempts),
        "cycles": float(result.cycles_completed),
    }
    if tracer is not None and tracer.sinks:
        sink = tracer.sinks[0]
        out["trace_events"] = float(len(sink))
        out["trace_dropped"] = float(sink.dropped)
    return out


def run_mode(
    scenario: BenchScenario, mode: str, repeats: int
) -> Dict[str, float]:
    """Time one mode ``repeats`` times; keep the fastest run's numbers."""
    best: Optional[Dict[str, float]] = None
    for _ in range(max(1, repeats)):
        sample = _run_once(scenario, mode)
        if best is None or sample["seconds"] < best["seconds"]:
            best = sample
    assert best is not None
    seconds = best["seconds"]
    best["events_per_sec"] = best["events"] / seconds if seconds else 0.0
    best["queries_per_sec"] = best["queries"] / seconds if seconds else 0.0
    return best


def run_bench(
    scenario: BenchScenario,
    repeats: int = 3,
    modes: Sequence[str] = MODES,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Run every mode and assemble the ``BENCH_<rev>.json`` payload."""
    # Repeats are interleaved round-robin across modes: slow drift in machine
    # load (thermal throttling, noisy neighbours) then biases every mode
    # equally instead of whichever mode happens to run last, which would
    # otherwise masquerade as tracer overhead.
    rounds = max(1, repeats)
    results: Dict[str, Dict[str, float]] = {}
    round_seconds: Dict[str, List[float]] = {mode: [] for mode in modes}
    for rep in range(rounds):
        # Rotate the in-round order so no mode always follows the same
        # predecessor (whose cache/allocator footprint it would inherit).
        order = list(modes[rep % len(modes):]) + list(modes[: rep % len(modes)])
        if progress is not None:
            progress(f"  round {rep + 1}/{rounds}: {', '.join(order)} ...")
        for mode in order:
            sample = _run_once(scenario, mode)
            round_seconds[mode].append(sample["seconds"])
            best = results.get(mode)
            if best is None or sample["seconds"] < best["seconds"]:
                results[mode] = sample
    for sample in results.values():
        seconds = sample["seconds"]
        sample["events_per_sec"] = sample["events"] / seconds if seconds else 0.0
        sample["queries_per_sec"] = (
            sample["queries"] / seconds if seconds else 0.0
        )

    payload: Dict[str, object] = {
        "bench": "repro.obs.bench",
        "git_rev": git_revision(),
        "packages": package_versions(),
        "platform": platform.platform(),
        "scenario": scenario.name,
        "description": scenario.description,
        "scheme": scenario.scheme,
        "repeats": repeats,
        "modes": results,
    }
    control = results.get("control")
    disabled = results.get("disabled")
    if control and disabled and control["seconds"] > 0:
        # Overhead from the MEDIAN of per-round paired ratios, not the ratio
        # of mins: each round runs disabled right after control under the
        # same machine conditions, so the paired ratio cancels load drift
        # and the median discards rounds hit by a noise spike.
        ratios = [
            d / c
            for c, d in zip(
                round_seconds["control"], round_seconds["disabled"]
            )
            if c > 0
        ]
        payload["disabled_overhead"] = statistics.median(ratios) - 1.0
    if control:
        payload["events_per_sec"] = control["events_per_sec"]
        payload["queries_per_sec"] = control["queries_per_sec"]
    return payload


def write_trace_sample(scenario: BenchScenario, path: str) -> int:
    """One fully-traced run of ``scenario`` into a JSONL file (a CI
    artifact reviewers can feed to ``repro trace``); returns the event
    count."""
    from repro.experiments.schemes import scheme_factory
    from repro.runtime import Simulation

    ring = RingBufferSink(scenario.ring_capacity)
    tracer = Tracer(level=TraceLevel.READ, sinks=[JsonlSink(path), ring])
    tracer.header(
        scenario=scenario.name,
        scheme=scenario.scheme,
        seed=scenario.params.sim.seed,
        version=package_versions()["repro"],
        git_rev=git_revision(),
    )
    sim = Simulation(
        scenario.params,
        scheme_factory=scheme_factory(scenario.scheme),
        tracer=tracer,
    )
    sim.run()
    tracer.close()
    return len(ring) + 1  # + the header


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.bench",
        description="Benchmark simulator throughput and tracing overhead.",
    )
    parser.add_argument(
        "--scenario",
        choices=sorted(scenarios()),
        default="fig5",
        help="which simulation to benchmark (default: fig5)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="runs per mode; min is kept"
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output JSON path (default: BENCH_<git-rev>.json)",
    )
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=None,
        metavar="FRACTION",
        help="exit non-zero if disabled-mode overhead exceeds this "
        "fraction (e.g. 0.05 for the 5%% contract)",
    )
    parser.add_argument(
        "--trace-sample",
        default=None,
        metavar="PATH",
        help="also write one fully-traced run to this JSONL file",
    )
    args = parser.parse_args(argv)

    scenario = scenarios()[args.scenario]
    print(f"benchmarking scenario={scenario.name}: {scenario.description}")
    payload = run_bench(scenario, repeats=args.repeats, progress=print)

    out = args.out or f"BENCH_{payload['git_rev']}.json"
    directory = os.path.dirname(out)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out}")

    for mode in MODES:
        if mode in payload["modes"]:
            stats = payload["modes"][mode]
            print(
                f"  {mode:>8}: {stats['seconds']:.3f}s  "
                f"{stats['events_per_sec']:,.0f} events/s  "
                f"{stats['queries_per_sec']:,.0f} queries/s"
            )
    overhead = payload.get("disabled_overhead")
    if overhead is not None:
        print(f"  disabled-tracer overhead: {overhead:+.2%}")

    if args.trace_sample:
        count = write_trace_sample(scenario, args.trace_sample)
        print(f"wrote {count} events to {args.trace_sample}")

    if (
        args.max_overhead is not None
        and overhead is not None
        and overhead > args.max_overhead
    ):
        print(
            f"FAIL: disabled-tracer overhead {overhead:.2%} exceeds "
            f"--max-overhead {args.max_overhead:.2%}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
