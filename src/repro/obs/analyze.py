"""Trace dissection: timelines, abort causes, airtime occupancy.

The analyzer consumes the flat event dicts produced by
:mod:`repro.obs.trace` (from a JSONL file or straight from a
:class:`~repro.obs.trace.RingBufferSink`) and reconstructs the views the
paper's aggregate numbers cannot give:

* per-query **timelines** -- every event of one attempt in order, so a
  single abort can be traced to the cycle and cause that doomed it;
* **abort breakdowns** -- counts by reason and by root cause event,
  exactly matching the ``abort.*`` counters of
  :class:`~repro.stats.metrics.MetricsRegistry` when restricted to
  measured attempts (the trace<->metrics consistency suite pins this);
* **airtime occupancy** -- per-cycle control/index/data/overflow slot
  shares, cross-checkable against the analytic sizing model (Fig 7).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.trace import (
    EV_CYCLE_START,
    EV_HEADER,
    EV_QUERY_ABORT,
    EV_QUERY_ACCEPT,
    EV_QUERY_BEGIN,
    EV_QUERY_READ,
    EV_SHARD_CYCLE_START,
    RingBufferSink,
    read_jsonl,
)

#: Event kinds that belong to one query attempt (keyed by ``txn``).
_QUERY_KINDS = frozenset(
    (EV_QUERY_BEGIN, EV_QUERY_READ, EV_QUERY_ACCEPT, EV_QUERY_ABORT)
)


class TraceAnalyzer:
    """Index a list of trace events for the summary views."""

    def __init__(self, events: Iterable[Dict[str, Any]]) -> None:
        self.events: List[Dict[str, Any]] = list(events)
        self.header: Optional[Dict[str, Any]] = next(
            (e for e in self.events if e.get("kind") == EV_HEADER), None
        )

    @classmethod
    def from_jsonl(cls, path: str) -> "TraceAnalyzer":
        return cls(read_jsonl(path))

    @classmethod
    def from_ring(cls, sink: RingBufferSink) -> "TraceAnalyzer":
        return cls(sink.events)

    # -- summary -----------------------------------------------------------

    def kind_counts(self) -> Dict[str, int]:
        return dict(Counter(e.get("kind", "?") for e in self.events))

    def summary(self) -> Dict[str, Any]:
        """Headline numbers for ``repro trace summarize``."""
        kinds = self.kind_counts()
        times = [e["t"] for e in self.events if "t" in e]
        accepts = [e for e in self.events if e.get("kind") == EV_QUERY_ACCEPT]
        aborts = [e for e in self.events if e.get("kind") == EV_QUERY_ABORT]
        cycles = [
            e.get("cycle") for e in self.events if e.get("kind") == EV_CYCLE_START
        ]
        return {
            "events": len(self.events),
            "kinds": kinds,
            "t_min": min(times) if times else 0.0,
            "t_max": max(times) if times else 0.0,
            "cycles": len(cycles),
            "last_cycle": max(cycles) if cycles else None,
            "accepted": len(accepts),
            "aborted": len(aborts),
            "accepted_measured": sum(1 for e in accepts if e.get("measured")),
            "aborted_measured": sum(1 for e in aborts if e.get("measured")),
            "header": self.header,
        }

    # -- timelines ---------------------------------------------------------

    def timelines(
        self,
        txn: Optional[str] = None,
        client: Optional[int] = None,
    ) -> Dict[str, List[Dict[str, Any]]]:
        """Per-attempt event lists, in emission order.

        Filter by exact transaction id and/or by client.  Keys are
        transaction ids (``c<client>.q<query>.a<attempt>``).
        """
        lines: Dict[str, List[Dict[str, Any]]] = defaultdict(list)
        for event in self.events:
            if event.get("kind") not in _QUERY_KINDS:
                continue
            tid = event.get("txn")
            if tid is None:
                continue
            if txn is not None and tid != txn:
                continue
            if client is not None and event.get("client") != client:
                continue
            lines[tid].append(event)
        return dict(lines)

    # -- aborts ------------------------------------------------------------

    def abort_breakdown(self, measured_only: bool = True) -> Dict[str, int]:
        """Abort counts by reason; with ``measured_only`` this equals the
        registry's ``abort.<reason>`` counters exactly."""
        counts: Counter = Counter()
        for event in self.events:
            if event.get("kind") != EV_QUERY_ABORT:
                continue
            if measured_only and not event.get("measured"):
                continue
            counts[event.get("reason", "unknown")] += 1
        return dict(counts)

    def abort_causes(self, measured_only: bool = False) -> Dict[str, int]:
        """Histogram of *root* causes (first cause-chain entry)."""
        counts: Counter = Counter()
        for event in self.events:
            if event.get("kind") != EV_QUERY_ABORT:
                continue
            if measured_only and not event.get("measured"):
                continue
            chain = event.get("cause") or []
            root = chain[0].get("event", "unknown") if chain else "unknown"
            counts[root] += 1
        return dict(counts)

    def aborts(self, measured_only: bool = True) -> List[Dict[str, Any]]:
        """Every abort event (optionally measured attempts only)."""
        return [
            e
            for e in self.events
            if e.get("kind") == EV_QUERY_ABORT
            and (not measured_only or e.get("measured"))
        ]

    # -- airtime -----------------------------------------------------------

    def airtime(self) -> Dict[int, Dict[str, int]]:
        """Per-cycle slot occupancy from the ``cycle.start`` events."""
        per_cycle: Dict[int, Dict[str, int]] = {}
        for event in self.events:
            if event.get("kind") != EV_CYCLE_START:
                continue
            per_cycle[event["cycle"]] = {
                "control": event.get("control_slots", 0),
                "index": event.get("index_slots", 0),
                "data": event.get("data_slots", 0),
                "overflow": event.get("overflow_slots", 0),
                "total": event.get("slots", 0),
            }
        return per_cycle

    def airtime_totals(self) -> Dict[str, float]:
        """Aggregate occupancy: total slots per segment plus fractions."""
        per_cycle = self.airtime()
        totals = {"control": 0, "index": 0, "data": 0, "overflow": 0, "total": 0}
        for row in per_cycle.values():
            for key in totals:
                totals[key] += row[key]
        out: Dict[str, float] = dict(totals)
        # Fractions are shares of *transmitted* slots.  Single-channel
        # traces have aired == total; sharded traces do not (``slots``
        # on cycle.start is the superframe -- the max shard program --
        # while the segment keys sum over every channel).
        aired = sum(
            totals[key] for key in ("control", "index", "data", "overflow")
        )
        out["aired"] = aired
        grand = aired or totals["total"]
        for key in ("control", "index", "data", "overflow"):
            out[f"{key}_fraction"] = totals[key] / grand if grand else 0.0
        out["cycles"] = len(per_cycle)
        return out

    def shard_airtime(self) -> Dict[int, Dict[str, int]]:
        """Per-shard segment totals from ``shard.cycle.start`` events.

        Empty for single-channel traces -- those events exist only when
        the sharded server (:mod:`repro.shard`) runs with K > 1.  Unlike
        :meth:`airtime`, the ``total`` here is the *shard's own* program
        length; the superframe the clients experience is the max, not
        the sum, of these per cycle (``cycle.start`` carries it).
        """
        per_shard: Dict[int, Dict[str, int]] = {}
        for event in self.events:
            if event.get("kind") != EV_SHARD_CYCLE_START:
                continue
            row = per_shard.setdefault(
                event["shard"],
                {
                    "control": 0,
                    "index": 0,
                    "data": 0,
                    "overflow": 0,
                    "total": 0,
                    "cycles": 0,
                },
            )
            row["control"] += event.get("control_slots", 0)
            row["index"] += event.get("index_slots", 0)
            row["data"] += event.get("data_slots", 0)
            row["overflow"] += event.get("overflow_slots", 0)
            row["total"] += event.get("slots", 0)
            row["cycles"] += 1
        return per_shard
