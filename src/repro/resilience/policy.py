"""Retry policies: how a client re-attempts an aborted query.

The seed client retried immediately, in the same cycle, up to
``max_attempts`` times -- which under a burst fade or a hot-contention
item burns the whole attempt budget without the world having changed.
A :class:`RetryPolicy` decides, per abort, whether to retry at all and
how many broadcast cycles to wait first:

* :class:`ImmediateRetry` -- the seed behaviour, delay always zero;
* :class:`ExponentialBackoff` -- capped exponential backoff in cycles
  with optional seeded-deterministic jitter;
* :class:`CauseAwareRetry` -- reacts per :class:`AbortReason` kind: a
  disconnection-family abort always waits for at least one freshly heard
  cycle (retrying while deaf is pointless), contention-family aborts get
  one immediate retry then back off, and a gone version restarts
  immediately (the retry re-pins a fresh snapshot).

Delays are measured in *heard* broadcast cycles, the only clock a pure
listener has.  All randomness comes from the policy's own seeded RNG,
so schedules are bit-identical under a fixed seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.config import ResilienceParameters
from repro.core.transaction import AbortReason


@dataclass(frozen=True)
class RetryDecision:
    """What to do after one aborted attempt."""

    retry: bool
    #: Broadcast cycles to wait before the next attempt (0 = same cycle).
    delay_cycles: int = 0


class RetryPolicy:
    """Decides whether and when an aborted query attempt is retried."""

    name: str = "abstract"

    def new_query(self) -> None:
        """A fresh query starts; per-query policy state resets."""

    def decide(
        self, attempt: int, reason: Optional[AbortReason]
    ) -> RetryDecision:
        """``attempt`` is the number of attempts already made (>= 1)."""
        raise NotImplementedError


class ImmediateRetry(RetryPolicy):
    """The seed behaviour: always retry, never wait."""

    name = "immediate"

    def decide(
        self, attempt: int, reason: Optional[AbortReason]
    ) -> RetryDecision:
        return RetryDecision(retry=True, delay_cycles=0)


class ExponentialBackoff(RetryPolicy):
    """Capped exponential backoff: ``min(cap, base * 2**(attempt-1))``.

    With ``jitter > 0`` up to ``floor(jitter * delay)`` extra cycles are
    added, drawn from the policy's seeded RNG; the total never exceeds
    the cap, so the cap is a hard bound jitter included.
    """

    name = "backoff"

    def __init__(
        self,
        base: int = 1,
        cap: int = 8,
        jitter: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if base < 0:
            raise ValueError(f"base must be >= 0, got {base}")
        if cap < max(1, base):
            raise ValueError(f"cap must be >= max(1, base), got {cap}")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        self.base = base
        self.cap = cap
        self.jitter = jitter
        self.rng = rng

    def delay_for(self, attempt: int) -> int:
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        delay = min(self.cap, self.base * (2 ** (attempt - 1)))
        if self.jitter > 0 and self.rng is not None:
            span = int(self.jitter * delay)
            if span > 0:
                delay = min(self.cap, delay + self.rng.randrange(span + 1))
        return delay

    def decide(
        self, attempt: int, reason: Optional[AbortReason]
    ) -> RetryDecision:
        return RetryDecision(retry=True, delay_cycles=self.delay_for(attempt))


class CauseAwareRetry(RetryPolicy):
    """Route each :class:`AbortReason` to a tailored schedule.

    * ``DISCONNECTED`` -- the client just missed cycles; wait the backoff
      schedule but never less than one heard cycle (an immediate retry
      would block on the dead channel and burn an attempt per dead cycle).
    * ``VERSION_GONE`` -- the pinned snapshot aged off the air; retry
      immediately, the fresh attempt pins a new one.
    * contention family (``INVALIDATED``, ``STALE_CACHE``,
      ``CYCLE_DETECTED``) -- one immediate retry (the conflicting update
      already landed, a re-read may succeed right away), then back off to
      let the hot interval drain.
    """

    name = "cause-aware"

    def __init__(self, backoff: ExponentialBackoff) -> None:
        self.backoff = backoff
        self._contention_aborts = 0

    def new_query(self) -> None:
        self._contention_aborts = 0

    def decide(
        self, attempt: int, reason: Optional[AbortReason]
    ) -> RetryDecision:
        if reason is AbortReason.DISCONNECTED:
            return RetryDecision(
                retry=True, delay_cycles=max(1, self.backoff.delay_for(attempt))
            )
        if reason is AbortReason.VERSION_GONE:
            return RetryDecision(retry=True, delay_cycles=0)
        self._contention_aborts += 1
        if self._contention_aborts == 1:
            return RetryDecision(retry=True, delay_cycles=0)
        return RetryDecision(
            retry=True,
            delay_cycles=self.backoff.delay_for(self._contention_aborts - 1),
        )


#: Factory registry, kept in sync with ``repro.config.RETRY_POLICIES``.
POLICY_NAMES = ("immediate", "backoff", "cause-aware")


def build_policy(
    res: ResilienceParameters, rng: Optional[random.Random] = None
) -> RetryPolicy:
    """Instantiate the configured policy with its own seeded RNG."""
    if res.retry_policy == "immediate":
        return ImmediateRetry()
    backoff = ExponentialBackoff(
        base=res.backoff_base,
        cap=res.backoff_cap,
        jitter=res.backoff_jitter,
        rng=rng,
    )
    if res.retry_policy == "backoff":
        return backoff
    if res.retry_policy == "cause-aware":
        return CauseAwareRetry(backoff)
    known = ", ".join(POLICY_NAMES)
    raise ValueError(f"Unknown retry policy {res.retry_policy!r}; known: {known}")
