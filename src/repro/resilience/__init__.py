"""Client-side resilience: retry policies, recovery, degradation.

The fault layer (:mod:`repro.faults`) decides what the air interface
loses; this package decides *how the client fights back*.  It bundles,
per client:

* a :class:`~repro.resilience.policy.RetryPolicy` routing every aborted
  attempt (immediate / capped exponential backoff / abort-cause-aware);
* a :class:`~repro.resilience.watchdog.StarvationWatchdog` catching
  queries that abort N consecutive attempts;
* crash-restart recovery via :mod:`~repro.resilience.checkpoint`:
  checkpointable state plus the incremental-catch-up vs
  flush-and-rejoin resync choice;
* a :class:`~repro.resilience.degradation.DegradationLadder` stepping
  the cache down (autoprefetch off, then bypass) under sustained
  control-info loss and back up when the channel heals.

Everything is seeded from its own RNG tree -- the workload stream is
never touched -- and all defaults reproduce the seed behaviour exactly:
:func:`build_client_resilience` returns ``None`` for inactive
parameters, and the client machine then runs its legacy fast path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.config import ResilienceParameters
from repro.resilience.checkpoint import (
    CheckpointStore,
    ClientCheckpoint,
    CrashSchedule,
    select_resync,
)
from repro.resilience.degradation import DegradationLadder, DegradationLevel
from repro.resilience.policy import (
    POLICY_NAMES,
    CauseAwareRetry,
    ExponentialBackoff,
    ImmediateRetry,
    RetryDecision,
    RetryPolicy,
    build_policy,
)
from repro.resilience.watchdog import StarvationWatchdog

#: Salt for the resilience RNG tree: same idea as the fault injector's,
#: a different constant so the two trees never collide on a seed.
_SEED_SALT = 0x5EED_4E54


@dataclass
class ClientResilience:
    """One client's resilience bundle, wired by the simulation."""

    params: ResilienceParameters
    policy: RetryPolicy
    watchdog: Optional[StarvationWatchdog] = None
    checkpoints: Optional[CheckpointStore] = None
    crashes: Optional[CrashSchedule] = None
    ladder: Optional[DegradationLadder] = None


def resilience_seed(res: ResilienceParameters, sim_seed: int) -> int:
    """The root seed of the resilience RNG tree for one run."""
    return res.seed if res.seed is not None else sim_seed ^ _SEED_SALT


def build_client_resilience(
    res: ResilienceParameters,
    num_cycles: int,
    rng: random.Random,
) -> Optional[ClientResilience]:
    """Build one client's bundle, or ``None`` when resilience is off.

    ``rng`` is this client's branch of the resilience tree; each
    component draws its own sub-seed in a fixed order so toggling one
    knob never perturbs another component's schedule.
    """
    if not res.active:
        return None
    policy_rng = random.Random(rng.getrandbits(64))
    crash_rng = random.Random(rng.getrandbits(64))
    bundle = ClientResilience(params=res, policy=build_policy(res, policy_rng))
    if res.watchdog_attempts > 0:
        bundle.watchdog = StarvationWatchdog(res.watchdog_attempts)
    if res.checkpoint_interval > 0:
        bundle.checkpoints = CheckpointStore(res.checkpoint_interval)
    if res.crash_rate > 0:
        bundle.crashes = CrashSchedule.draw(
            crash_rng, num_cycles, res.crash_rate, res.crash_length
        )
    if res.degrade_after > 0:
        bundle.ladder = DegradationLadder(res.degrade_after, res.recover_after)
    return bundle


__all__ = [
    "CauseAwareRetry",
    "CheckpointStore",
    "ClientCheckpoint",
    "ClientResilience",
    "CrashSchedule",
    "DegradationLadder",
    "DegradationLevel",
    "ExponentialBackoff",
    "ImmediateRetry",
    "POLICY_NAMES",
    "RetryDecision",
    "RetryPolicy",
    "StarvationWatchdog",
    "build_client_resilience",
    "build_policy",
    "resilience_seed",
    "select_resync",
]
