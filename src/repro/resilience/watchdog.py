"""The starvation watchdog: detect a client that aborts and aborts.

A query that keeps aborting attempt after attempt is starving -- usually
because the client's cache is poisoned with hot items or its scheme
state traps every read in the same conflict.  The watchdog counts
*consecutive* aborted attempts across the client's query stream; when
the count reaches the threshold it escalates, and the client machine
responds by flushing the cache and (if a degradation ladder is wired)
forcing one step down.
"""

from __future__ import annotations


class StarvationWatchdog:
    """Escalates after ``threshold`` consecutive aborted attempts."""

    def __init__(self, threshold: int) -> None:
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        self.threshold = threshold
        self.consecutive_aborts = 0
        self.escalations = 0

    def record_attempt(self, committed: bool) -> bool:
        """Feed one finished attempt; returns True when escalating now.

        The counter resets on every commit and after each escalation, so
        escalations fire once per starvation spell, not once per attempt
        beyond the threshold.
        """
        if committed:
            self.consecutive_aborts = 0
            return False
        self.consecutive_aborts += 1
        if self.consecutive_aborts >= self.threshold:
            self.consecutive_aborts = 0
            self.escalations += 1
            return True
        return False
