"""The graceful-degradation ladder: step down under sustained loss.

When the control channel keeps failing (corrupted reports, storms), a
client that keeps trusting its cache pays resync flushes and forced
aborts every few cycles.  The ladder trades read performance for
stability instead:

* ``NORMAL`` -- full behaviour: cache + autoprefetch.
* ``NO_PREFETCH`` -- autoprefetch off; cached entries are still
  invalidated by every report (so they are never stale), but no new
  values are grabbed off the air speculatively.  This is the paper's
  invalidation-only cache semantics, and strictly *less* caching than
  NORMAL -- trivially still safe.
* ``BYPASS_CACHE`` -- the cache is flushed and bypassed entirely; every
  read goes to the air.  Nothing cached means nothing stale, whatever
  the channel loses next.

The ladder steps down after ``step_down_after`` consecutive
fault-degraded cycles and steps back up one level after
``step_up_after`` consecutive clean (fully heard) cycles.  Every
transition is reported to the caller so the client machine can trace
and count it.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple


class DegradationLevel(enum.IntEnum):
    """Ladder rungs; higher = more degraded (and more conservative)."""

    NORMAL = 0
    NO_PREFETCH = 1
    BYPASS_CACHE = 2


#: A transition as ``(from_level, to_level)``.
Transition = Tuple[DegradationLevel, DegradationLevel]


class DegradationLadder:
    """Tracks channel health and moves between degradation levels."""

    def __init__(self, step_down_after: int, step_up_after: int) -> None:
        if step_down_after <= 0:
            raise ValueError(
                f"step_down_after must be positive, got {step_down_after}"
            )
        if step_up_after <= 0:
            raise ValueError(f"step_up_after must be positive, got {step_up_after}")
        self.step_down_after = step_down_after
        self.step_up_after = step_up_after
        self.level = DegradationLevel.NORMAL
        self._faulty_streak = 0
        self._clean_streak = 0
        self.transitions = 0

    def record_cycle(self, faulty: bool) -> Optional[Transition]:
        """Feed one cycle's fate; returns a transition if one fired."""
        if faulty:
            self._clean_streak = 0
            self._faulty_streak += 1
            if (
                self._faulty_streak >= self.step_down_after
                and self.level < DegradationLevel.BYPASS_CACHE
            ):
                self._faulty_streak = 0
                return self._move(DegradationLevel(self.level + 1))
            return None
        self._faulty_streak = 0
        self._clean_streak += 1
        if (
            self._clean_streak >= self.step_up_after
            and self.level > DegradationLevel.NORMAL
        ):
            self._clean_streak = 0
            return self._move(DegradationLevel(self.level - 1))
        return None

    def force_step_down(self) -> Optional[Transition]:
        """Escalation hook (watchdog): drop one level immediately."""
        if self.level >= DegradationLevel.BYPASS_CACHE:
            return None
        self._faulty_streak = 0
        self._clean_streak = 0
        return self._move(DegradationLevel(self.level + 1))

    def _move(self, to: DegradationLevel) -> Transition:
        transition = (self.level, to)
        self.level = to
        self.transitions += 1
        return transition
