"""Crash-restart recovery: checkpointable client state and resync choice.

A *crash* loses everything a client holds in memory -- cache, scheme
control state, the active query attempt -- and keeps the client off the
air for a multi-cycle outage.  On restart the client may restore the
latest :class:`ClientCheckpoint` and then has two resync protocols:

* **incremental catch-up** -- if the control segment's w-window
  retransmission covers every cycle between the checkpoint and the
  restart (and the outage is within ``catchup_window``), replay the
  missed invalidation reports over the restored cache, exactly like the
  live resynchronization path (§7) whose safety argument it inherits;
* **full flush-and-rejoin** -- otherwise the restored cache cannot be
  trusted and is dropped; the client rejoins cold.

Scheme control state is restored through the
:meth:`~repro.core.base.Scheme.restore_state` hook, which receives the
number of unheard cycles so schemes with gap-sensitive state (SGT's
serialization graph) can refuse the stale part and keep only what stays
safe across a gap.

Crash schedules reuse the storm-window machinery of
:mod:`repro.faults.models` with an independent RNG, so crashes are
seeded and bit-identical per (seed, client) like every other impairment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.faults.models import compute_storm_windows

if TYPE_CHECKING:  # pragma: no cover - avoids a client<->resilience cycle
    from repro.client.cache import CacheEntry


@dataclass
class ClientCheckpoint:
    """A durable snapshot of one client's recoverable state."""

    #: Last cycle fully heard before the checkpoint was taken.
    cycle: int
    #: Current-partition cache entries (copies, autoprefetches excluded).
    cache_current: List["CacheEntry"] = field(default_factory=list)
    #: Old-partition cache entries (multiversion caching only).
    cache_old: List["CacheEntry"] = field(default_factory=list)
    #: Opaque per-scheme control state from ``Scheme.export_state``.
    scheme_state: Optional[Dict[str, Any]] = None


class CheckpointStore:
    """Holds the latest checkpoint, written every ``interval`` cycles.

    Only the newest snapshot matters for recovery, so the store keeps
    exactly one (plus a save counter for the metrics layer).
    """

    def __init__(self, interval: int) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = interval
        self.latest: Optional[ClientCheckpoint] = None
        self.saves = 0

    def due(self, cycle: int) -> bool:
        """Is a checkpoint due at this heard cycle?"""
        return cycle % self.interval == 0

    def save(self, checkpoint: ClientCheckpoint) -> None:
        self.latest = checkpoint
        self.saves += 1


class CrashSchedule:
    """Seeded multi-cycle crash outages for one client.

    ``windows`` are inclusive ``(first, last)`` cycle ranges during which
    the client is down; they are drawn independently per client (a crash
    is a property of one machine, unlike a cell-wide storm).
    """

    def __init__(self, windows: List[Tuple[int, int]]) -> None:
        self.windows = list(windows)
        self._by_start = {first: (first, last) for first, last in self.windows}

    @classmethod
    def draw(
        cls,
        rng: random.Random,
        num_cycles: int,
        rate: float,
        mean_length: float,
    ) -> "CrashSchedule":
        return cls(compute_storm_windows(rng, num_cycles, rate, mean_length))

    def crash_starting_at(self, cycle: int) -> Optional[Tuple[int, int]]:
        """The crash window starting exactly at ``cycle``, if any."""
        return self._by_start.get(cycle)

    def is_down(self, cycle: int) -> bool:
        return any(first <= cycle <= last for first, last in self.windows)


def select_resync(
    checkpoint: Optional[ClientCheckpoint],
    restart_cycle: int,
    catchup_window: int,
    window_covered: bool,
) -> str:
    """Pick the resync protocol for a restart at ``restart_cycle``.

    Returns ``"catchup"`` when a checkpoint exists, the outage since it
    is within ``catchup_window`` cycles, and the control window actually
    retransmits every missed report; else ``"rejoin"`` (cold start).
    """
    if checkpoint is None:
        return "rejoin"
    outage = restart_cycle - checkpoint.cycle
    if outage <= catchup_window and window_covered:
        return "catchup"
    return "rejoin"
