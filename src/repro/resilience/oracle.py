"""The recovery differential oracle: crashes never buy a bad commit.

Resilience earns its keep only if the recovery machinery is *safe*: a
client that crashes, restores a checkpoint, catches up from the
w-window, or degrades its cache must still never commit a readset the
ground-truth oracle of :mod:`repro.verify` rejects.  This module pins
that down as a runnable matrix -- scheme x fault mix x retry policy x
seed -- with four checks per cell:

1. **serializability** -- zero :func:`repro.verify.violations` among all
   committed transactions of the crashed, faulted run;
2. **liveness** -- no client stalls (a restarted client with runway left
   must at least *attempt* again), and some crashed client commits after
   its last crash (recovery completes end to end, not just survives);
3. **convergence** -- the run keeps a configurable fraction of the
   commit volume of its never-crashed twin (same workload and fault
   seeds, ``crash_rate=0``);
4. **replay** -- rebuilding and rerunning the exact configuration yields
   a bit-identical metrics snapshot (recovery stays deterministic).

``python -m repro.resilience.oracle`` runs the CI smoke matrix and, on
failure, writes one JSON evidence file per failing cell under
``--artifacts`` so the workflow can upload them -- same contract as the
parallel-vs-serial determinism oracle.

The full-depth matrix (5 schemes x 3+ fault mixes x 10+ seeds) lives in
``tests/integration/test_resilience_oracle.py`` and is built from these
same helpers.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.config import ModelParameters
from repro.core.control import ReportSchedule
from repro.core.transaction import TransactionStatus
from repro.experiments.schemes import scheme_factory
from repro.runtime import Simulation
from repro.stats import names as metric_names
from repro.verify import violations

#: Fault mixes the smoke matrix runs under (noise, fades, flaky control).
FAULT_MIXES: Dict[str, Dict[str, float]] = {
    "slot-loss": dict(slot_loss=0.1),
    "burst-loss": dict(burst_rate=0.03, burst_length=5.0),
    "control-loss": dict(control_loss=0.15),
}

#: Retry policies exercised; ``immediate`` keeps the seed's behaviour.
POLICIES: Sequence[str] = ("immediate", "backoff", "cause-aware")

#: CI smoke slice: one scheme per family crossed with everything above.
SMOKE_SCHEMES: Sequence[str] = ("inval+cache", "sgt+cache", "mv-caching")
SMOKE_SEEDS: Sequence[int] = (201, 202)

#: Don't demand post-recovery activity when the last crash ends with
#: fewer cycles than this left -- the client may legitimately still be
#: thinking, backing off, or mid-attempt at the horizon.
LIVENESS_SLACK_CYCLES = 10

#: The crashed run must keep at least this fraction of its never-crashed
#: twin's commit volume (crashes cost availability, not the workload).
CONVERGENCE_FRACTION = 0.2


def oracle_params(seed: int, num_cycles: int = 50, num_clients: int = 3) -> ModelParameters:
    """A small, high-contention world mirroring the fault-oracle tests."""
    return (
        ModelParameters()
        .with_server(
            broadcast_size=60,
            update_range=30,
            offset=0,
            updates_per_cycle=8,
            transactions_per_cycle=3,
            items_per_bucket=6,
            retention=10,
        )
        .with_client(
            read_range=30,
            ops_per_query=5,
            think_time=0.5,
            cache_size=15,
            max_attempts=4,
        )
        .with_sim(
            num_cycles=num_cycles,
            warmup_cycles=2,
            num_clients=num_clients,
            seed=seed,
        )
    )


def resilient_params(
    params: ModelParameters,
    policy: str,
    fault_kwargs: Mapping[str, float],
    crash_rate: float = 0.06,
) -> ModelParameters:
    """``params`` with faults plus the full resilience stack enabled."""
    # backoff_cap stays small relative to the oracle's short runs so a
    # recovering client is not still asleep when the horizon hits.
    return params.with_faults(**fault_kwargs).with_resilience(
        retry_policy=policy,
        backoff_cap=4,
        checkpoint_interval=5,
        catchup_window=8,
        crash_rate=crash_rate,
        crash_length=2.0,
        watchdog_attempts=6,
        degrade_after=4,
        recover_after=3,
    )


def build_sim(scheme: str, params: ModelParameters) -> Simulation:
    """One oracle simulation: history kept, w-window retransmission on
    (so incremental catch-up is actually reachable)."""
    return Simulation(
        params,
        scheme_factory=scheme_factory(scheme),
        keep_history=True,
        report_schedule=ReportSchedule(window=8),
    )


@dataclass
class CaseOutcome:
    """Everything one oracle cell needs to judge itself."""

    label: str
    violation_count: int
    committed: int
    twin_committed: int
    crashes: int
    restores: int
    stalled_clients: int
    recovered_clients: int
    expected_recoveries: int
    snapshot: Dict[str, float]
    replay_snapshot: Dict[str, float]
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def _committed_count(clients) -> int:
    return sum(
        1
        for client in clients
        for txn in client.completed
        if txn.status is TransactionStatus.COMMITTED
    )


def _crash_liveness(sim: Simulation):
    """Per-cell liveness evidence: (stalled, recovered, expected).

    ``stalled`` counts clients that restarted with at least
    ``LIVENESS_SLACK_CYCLES`` of runway yet never completed another
    attempt -- committed *or* aborted -- which is what a genuinely stuck
    client (a generator that never reschedules) looks like; a live but
    unlucky client keeps aborting instead.  ``recovered`` counts crashed
    clients that committed after their last crash, and ``expected`` the
    crashed clients with enough runway that at least one of them should.
    """
    horizon = sim.params.sim.num_cycles - LIVENESS_SLACK_CYCLES
    stalled = recovered = expected = 0
    for client in sim.clients:
        res = client.resilience
        if res is None or res.crashes is None or not res.crashes.windows:
            continue
        last_end = max(last for _, last in res.crashes.windows)
        if any(
            txn.status is TransactionStatus.COMMITTED
            and (txn.end_cycle or 0) > last_end
            for txn in client.completed
        ):
            recovered += 1
        if last_end > horizon:
            continue
        expected += 1
        active = any(
            (txn.end_cycle or 0) > last_end for txn in client.completed
        )
        if not active:
            stalled += 1
    return stalled, recovered, expected


def run_case(
    scheme: str,
    fault_name: str,
    policy: str,
    seed: int,
    num_cycles: int = 50,
    convergence_fraction: float = CONVERGENCE_FRACTION,
) -> CaseOutcome:
    """Run one (scheme, fault mix, policy, seed) cell and judge it."""
    fault_kwargs = FAULT_MIXES[fault_name]
    base = oracle_params(seed, num_cycles=num_cycles)
    crashed_params = resilient_params(base, policy, fault_kwargs)

    sim = build_sim(scheme, crashed_params)
    result = sim.run()
    bad = violations(sim.clients, sim.database, sim.engine.history)
    committed = _committed_count(sim.clients)

    twin = build_sim(
        scheme, resilient_params(base, policy, fault_kwargs, crash_rate=0.0)
    )
    twin.run()
    twin_committed = _committed_count(twin.clients)

    replay = build_sim(scheme, crashed_params)
    replay.run()

    def counter(name: str) -> int:
        c = result.metrics.get_counter(name)
        return c.value if c else 0

    stalled, recovered, expected = _crash_liveness(sim)
    outcome = CaseOutcome(
        label=f"{scheme}/{fault_name}/{policy}/seed={seed}",
        violation_count=len(bad),
        committed=committed,
        twin_committed=twin_committed,
        crashes=counter(metric_names.RESILIENCE_CRASHES),
        restores=counter(metric_names.RESILIENCE_CHECKPOINT_RESTORES),
        stalled_clients=stalled,
        recovered_clients=recovered,
        expected_recoveries=expected,
        snapshot=result.metrics.snapshot(),
        replay_snapshot=replay.metrics.snapshot(),
    )
    if outcome.violation_count:
        outcome.failures.append(
            f"{outcome.violation_count} committed readset(s) failed the "
            f"serializability oracle (e.g. {bad[0].txn_id})"
        )
    if outcome.stalled_clients:
        outcome.failures.append(
            f"{outcome.stalled_clients} client(s) stalled after restart "
            "(no completed attempts despite runway)"
        )
    if twin_committed and committed < convergence_fraction * twin_committed:
        outcome.failures.append(
            f"commit volume collapsed: {committed} vs never-crashed twin's "
            f"{twin_committed} (< {convergence_fraction:.0%})"
        )
    if outcome.snapshot != outcome.replay_snapshot:
        changed = {
            key
            for key in set(outcome.snapshot) | set(outcome.replay_snapshot)
            if outcome.snapshot.get(key) != outcome.replay_snapshot.get(key)
        }
        outcome.failures.append(
            f"replay diverged on {len(changed)} metric(s): "
            f"{sorted(changed)[:5]}"
        )
    return outcome


def run_matrix(
    schemes: Sequence[str] = SMOKE_SCHEMES,
    fault_names: Sequence[str] = tuple(FAULT_MIXES),
    policies: Sequence[str] = POLICIES,
    seeds: Sequence[int] = SMOKE_SEEDS,
    verbose: bool = False,
) -> List[CaseOutcome]:
    outcomes = []
    for scheme in schemes:
        for fault_name in fault_names:
            for policy in policies:
                for seed in seeds:
                    outcome = run_case(scheme, fault_name, policy, seed)
                    outcomes.append(outcome)
                    if verbose:
                        status = "ok" if outcome.ok else "FAIL"
                        print(
                            f"  {status:4} {outcome.label}: "
                            f"committed={outcome.committed} "
                            f"crashes={outcome.crashes} "
                            f"restores={outcome.restores}"
                        )
    return outcomes


def group_failures(outcomes: Sequence[CaseOutcome]) -> List[str]:
    """Liveness judged per (scheme, fault, policy) group across seeds.

    A single cell has only a couple of crashed clients, so "did one of
    them commit again" is noise there; across every seed of a group it
    is signal -- if *no* crashed client with runway ever commits again,
    recovery is not completing for that configuration.
    """
    groups: Dict[str, List[CaseOutcome]] = {}
    for outcome in outcomes:
        groups.setdefault(outcome.label.rsplit("/", 1)[0], []).append(outcome)
    failures = []
    for label, members in groups.items():
        expected = sum(o.expected_recoveries for o in members)
        recovered = sum(o.recovered_clients for o in members)
        if expected and not recovered:
            failures.append(
                f"{label}: no crashed client ever committed after its last "
                f"crash across {len(members)} seed(s) ({expected} had runway)"
            )
    return failures


def _write_artifacts(outcomes: List[CaseOutcome], artifacts: str) -> None:
    out = Path(artifacts)
    out.mkdir(parents=True, exist_ok=True)
    for outcome in outcomes:
        if outcome.ok:
            continue
        name = outcome.label.replace("/", "_").replace("=", "") + ".json"
        record: Dict[str, Any] = {
            "label": outcome.label,
            "failures": outcome.failures,
            "violations": outcome.violation_count,
            "committed": outcome.committed,
            "twin_committed": outcome.twin_committed,
            "crashes": outcome.crashes,
            "restores": outcome.restores,
            "stalled_clients": outcome.stalled_clients,
            "recovered_clients": outcome.recovered_clients,
            "expected_recoveries": outcome.expected_recoveries,
            "snapshot": outcome.snapshot,
            "replay_snapshot": outcome.replay_snapshot,
        }
        (out / name).write_text(json.dumps(record, indent=2, sort_keys=True))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.resilience.oracle",
        description="recovery differential oracle (CI smoke matrix)",
    )
    parser.add_argument(
        "--artifacts",
        default=None,
        metavar="DIR",
        help="write JSON evidence for failing cells here",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        nargs="*",
        default=list(SMOKE_SEEDS),
        help=f"seeds to run (default: {list(SMOKE_SEEDS)})",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-cell lines"
    )
    args = parser.parse_args(argv)

    print(
        "Recovery oracle matrix: "
        f"{len(SMOKE_SCHEMES)} schemes x {len(FAULT_MIXES)} fault mixes x "
        f"{len(POLICIES)} policies x {len(args.seeds)} seeds"
    )
    outcomes = run_matrix(seeds=args.seeds, verbose=not args.quiet)
    failing = [o for o in outcomes if not o.ok]
    liveness = group_failures(outcomes)
    total_crashes = sum(o.crashes for o in outcomes)
    total_restores = sum(o.restores for o in outcomes)
    total_recovered = sum(o.recovered_clients for o in outcomes)
    print(
        f"{len(outcomes)} cells, {total_crashes} crashes, "
        f"{total_restores} checkpoint restores, "
        f"{total_recovered} post-crash recoveries, {len(failing)} failing"
    )
    if liveness:
        for failure in liveness:
            print(f"FAIL {failure}")
        if args.artifacts:
            _write_artifacts(outcomes, args.artifacts)
        return 1
    # A passing matrix that never crashed, restored, or recovered
    # proves nothing.
    if not failing:
        for count, what in (
            (total_crashes, "no crashes fired"),
            (total_restores, "no checkpoint restore exercised"),
            (total_recovered, "no post-crash commit observed"),
        ):
            if count == 0:
                print(f"matrix is vacuous: {what}")
                return 1
    if failing:
        for outcome in failing:
            print(f"FAIL {outcome.label}:")
            for failure in outcome.failures:
                print(f"  - {failure}")
        if args.artifacts:
            _write_artifacts(outcomes, args.artifacts)
            print(f"evidence written under {args.artifacts}/")
        return 1
    print("recovery differential oracle: all cells clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
