"""Named metric registry used by clients, servers, and the harness."""

from __future__ import annotations

from typing import Dict, ItemsView, Optional

from repro.stats.names import (  # noqa: F401 -- re-exported for callers
    FAULT_COUNTERS,
    FAULT_CYCLES_TRUNCATED,
    FAULT_FORCED_ABORTS,
    FAULT_READS_LOST,
    FAULT_RECOVERIES,
    FAULT_REPORTS_DELAYED,
    FAULT_REPORTS_MISSED,
    FAULT_SLOTS_LOST,
    FAULT_STORM_OUTAGES,
)
from repro.stats.online import OnlineStats, RatioEstimator


class Counter:
    """A monotonically increasing named counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0

    def increment(self, by: int = 1) -> None:
        if by < 0:
            raise ValueError(f"Counter increments must be non-negative, got {by}")
        self._value += by

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self._value}>"


class Sampler(OnlineStats):
    """An :class:`OnlineStats` with a name, for registry bookkeeping."""

    def __init__(self, name: str) -> None:
        super().__init__()
        self.name = name


class MetricsRegistry:
    """Lazily created counters, samplers and ratios, keyed by name.

    All simulation components share one registry per experiment run, so
    the harness can pull e.g. ``registry.ratio('txn.committed').complement``
    as the abort rate without any component-specific wiring.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._samplers: Dict[str, Sampler] = {}
        self._ratios: Dict[str, RatioEstimator] = {}

    # -- accessors (create on first use) ---------------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def sampler(self, name: str) -> Sampler:
        sampler = self._samplers.get(name)
        if sampler is None:
            sampler = self._samplers[name] = Sampler(name)
        return sampler

    def ratio(self, name: str) -> RatioEstimator:
        ratio = self._ratios.get(name)
        if ratio is None:
            ratio = self._ratios[name] = RatioEstimator()
        return ratio

    # -- convenience recording helpers ------------------------------------

    def count(self, name: str, by: int = 1) -> None:
        self.counter(name).increment(by)

    def observe(self, name: str, value: float) -> None:
        self.sampler(name).add(value)

    def record_outcome(self, name: str, success: bool) -> None:
        self.ratio(name).record(success)

    # -- reporting ---------------------------------------------------------

    def counters(self) -> ItemsView[str, Counter]:
        return self._counters.items()

    def samplers(self) -> ItemsView[str, Sampler]:
        return self._samplers.items()

    def ratios(self) -> ItemsView[str, RatioEstimator]:
        return self._ratios.items()

    def get_counter(self, name: str) -> Optional[Counter]:
        return self._counters.get(name)

    def get_sampler(self, name: str) -> Optional[Sampler]:
        return self._samplers.get(name)

    def get_ratio(self, name: str) -> Optional[RatioEstimator]:
        return self._ratios.get(name)

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other``'s metrics into ``self`` (in place) and return
        ``self``.

        Counters and ratios add exactly; samplers absorb via the parallel
        Welford update plus exact-sum concatenation.  Metrics that exist
        in ``other`` but not here are created even when zero, so a merged
        registry's :meth:`snapshot` keys match a sequentially built one.
        """
        for name, counter in other._counters.items():
            self.counter(name).increment(counter.value)
        for name, sampler in other._samplers.items():
            self.sampler(name).absorb(sampler)
        for name, ratio in other._ratios.items():
            self.ratio(name).record_many(ratio.hits, ratio.total)
        return self

    def fault_summary(self) -> Dict[str, int]:
        """All fault-injection counters (zero when no fault ever fired)."""
        return {
            name: (
                self._counters[name].value if name in self._counters else 0
            )
            for name in FAULT_COUNTERS
        }

    def snapshot(self) -> Dict[str, float]:
        """Flatten every metric into a plain dict for CSV emission."""
        flat: Dict[str, float] = {}
        for name, counter in self._counters.items():
            flat[f"{name}.count"] = float(counter.value)
        for name, sampler in self._samplers.items():
            if sampler.count:
                flat[f"{name}.mean"] = sampler.mean
                flat[f"{name}.max"] = sampler.maximum
                flat[f"{name}.n"] = float(sampler.count)
        for name, ratio in self._ratios.items():
            if ratio.total:
                flat[f"{name}.ratio"] = ratio.ratio
                flat[f"{name}.total"] = float(ratio.total)
        return flat

    def diff(self, before: Dict[str, float]) -> Dict[str, float]:
        """Changed metrics since a previous :meth:`snapshot`.

        Returns ``{flat_name: after - before}`` for every *monotone*
        entry (``.count``, ``.n``, ``.total``) whose value moved --
        means, maxima and ratios are point-in-time values, not
        accumulations, so deltas of them are omitted.  Lets callers
        bracket a phase without re-summing counters by hand:

        >>> registry = MetricsRegistry()
        >>> before = registry.snapshot()
        >>> registry.count('x')
        >>> registry.diff(before)
        {'x.count': 1.0}
        """
        after = self.snapshot()
        delta: Dict[str, float] = {}
        for name, value in after.items():
            if not name.endswith((".count", ".n", ".total")):
                continue
            change = value - before.get(name, 0.0)
            if change:
                delta[name] = change
        return delta
