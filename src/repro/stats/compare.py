"""Statistical comparison of scheme results.

The figures compare abort *rates* (binomial proportions) and latency
*means* between schemes; eyeballing two noisy numbers is not evidence.
These helpers give the harness and the test suite proper footing:

* :func:`two_proportion_z` -- the classic two-proportion z-test for
  "scheme A accepts significantly more queries than scheme B";
* :func:`welch_t` -- Welch's unequal-variance t statistic for latency
  comparisons (normal approximation of the p-value, adequate at the
  sample sizes the harness produces);
* :func:`wilson_interval` -- a confidence interval for a single rate
  that behaves at the extremes (0% / 100% abort rates happen a lot in
  Figure 5's corners, where the normal interval collapses nonsensically).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple


def _normal_sf(z: float) -> float:
    """Survival function of the standard normal (1 - CDF)."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


@dataclass(frozen=True)
class ComparisonResult:
    """Outcome of a two-sample test."""

    statistic: float
    p_value: float

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def two_proportion_z(
    hits_a: int, total_a: int, hits_b: int, total_b: int
) -> ComparisonResult:
    """Two-sided two-proportion z-test for ``p_a != p_b``.

    >>> result = two_proportion_z(90, 100, 50, 100)
    >>> result.significant()
    True
    """
    if total_a <= 0 or total_b <= 0:
        raise ValueError("Both samples must be non-empty")
    if not (0 <= hits_a <= total_a and 0 <= hits_b <= total_b):
        raise ValueError("hits must lie within totals")
    p_a = hits_a / total_a
    p_b = hits_b / total_b
    pooled = (hits_a + hits_b) / (total_a + total_b)
    variance = pooled * (1 - pooled) * (1 / total_a + 1 / total_b)
    if variance == 0:
        return ComparisonResult(statistic=0.0, p_value=1.0)
    z = (p_a - p_b) / math.sqrt(variance)
    return ComparisonResult(statistic=z, p_value=2.0 * _normal_sf(abs(z)))


def welch_t(
    mean_a: float,
    var_a: float,
    n_a: int,
    mean_b: float,
    var_b: float,
    n_b: int,
) -> ComparisonResult:
    """Welch's t-test (normal approximation for the tail probability)."""
    if n_a < 2 or n_b < 2:
        raise ValueError("Each sample needs at least 2 observations")
    if var_a < 0 or var_b < 0:
        raise ValueError("Variances must be non-negative")
    se = math.sqrt(var_a / n_a + var_b / n_b)
    if se == 0:
        equal = math.isclose(mean_a, mean_b)
        return ComparisonResult(statistic=0.0, p_value=1.0 if equal else 0.0)
    t = (mean_a - mean_b) / se
    return ComparisonResult(statistic=t, p_value=2.0 * _normal_sf(abs(t)))


def wilson_interval(
    hits: int, total: int, z: float = 1.96
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    >>> low, high = wilson_interval(0, 50)
    >>> low == 0.0 and high > 0.0
    True
    """
    if total <= 0:
        raise ValueError("total must be positive")
    if not 0 <= hits <= total:
        raise ValueError("hits must lie within total")
    p = hits / total
    denom = 1 + z * z / total
    centre = (p + z * z / (2 * total)) / denom
    half = (
        z
        * math.sqrt(p * (1 - p) / total + z * z / (4 * total * total))
        / denom
    )
    low = max(0.0, centre - half)
    high = min(1.0, centre + half)
    # Guard the extremes against floating-point droop: the interval must
    # always contain the point estimate.
    if hits == 0:
        low = 0.0
    if hits == total:
        high = 1.0
    return (min(low, p), max(high, p))


def rates_differ(
    hits_a: int,
    total_a: int,
    hits_b: int,
    total_b: int,
    alpha: float = 0.05,
) -> bool:
    """Convenience wrapper: are the two rates significantly different?"""
    return two_proportion_z(hits_a, total_a, hits_b, total_b).significant(alpha)
