"""Workload statistics substrate.

Provides the stochastic machinery used by both the broadcast server and the
clients:

* :class:`~repro.stats.zipf.ZipfGenerator` -- the skewed access-pattern
  sampler that the paper's performance model (Section 5.1) is built on.
* :class:`~repro.stats.zipf.OffsetZipfGenerator` -- a Zipf sampler shifted
  by ``offset`` items to model disagreement between the client read pattern
  and the server update pattern.
* :class:`~repro.stats.online.OnlineStats` / :class:`~repro.stats.online.RatioEstimator`
  -- numerically stable accumulation of means, variances and rates.
* :class:`~repro.stats.metrics.MetricsRegistry` -- the named counters and
  samplers the experiment harness reports.
"""

from repro.stats.compare import (
    ComparisonResult,
    rates_differ,
    two_proportion_z,
    welch_t,
    wilson_interval,
)
from repro.stats.metrics import Counter, MetricsRegistry, Sampler
from repro.stats.online import OnlineStats, RatioEstimator
from repro.stats.zipf import OffsetZipfGenerator, ZipfGenerator, zipf_pmf

__all__ = [
    "ComparisonResult",
    "Counter",
    "MetricsRegistry",
    "OffsetZipfGenerator",
    "OnlineStats",
    "RatioEstimator",
    "Sampler",
    "ZipfGenerator",
    "zipf_pmf",
    "rates_differ",
    "two_proportion_z",
    "welch_t",
    "wilson_interval",
]
