"""Canonical metric names, in one place.

Every counter/sampler/ratio name used across the client, server, fault
layer and experiment harness lives here, so the tracer, the analyzers
and the CSV emitters can refer to metrics without scattering ad-hoc
string literals.  :mod:`repro.stats.metrics` re-exports the fault
constants for backward compatibility.
"""

from __future__ import annotations

# -- query / attempt outcomes (client machine) -----------------------------

#: Ratio: committed attempts over all measured attempts.
ATTEMPT_COMMITTED = "attempt.committed"
#: Ratio: queries that eventually committed within ``max_attempts``.
QUERY_COMPLETED = "query.completed"
#: Sampler: attempts consumed per query.
QUERY_ATTEMPTS = "query.attempts"

#: Prefix of the per-reason abort counters (``abort.<AbortReason.value>``).
ABORT_PREFIX = "abort."


def abort_metric(reason_value: str) -> str:
    """Counter name for one :class:`~repro.core.transaction.AbortReason`."""
    return f"{ABORT_PREFIX}{reason_value}"


# -- committed-transaction samplers ----------------------------------------

TXN_LATENCY_CYCLES = "txn.latency_cycles"
TXN_LATENCY_SLOTS = "txn.latency_slots"
TXN_SPAN = "txn.span"
TXN_CACHE_READS = "txn.cache_reads"
TXN_CURRENCY_LAG = "txn.currency_lag"

# -- client-side housekeeping ----------------------------------------------

CACHE_HIT_RATIO = "cache.hit_ratio"
CLIENT_DISCONNECTIONS = "client.disconnections"
CLIENT_RESYNCS = "client.resyncs"
CLIENT_CACHE_DROPS = "client.cache_drops"

# -- server / broadcast sizing ---------------------------------------------

BROADCAST_SLOTS = "broadcast.slots"
BROADCAST_CONTROL_SLOTS = "broadcast.control_slots"
BROADCAST_OVERFLOW_SLOTS = "broadcast.overflow_slots"
BROADCAST_INTERIM_REPORTS = "broadcast.interim_reports"

# -- sharded multi-channel broadcast (see repro.shard) ----------------------

#: Prefix of every per-shard metric (``shard.<k>.<base>``); emitted only
#: when more than one shard exists, so single-channel registries (and the
#: K=1 bit-identity oracle) never see them.
SHARD_PREFIX = "shard."


def shard_metric(shard: int, base: str) -> str:
    """Per-shard metric name, e.g. ``shard.2.broadcast.slots``."""
    return f"{SHARD_PREFIX}{shard}.{base}"


#: Counter: multi-shard queries aborted by the epoch-aligned consistency
#: discipline (``abort.epoch_mismatch`` counts the same aborts by reason).
SHARD_EPOCH_ABORTS = "shard.epoch_aborts"
#: Counter: committed queries whose readset touched more than one shard.
SHARD_CROSS_COMMITS = "shard.cross_commits"

# -- fault injection (see repro.faults) ------------------------------------

#: Data buckets that never reached a client (per client, summed).
FAULT_SLOTS_LOST = "fault.slots_lost"
#: Cycles whose control segment a client could not decode.
FAULT_REPORTS_MISSED = "fault.reports_missed"
#: Cycles whose control segment decoded late (client synced mid-cycle).
FAULT_REPORTS_DELAYED = "fault.reports_delayed"
#: Cycles cut short by a truncation fault.
FAULT_CYCLES_TRUNCATED = "fault.cycles_truncated"
#: Reads that tuned into a slot and received noise (retried).
FAULT_READS_LOST = "fault.reads_lost"
#: Resynchronizations after a fault-induced missed cycle.
FAULT_RECOVERIES = "fault.recoveries"
#: Active transactions doomed by a fault-induced missed cycle.
FAULT_FORCED_ABORTS = "fault.forced_aborts"
#: Client-side outages caused by disconnect storms.
FAULT_STORM_OUTAGES = "fault.storm_outages"

# -- resilience layer (see repro.resilience) --------------------------------

#: Retries issued through a retry policy (one per re-attempted abort).
RESILIENCE_RETRIES = "resilience.retries_total"
#: Sampler: cycles a retry policy made a query wait before re-attempting.
RESILIENCE_RETRY_DELAY = "resilience.retry_delay_cycles"
#: Queries abandoned because their deadline passed before completion.
RESILIENCE_DEADLINE_ABANDONED = "resilience.deadline_abandoned"
#: Watchdog escalations after N consecutive aborted attempts.
RESILIENCE_WATCHDOG_ESCALATIONS = "resilience.watchdog_escalations"
#: Client crashes injected by the crash schedule.
RESILIENCE_CRASHES = "resilience.crashes"
#: Client state checkpoints taken.
RESILIENCE_CHECKPOINT_SAVES = "resilience.checkpoint_saves"
#: Restarts that restored state from a checkpoint.
RESILIENCE_CHECKPOINT_RESTORES = "resilience.checkpoint_restores"
#: Degradation-ladder level changes (both directions).
RESILIENCE_DEGRADATION_TRANSITIONS = "resilience.degradation_transitions"
#: Sampler: cycles from restart/reconnect to the first commit after it.
TIME_TO_RECOVER_CYCLES = "resilience.time_to_recover_cycles"

#: Every resilience counter (samplers excluded), for summaries and CSVs.
RESILIENCE_COUNTERS = (
    RESILIENCE_RETRIES,
    RESILIENCE_DEADLINE_ABANDONED,
    RESILIENCE_WATCHDOG_ESCALATIONS,
    RESILIENCE_CRASHES,
    RESILIENCE_CHECKPOINT_SAVES,
    RESILIENCE_CHECKPOINT_RESTORES,
    RESILIENCE_DEGRADATION_TRANSITIONS,
)

#: Every fault counter, for summaries and CSV columns.
FAULT_COUNTERS = (
    FAULT_SLOTS_LOST,
    FAULT_REPORTS_MISSED,
    FAULT_REPORTS_DELAYED,
    FAULT_CYCLES_TRUNCATED,
    FAULT_READS_LOST,
    FAULT_RECOVERIES,
    FAULT_FORCED_ABORTS,
    FAULT_STORM_OUTAGES,
)
