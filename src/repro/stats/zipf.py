"""Zipf access-pattern generators.

The paper's performance model (Section 5.1) draws both client reads and
server updates from a Zipf distribution: item ``i`` of ``n`` has probability
proportional to ``(1/i)**theta``.  ``theta = 0`` degenerates to uniform
access; the paper's default is ``theta = 0.95`` (strongly skewed).

An *offset* of ``k`` rotates the distribution ``k`` items forward so that
the hottest items of one party are lukewarm for the other; this models the
"disagreement between the client access pattern and the server update
pattern" that Figures 5 (right) and 8 (right) sweep.
"""

from __future__ import annotations

import bisect
import itertools
import random
from functools import lru_cache
from typing import Iterator, List, Optional, Sequence, Tuple


def zipf_pmf(n: int, theta: float) -> List[float]:
    """Probability mass function of the Zipf(``theta``) law over ``1..n``.

    Returns a list ``p`` where ``p[i-1]`` is the probability of rank ``i``.

    >>> pmf = zipf_pmf(3, 1.0)
    >>> round(sum(pmf), 10)
    1.0
    >>> pmf[0] > pmf[1] > pmf[2]
    True
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if theta < 0:
        raise ValueError(f"theta must be non-negative, got {theta}")
    weights = [(1.0 / rank) ** theta for rank in range(1, n + 1)]
    total = sum(weights)
    return [w / total for w in weights]


@lru_cache(maxsize=128)
def zipf_cdf(n: int, theta: float) -> Tuple[float, ...]:
    """Cumulative distribution of Zipf(``theta``) over ranks ``1..n``.

    Cached module-wide so the cohort engine can build 10^5-10^6 client
    generators over the same ``(n, theta)`` without recomputing (or
    re-storing) the table per client.  The final bucket is clamped to
    exactly 1.0 to guard against floating-point drift.
    """
    cdf = list(itertools.accumulate(zipf_pmf(n, theta)))
    cdf[-1] = 1.0
    return tuple(cdf)


class ZipfGenerator:
    """Samples item numbers ``first .. first + n - 1`` with Zipf skew.

    Rank 1 (the hottest item) maps to ``first``, rank 2 to ``first + 1``
    and so on, matching the paper's convention that the access range is a
    prefix ``1..ReadRange`` of the broadcast ``1..BroadcastSize``.

    Parameters
    ----------
    n:
        Number of distinct items in the range.
    theta:
        Skew parameter; 0 is uniform, larger is more skewed.
    rng:
        Source of randomness; pass a seeded :class:`random.Random` for
        reproducible simulations.
    first:
        Item number that rank 1 maps to (default 1).
    """

    def __init__(
        self,
        n: int,
        theta: float,
        rng: Optional[random.Random] = None,
        first: int = 1,
    ) -> None:
        self.n = n
        self.theta = theta
        self.first = first
        self._rng = rng if rng is not None else random.Random()
        self._cdf = zipf_cdf(n, theta)

    def probability(self, item: int) -> float:
        """Probability of sampling ``item`` (0.0 outside the range)."""
        rank = item - self.first + 1
        if rank < 1 or rank > self.n:
            return 0.0
        lo = self._cdf[rank - 2] if rank >= 2 else 0.0
        return self._cdf[rank - 1] - lo

    def sample(self) -> int:
        """Draw one item number."""
        u = self._rng.random()
        rank = bisect.bisect_left(self._cdf, u) + 1
        return self.first + min(rank, self.n) - 1

    def sample_many(self, count: int) -> List[int]:
        """Draw ``count`` item numbers (with repetition)."""
        return [self.sample() for _ in range(count)]

    def sample_batch(self, count: int) -> List[int]:
        """Batched draw of ``count`` items off the shared CDF table.

        Consumes exactly one uniform per draw in draw order, so under a
        shared seed the result is bit-identical to ``count`` sequential
        :meth:`sample` calls -- the property the cohort engine relies on
        and the Hypothesis suite pins down.
        """
        cdf = self._cdf
        first_minus_1 = self.first - 1
        n = self.n
        rand = self._rng.random
        lookup = bisect.bisect_left
        return [
            first_minus_1 + min(lookup(cdf, rand()) + 1, n)
            for _ in range(count)
        ]

    def sample_distinct(self, count: int) -> List[int]:
        """Draw ``count`` *distinct* item numbers, preserving draw order.

        Used for transaction read/write sets where re-reading the same item
        would shrink the effective operation count.
        """
        if count > self.n:
            raise ValueError(
                f"Cannot draw {count} distinct items from a range of {self.n}"
            )
        seen: set = set()
        result: List[int] = []
        # Rejection sampling is fast while count << n; fall back to an
        # exhaustive weighted shuffle when the request is close to n.
        attempts = 0
        limit = 50 * count + 100
        while len(result) < count and attempts < limit:
            item = self.sample()
            attempts += 1
            if item not in seen:
                seen.add(item)
                result.append(item)
        while len(result) < count:
            # Deterministic fill from hottest remaining rank.
            for rank in range(1, self.n + 1):
                item = self.first + rank - 1
                if item not in seen:
                    seen.add(item)
                    result.append(item)
                    break
        return result

    def __iter__(self) -> Iterator[int]:
        while True:
            yield self.sample()


class OffsetZipfGenerator:
    """A Zipf sampler whose output is rotated by ``offset`` items.

    The rotation happens inside a wrapping universe ``1..universe`` (the
    broadcast range): rank 1 maps to item ``1 + offset``, and items that
    would fall off the end wrap around to the beginning.  With
    ``offset = 0`` this is exactly :class:`ZipfGenerator`; growing offsets
    move the server's update hot-spot away from the client's read hot-spot,
    reducing the overlap of the two distributions.
    """

    def __init__(
        self,
        n: int,
        theta: float,
        offset: int = 0,
        universe: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if offset < 0:
            raise ValueError(f"offset must be non-negative, got {offset}")
        self.offset = offset
        self.universe = universe if universe is not None else n + offset
        if self.universe < n:
            raise ValueError(
                f"universe ({self.universe}) smaller than range size ({n})"
            )
        self._base = ZipfGenerator(n, theta, rng=rng)

    @property
    def n(self) -> int:
        return self._base.n

    @property
    def theta(self) -> float:
        return self._base.theta

    def _shift(self, item: int) -> int:
        return (item - 1 + self.offset) % self.universe + 1

    def probability(self, item: int) -> float:
        """Probability of sampling ``item`` after the rotation."""
        # Invert the shift: find the pre-image in the base range.
        base_item = (item - 1 - self.offset) % self.universe + 1
        return self._base.probability(base_item)

    def sample(self) -> int:
        return self._shift(self._base.sample())

    def sample_many(self, count: int) -> List[int]:
        return [self.sample() for _ in range(count)]

    def sample_batch(self, count: int) -> List[int]:
        return [self._shift(item) for item in self._base.sample_batch(count)]

    def sample_distinct(self, count: int) -> List[int]:
        return [self._shift(item) for item in self._base.sample_distinct(count)]

    def support(self) -> Sequence[int]:
        """All items this generator can emit (rotation applied)."""
        return [self._shift(i) for i in range(1, self.n + 1)]

    def overlap(self, other: "OffsetZipfGenerator") -> float:
        """Bhattacharyya-style overlap with another generator in [0, 1].

        Computed as ``sum(min(p_self(i), p_other(i)))`` over the shared
        universe; 1.0 means identical access patterns, 0.0 means disjoint.
        Used by tests to sanity-check that growing the offset shrinks the
        overlap, mirroring the prose of Section 5.1.
        """
        universe = max(self.universe, other.universe)
        total = 0.0
        for item in range(1, universe + 1):
            total += min(self.probability(item), other.probability(item))
        return total
