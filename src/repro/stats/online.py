"""Numerically stable online statistics (Welford accumulation)."""

from __future__ import annotations

import math
from typing import List, Optional, Tuple


def _fold_partial(partials: List[float], x: float) -> None:
    """Shewchuk's error-free transformation: fold ``x`` into ``partials``
    so that ``sum(partials)`` stays the *exact* (infinite-precision) sum.

    Each pairwise ``hi = x + y`` keeps its rounding error ``lo`` as a
    separate partial, so the represented value never loses a bit.  The
    partials list stays short in practice (a handful of entries)."""
    i = 0
    for y in partials:
        if abs(x) < abs(y):
            x, y = y, x
        hi = x + y
        lo = y - (hi - x)
        if lo:
            partials[i] = lo
            i += 1
        x = hi
    partials[i:] = [x]


class OnlineStats:
    """Single-pass mean / variance / extrema accumulator.

    Uses Welford's algorithm so long simulations do not lose precision.
    Alongside the running mean, an exact (order-independent) sum of all
    observations is maintained as Shewchuk partials: two accumulators fed
    the same multiset of values in *any* order report bit-identical
    :attr:`exact_sum`, which is what lets the cohort engine's client-major
    aggregation be compared exactly against the event-interleaved
    discrete simulation (see :mod:`repro.cohort`).

    >>> s = OnlineStats()
    >>> for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
    ...     s.add(x)
    >>> s.mean
    5.0
    >>> round(s.population_variance, 10)
    4.0
    >>> s.exact_sum
    40.0
    """

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._partials: List[float] = []

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        self._n += 1
        delta = value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (value - self._mean)
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)
        _fold_partial(self._partials, value)

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Return a new accumulator combining ``self`` and ``other``.

        Uses the parallel variant of Welford's update; handy when merging
        per-client statistics into a per-experiment aggregate.
        """
        merged = OnlineStats()
        n = self._n + other._n
        if n == 0:
            return merged
        delta = other._mean - self._mean
        merged._n = n
        merged._mean = self._mean + delta * other._n / n
        merged._m2 = (
            self._m2 + other._m2 + delta * delta * self._n * other._n / n
        )
        mins = [m for m in (self._min, other._min) if m is not None]
        maxs = [m for m in (self._max, other._max) if m is not None]
        merged._min = min(mins) if mins else None
        merged._max = max(maxs) if maxs else None
        merged._partials = list(self._partials)
        for x in other._partials:
            _fold_partial(merged._partials, x)
        return merged

    def absorb(self, other: "OnlineStats") -> "OnlineStats":
        """In-place :meth:`merge`: fold ``other`` into ``self`` and return
        ``self``.  Used by :meth:`~repro.stats.metrics.MetricsRegistry.merge`
        to combine per-cohort partial registries without reallocating."""
        if other._n == 0:
            return self
        n = self._n + other._n
        delta = other._mean - self._mean
        self._mean = self._mean + delta * other._n / n
        self._m2 = (
            self._m2 + other._m2 + delta * delta * self._n * other._n / n
        )
        self._n = n
        mins = [m for m in (self._min, other._min) if m is not None]
        maxs = [m for m in (self._max, other._max) if m is not None]
        self._min = min(mins) if mins else None
        self._max = max(maxs) if maxs else None
        for x in other._partials:
            _fold_partial(self._partials, x)
        return self

    @property
    def exact_sum(self) -> float:
        """Correctly rounded sum of every observation, independent of the
        order they were added or merged in (0.0 when empty)."""
        return math.fsum(self._partials)

    @property
    def count(self) -> int:
        return self._n

    @property
    def mean(self) -> float:
        if self._n == 0:
            raise ValueError("No observations")
        return self._mean

    @property
    def population_variance(self) -> float:
        if self._n == 0:
            raise ValueError("No observations")
        return self._m2 / self._n

    @property
    def sample_variance(self) -> float:
        if self._n < 2:
            return 0.0
        return self._m2 / (self._n - 1)

    @property
    def stdev(self) -> float:
        return math.sqrt(self.sample_variance)

    @property
    def minimum(self) -> float:
        if self._min is None:
            raise ValueError("No observations")
        return self._min

    @property
    def maximum(self) -> float:
        if self._max is None:
            raise ValueError("No observations")
        return self._max

    def confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Normal-approximation CI for the mean (default 95%)."""
        if self._n == 0:
            raise ValueError("No observations")
        half = z * self.stdev / math.sqrt(self._n) if self._n > 1 else 0.0
        return (self._mean - half, self._mean + half)

    def __repr__(self) -> str:
        if self._n == 0:
            return "<OnlineStats empty>"
        return f"<OnlineStats n={self._n} mean={self._mean:.4g} sd={self.stdev:.4g}>"


class RatioEstimator:
    """Tracks a success/total ratio, e.g. commit or abort rates.

    >>> r = RatioEstimator()
    >>> for outcome in [True, True, False, True]:
    ...     r.record(outcome)
    >>> r.ratio
    0.75
    """

    def __init__(self) -> None:
        self._hits = 0
        self._total = 0

    def record(self, hit: bool) -> None:
        self._total += 1
        if hit:
            self._hits += 1

    def record_many(self, hits: int, total: int) -> None:
        if hits > total:
            raise ValueError(f"hits ({hits}) cannot exceed total ({total})")
        self._hits += hits
        self._total += total

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def total(self) -> int:
        return self._total

    @property
    def ratio(self) -> float:
        if self._total == 0:
            raise ValueError("No observations")
        return self._hits / self._total

    @property
    def complement(self) -> float:
        """``1 - ratio`` -- abort rate when hits are commits, and so on."""
        return 1.0 - self.ratio

    def merge(self, other: "RatioEstimator") -> "RatioEstimator":
        merged = RatioEstimator()
        merged._hits = self._hits + other._hits
        merged._total = self._total + other._total
        return merged

    def __repr__(self) -> str:
        if self._total == 0:
            return "<RatioEstimator empty>"
        return f"<RatioEstimator {self._hits}/{self._total} = {self.ratio:.3f}>"
