"""The two-method environment shim that lets discrete client code run
under the cohort driver.

A :class:`~repro.client.machine.BroadcastClient` only ever asks its
environment for two things: ``timeout(delay)`` (sleep) and
``process(gen)`` (start my loop).  The shim answers both without an
event kernel: ``timeout`` returns a :class:`Wake` token carrying the
absolute wake time -- computed as ``now + delay`` with exactly the same
float operation the kernel's ``Timeout`` would perform, so wake instants
are bit-identical to the discrete run -- and ``process`` hands the
generator back unstarted for the driver to step.

Everything a client generator can yield is one of two shapes:

* a :class:`Wake` -- resume me at ``wake.at``;
* anything else (in practice the :data:`CYCLE_WAIT` sentinel returned by
  ``CohortChannel.cycle_started()``) -- park me until the next installed
  cycle start.

The cohort driver (:mod:`repro.cohort.engine`) interprets exactly these
two cases; no other event type exists on the client side.
"""

from __future__ import annotations


class Wake:
    """Yield token: resume the generator when the clock reaches ``at``."""

    __slots__ = ("at",)

    def __init__(self, at: float) -> None:
        self.at = at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Wake at={self.at}>"


class _CycleWait:
    """Yield token: park until the next cycle-start installation."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<CYCLE_WAIT>"


#: Singleton returned by ``CohortChannel.cycle_started()``; identity is
#: all the driver needs (any non-:class:`Wake` yield parks the client).
CYCLE_WAIT = _CycleWait()


class CohortEnv:
    """Per-client clock exposing the environment surface clients use."""

    __slots__ = ("now",)

    def __init__(self) -> None:
        self.now = 0.0

    def timeout(self, delay: float, value: object = None) -> Wake:
        # Same float expression as the kernel's Timeout: now + delay.
        return Wake(self.now + delay)

    def process(self, gen):
        """Return the generator unstarted; the driver steps it."""
        return gen
