"""Per-client channel surface replayed from a pre-computed server trace.

:class:`CohortChannel` exposes the exact client-side surface of
:class:`~repro.broadcast.channel.BroadcastChannel` (and, when a fault
pipeline is attached, of :class:`~repro.faults.channel.FaultyChannel`):
``subscribe``, ``cycle_started``, ``await_item``, ``await_old_version``
and the timing helpers.  The generator bodies of the two ``await_*``
methods are ports of the faulty-channel ones -- which degenerate to the
perfect-channel behaviour when no slot is ever lost -- down to the exact
float expression of each ``timeout`` delta, so the wake instants (and
hence every downstream think-time and cycle attribution) are
bit-identical to a discrete run.

The server side is different: instead of being fed by a live
``begin_cycle``, the cohort driver calls :meth:`prepare_cycle` at each
cycle boundary (running the fault pipeline and counting the fault
metrics exactly as ``FaultyChannel.on_cycle_start`` would) and then
either :meth:`install` or :meth:`signal_lost` according to the returned
fate.
"""

from __future__ import annotations

import math
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.broadcast.program import BroadcastProgram, ItemRecord
from repro.cohort.shim import CYCLE_WAIT, CohortEnv
from repro.faults.models import CycleFate, FaultModel
from repro.stats.metrics import (
    FAULT_CYCLES_TRUNCATED,
    FAULT_READS_LOST,
    FAULT_REPORTS_DELAYED,
    FAULT_REPORTS_MISSED,
    FAULT_SLOTS_LOST,
    MetricsRegistry,
)


class CohortChannel:
    """One client's (optionally lossy) view of the broadcast trace."""

    __slots__ = (
        "env",
        "pipeline",
        "metrics",
        "client_id",
        "_listeners",
        "_program",
        "_cycle_start_time",
        "_lost_slots",
        "_synced",
    )

    def __init__(
        self,
        env: CohortEnv,
        metrics: MetricsRegistry,
        pipeline: Optional[Sequence[FaultModel]] = None,
        client_id: int = 0,
    ) -> None:
        self.env = env
        self.pipeline = list(pipeline) if pipeline is not None else None
        self.metrics = metrics
        self.client_id = client_id
        self._listeners: List = []
        self._program: Optional[BroadcastProgram] = None
        self._cycle_start_time = 0.0
        self._lost_slots: frozenset = frozenset()
        self._synced = False

    # -- driver side (replaces the live server feed) ------------------------

    def prepare_cycle(
        self, program: BroadcastProgram
    ) -> Tuple[float, FrozenSet[int], bool]:
        """Decide this cycle's fate at its boundary instant.

        Returns ``(control_delay, lost_slots, control_lost)``.  Mirrors
        ``FaultyChannel.on_cycle_start`` exactly -- same pipeline
        application order, same degeneration rules, same fault counters
        -- but leaves the clock/install mechanics to the driver.  On a
        perfect channel (no pipeline) the fate is trivially clean.
        """
        if self.pipeline is None:
            return (0.0, frozenset(), False)
        self._synced = False
        fate = CycleFate(
            cycle=program.cycle,
            total_slots=program.total_slots,
            control_slots=program.control_slots,
        )
        for model in self.pipeline:
            model.apply(fate)
        # A control segment that decodes only after the cycle ended, or a
        # lost control slot, degenerates to a lost control segment.
        if fate.control_delay >= program.total_slots:
            fate.control_lost = True
        if any(slot < program.control_slots for slot in fate.lost_slots):
            fate.control_lost = True
        if fate.truncated:
            self.metrics.count(FAULT_CYCLES_TRUNCATED)
        self.metrics.count(FAULT_SLOTS_LOST, fate.data_slots_lost)

        if fate.control_lost:
            self.metrics.count(FAULT_REPORTS_MISSED)
            return (0.0, frozenset(), True)
        lost = frozenset(fate.lost_slots)
        if fate.control_delay > 0:
            self.metrics.count(FAULT_REPORTS_DELAYED)
            # Everything that flew before synchronization is gone too.
            lost = lost | frozenset(
                slot
                for slot in range(program.total_slots)
                if slot + 0.5 < fate.control_delay
            )
        return (fate.control_delay, lost, False)

    def install(
        self, program: BroadcastProgram, lost: frozenset, start_time: float
    ) -> None:
        """Make ``program`` the client's knowledge of the air.

        ``start_time`` is the *true* cycle start: slot timing stays
        anchored there even when the control segment decoded late.
        """
        self._program = program
        self._cycle_start_time = start_time
        self._lost_slots = lost
        self._synced = True
        for listener in list(self._listeners):
            listener.on_cycle_start(program)

    def signal_lost(self, cycle: int) -> None:
        """The control segment never decoded: the cycle is missed."""
        for listener in list(self._listeners):
            handler = getattr(listener, "on_signal_lost", None)
            if handler is not None:
                handler(cycle)

    # -- client-side surface (mirrors the live channels) --------------------

    def subscribe(self, listener) -> None:
        self._listeners.append(listener)

    def unsubscribe(self, listener) -> None:
        """Idempotent, like the live channels'."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            return

    @property
    def program(self) -> BroadcastProgram:
        if self._program is None:
            raise RuntimeError("The channel is not broadcasting yet")
        return self._program

    @property
    def on_air(self) -> bool:
        return self._program is not None

    @property
    def current_cycle(self) -> int:
        return self.program.cycle

    @property
    def cycle_start_time(self) -> float:
        return self._cycle_start_time

    def cycle_started(self):
        """Park token: the driver resumes the client at the next install."""
        return CYCLE_WAIT

    def delivery_time(self, slot: int) -> float:
        return self._cycle_start_time + slot + 0.5

    def prefetch_time(self, slot: int) -> float:
        """Autoprefetches armed on a lost bucket never land."""
        if slot in self._lost_slots:
            return math.inf
        return self.delivery_time(slot)

    def relative_now(self) -> float:
        return self.env.now - self._cycle_start_time

    # -- client-side tuning (generator bodies ported from FaultyChannel,
    # which degenerate to BroadcastChannel's when nothing is ever lost) --

    def _receivable(self, slot: int) -> bool:
        if slot in self._lost_slots:
            self.metrics.count(FAULT_READS_LOST)
            return False
        return True

    def await_item(self, item: int):
        """Process: wait for ``item``; lost buckets cost the wait and force
        a retry on the next repetition or the next heard cycle."""
        while True:
            if self._program is not None and self._synced:
                program = self._program
                slot = program.next_slot_of(item, self.relative_now())
                while slot is not None:
                    yield self.env.timeout(self.delivery_time(slot) - self.env.now)
                    if self._receivable(slot):
                        return (program.record_of(item), program.cycle)
                    # This copy was lost; the delivery instant is
                    # inclusive, so resume strictly after it.
                    slot = program.next_slot_of(item, slot + 1)
            yield self.cycle_started()

    def await_old_version(self, item: int, cycle: int):
        """Process: wait for the on-air version of ``item`` current at
        ``cycle``, with per-slot loss applied to both the current and the
        overflow copy."""
        while True:
            if self._program is None or not self._synced:
                yield self.cycle_started()
                continue
            program = self._program
            now_rel = self.relative_now()

            current = program.record_of(item)
            if current.version <= cycle:
                slot = program.next_slot_of(item, now_rel)
                while slot is not None:
                    yield self.env.timeout(self.delivery_time(slot) - self.env.now)
                    if self._receivable(slot):
                        return (current, True, None)
                    # Lost copy: resume strictly after it (the inclusive
                    # delivery instant would yield the same slot again).
                    slot = program.next_slot_of(item, slot + 1)
            else:
                hit = program.old_version_at(item, cycle)
                if hit is None:
                    # Required version discarded from the air: abort.
                    return (None, False, None)
                old, slot = hit
                # Delivery-instant inclusive (see BroadcastChannel).
                if slot + 0.5 >= now_rel:
                    yield self.env.timeout(self.delivery_time(slot) - self.env.now)
                    if self._receivable(slot):
                        record = ItemRecord(
                            item=old.item,
                            value=old.value,
                            version=old.version,
                            writer=old.writer,
                        )
                        return (record, True, old.valid_to)
                    # An old version rides exactly one slot per cycle;
                    # losing it means waiting for the next heard cycle.
            # Missed this cycle's copy; try again next heard cycle.
            yield self.cycle_started()
