"""The cohort driver: advance whole client cohorts cycle by cycle.

Instead of interleaving every client's events through one kernel heap,
the driver exploits client independence (no client ever influences the
server or another client) to advance each member *client-major*: all of
one client's events within a cycle run before the next client's.  Both
orders execute the identical multiset of per-client steps with identical
per-client clocks and RNG streams, so every counter, ratio and sampler
exact-sum is equal to the discrete run's -- the property
:mod:`repro.cohort.oracle` checks exhaustively.

Per member and cycle boundary ``T1`` the driver replays the kernel's
scheduling rules:

1. run every pending timeout with wake time strictly before ``T1``
   (kernel: those events precede the server's boundary timeout, which
   carries the oldest event id at that instant);
2. decide the cycle's fate (fault pipeline) at ``T1``;
3. on a lost control segment: ``on_signal_lost`` fires at ``T1`` and the
   client keeps its pending state into the next cycle;
4. on a delayed control segment: run wakes strictly below the install
   instant first (they park on the desynchronized channel exactly as
   they would against the live ``FaultyChannel``), then install;
5. install (listener callback: cache + scheme control processing), then
   resume a parked client -- the kernel's ``succeed`` gives resumed
   waiters the freshest event ids, so they run after the installation
   either way.

A timeout landing *exactly* on a boundary fires at the top of the next
cycle's step 1 with the same clock value -- after installation, matching
the kernel's event-id order (the server's boundary timeout is always
older).  At the end of the run, a wake exactly at the stop instant runs
once before the simulation stops, again matching event-id order.
"""

from __future__ import annotations

import math
import random
from typing import Callable, List, Optional

from repro.client.disconnect import DisconnectionModel, UnionDisconnections
from repro.client.machine import BroadcastClient
from repro.cohort.channel import CohortChannel
from repro.cohort.shim import CohortEnv, Wake
from repro.config import ModelParameters
from repro.core.base import Scheme
from repro.core.control import BroadcastRequirements, ReportSchedule
from repro.faults.injector import FaultInjector
from repro.cohort.trace import ServerTrace, build_trace
from repro.runtime import SimulationResult
from repro.stats.metrics import MetricsRegistry


class Member:
    """One client's generator, clock and channel under the driver.

    Also the protocol driver of the live client (:mod:`repro.live`),
    which replays decoded wire cycles through the same kernel-exact
    scheduling rules -- the extraction of the client protocol logic
    from the DES engine that ROADMAP item 2 calls for.
    """

    __slots__ = ("client", "channel", "env", "gen", "wake", "steps")

    def __init__(
        self, client: BroadcastClient, channel: CohortChannel, env: CohortEnv
    ) -> None:
        self.client = client
        self.channel = channel
        self.env = env
        #: ``env.process`` hands the run() generator back unstarted.
        self.gen = client.process
        #: Pending wake time; ``None`` means parked until the next install.
        self.wake: Optional[float] = None
        self.steps = 0

    def advance(self) -> None:
        """Step the generator once and classify what it is waiting on."""
        self.steps += 1
        try:
            value = next(self.gen)
        except StopIteration:  # pragma: no cover - clients loop forever
            self.wake = math.inf
            return
        if type(value) is Wake:
            self.wake = value.at
        else:
            self.wake = None

    def run_until(self, limit: float) -> None:
        """Fire pending timeouts with wake strictly before ``limit``."""
        while self.wake is not None and self.wake < limit:
            self.env.now = self.wake
            self.advance()

    def deliver(self, start: float, program) -> None:
        """Advance this member across one full broadcast cycle."""
        self.run_until(start)
        delay, lost, control_lost = self.channel.prepare_cycle(program)
        if control_lost:
            # The cycle is missed: the client's knowledge (and any pending
            # timeout) carries over; only the listener hook fires.
            self.env.now = start
            self.channel.signal_lost(program.cycle)
            return
        if delay:
            install_at = start + delay
            self.run_until(install_at)
            self.env.now = install_at
        else:
            self.env.now = start
        self.channel.install(program, lost, start)
        if self.wake is None:
            # Parked on cycle_started: resumes now, after installation.
            self.advance()

    def finish(self, end_time: float) -> None:
        """Run out the tail of the simulation up to the stop instant."""
        self.run_until(end_time)
        if self.wake == end_time:
            # A timeout scheduled before the stop instant and landing
            # exactly on it still fires (older event id than the stop).
            self.env.now = end_time
            self.advance()


class CohortSimulation:
    """Drop-in alternative to :class:`~repro.runtime.Simulation` that
    replays one server trace to chunked cohorts of clients.

    Memory stays bounded in the cohort size, not the population: each
    cohort's clients are built lazily (in client-id order, so the master
    RNG draw sequence matches the discrete constructor's), run to
    completion against the shared trace, and released.
    """

    def __init__(
        self,
        params: ModelParameters,
        scheme_factory: Callable[[], Scheme],
        disconnect_factory: Optional[
            Callable[[random.Random], DisconnectionModel]
        ] = None,
        report_schedule: Optional[ReportSchedule] = None,
        cohort_size: int = 4096,
        columnar: bool = True,
    ) -> None:
        params.validate()
        if params.resilience.active:
            raise ValueError(
                "cohort mode does not support resilience bundles; "
                "run without --cohorts for crash-recovery experiments"
            )
        self.report_schedule = report_schedule or ReportSchedule()
        if self.report_schedule.per_cycle != 1:
            raise ValueError(
                "cohort mode requires one report per cycle; sub-cycle "
                "interim reports need the event-driven simulation"
            )
        self.params = params
        self.scheme_factory = scheme_factory
        self.disconnect_factory = disconnect_factory
        self.cohort_size = max(1, cohort_size)
        self.columnar = columnar
        self.metrics = MetricsRegistry()
        #: Total generator resumptions across all clients (the cohort
        #: analogue of the kernel's events-processed figure, for bench).
        self.steps = 0
        self.trace: Optional[ServerTrace] = None

    def run(self) -> SimulationResult:
        params = self.params
        master = random.Random(params.sim.seed)
        # Draw order matches Simulation.__init__: engine RNG first, then
        # per client (in id order) disconnect / fault / workload RNGs.
        engine_rng = random.Random(master.getrandbits(64))
        probe = self.scheme_factory()
        # Merging one scheme's requirements equals merging N identical
        # ones: every field combines by idempotent OR / max.
        requirements = BroadcastRequirements(
            report_window=self.report_schedule.window
        ).merge(probe.requirements())
        trace = self.trace = build_trace(
            params, requirements, self.metrics, engine_rng,
            columnar=self.columnar,
        )
        injector: Optional[FaultInjector] = None
        if params.faults.active:
            injector = FaultInjector(params.faults, params.sim, self.metrics)

        num_clients = params.sim.num_clients
        records = trace.records
        for first in range(0, num_clients, self.cohort_size):
            ids = range(first, min(first + self.cohort_size, num_clients))
            members = [
                self._make_member(client_id, master, injector)
                for client_id in ids
            ]
            for member in members:
                # Prime: the client parks on cycle_started (not on air yet),
                # like the Initialize event before the server's first cycle.
                member.advance()
            for record in records:
                start = record.start
                program = record.program
                for member in members:
                    member.deliver(start, program)
                    # The oracle suite replays `completed` lists only in
                    # discrete mode; here they would grow without bound.
                    member.client.completed.clear()
            for member in members:
                member.finish(trace.end_time)
                member.client.completed.clear()
                self.steps += member.steps

        return SimulationResult(
            params=params,
            scheme_label=probe.label,
            metrics=self.metrics,
            cycles_completed=trace.cycles_completed,
            mean_cycle_slots=trace.mean_cycle_slots,
            clients=[],
        )

    def _make_member(
        self,
        client_id: int,
        master: random.Random,
        injector: Optional[FaultInjector],
    ) -> Member:
        params = self.params
        disconnect: Optional[DisconnectionModel] = None
        if self.disconnect_factory is not None:
            disconnect = self.disconnect_factory(
                random.Random(master.getrandbits(64))
            )
        pipeline = None
        if injector is not None:
            pipeline = injector.pipeline_for(client_id)
            storm = injector.disconnections_for(client_id)
            if storm is not None:
                disconnect = (
                    storm
                    if disconnect is None
                    else UnionDisconnections([disconnect, storm])
                )
        env = CohortEnv()
        channel = CohortChannel(
            env, self.metrics, pipeline=pipeline, client_id=client_id
        )
        client = BroadcastClient(
            env=env,
            channel=channel,
            scheme=self.scheme_factory(),
            params=params.client,
            metrics=self.metrics,
            rng=random.Random(master.getrandbits(64)),
            disconnect=disconnect,
            client_id=client_id,
            warmup_cycles=params.sim.warmup_cycles,
        )
        return Member(client, channel, env)
