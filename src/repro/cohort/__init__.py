"""Cohort-client population engine.

Advances whole cohorts of statistically-identical clients cycle by cycle
against a pre-computed server broadcast trace, instead of scheduling one
event-kernel process per client.  The per-scheme decision rules are the
*same objects* as in the discrete simulation -- ``BroadcastClient``, the
``Scheme`` subclasses, the cache, the fault pipeline -- driven through a
two-method environment shim, so cohort aggregates match N discrete
clients exactly under shared seeds (pinned by ``repro.cohort.oracle``).
"""

from repro.cohort.engine import CohortSimulation

__all__ = ["CohortSimulation"]
