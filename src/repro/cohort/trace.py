"""Server pre-pass: compute the whole broadcast schedule once, up front.

Clients never influence the server (the paper's scalability property,
asserted by the test suite), so the server's entire output -- one
:class:`~repro.broadcast.program.BroadcastProgram` per cycle plus its
start instant -- is a pure function of the parameters and the seed.  The
cohort engine exploits that: it runs the server loop *once*, records the
per-cycle programs, and then replays the trace to any number of client
cohorts.

The loop body is the same sequence as ``Simulation._server_process``
(build with the previous cycle's outcome, observe the broadcast sizing
metrics, air the cycle, run the cycle's update transactions, prune the
server graph), driven by a plain accumulator instead of the event
kernel; cycle starts are exact integers either way, so the recorded
instants are bit-identical to the discrete run's.

Programs are safe to retain: the incremental builder copy-on-writes its
records and buckets, and every record type is frozen.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.broadcast.program import BroadcastProgram
from repro.config import ModelParameters
from repro.core.control import BroadcastRequirements
from repro.server.broadcast import ProgramBuilder
from repro.server.database import Database
from repro.server.itemstate import ItemStateStore, make_item_state
from repro.server.transactions import TransactionEngine
from repro.stats import names as metric_names
from repro.stats.metrics import MetricsRegistry


@dataclass(frozen=True)
class CycleRecord:
    """One broadcast cycle as aired: its program and start instant."""

    cycle: int
    start: float
    program: BroadcastProgram


@dataclass
class ServerTrace:
    """The server's complete, replayable output for one run."""

    records: List[CycleRecord]
    end_time: float
    cycles_completed: int
    mean_cycle_slots: float


def build_trace(
    params: ModelParameters,
    requirements: BroadcastRequirements,
    metrics: MetricsRegistry,
    rng: random.Random,
    columnar: bool = True,
) -> ServerTrace:
    """Run the server loop for every cycle and record the programs.

    ``rng`` must be the engine RNG drawn off the master seed exactly as
    ``Simulation.__init__`` draws it (the first ``getrandbits(64)``), so
    the update workload matches the discrete run's bit for bit.
    """
    database = Database(params.server.broadcast_size)
    item_state: ItemStateStore = make_item_state(
        database,
        retention=(
            params.server.retention if requirements.needs_old_versions else 0
        ),
        columnar=columnar,
        items_per_bucket=params.server.items_per_bucket,
    )
    version_store: Optional[ItemStateStore] = (
        item_state if requirements.needs_old_versions else None
    )
    engine = TransactionEngine(
        params.server, database, version_store=version_store, rng=rng
    )
    builder = ProgramBuilder(
        params.server,
        database,
        version_store=version_store,
        requirements=requirements,
        item_state=item_state,
    )
    records: List[CycleRecord] = []
    outcome = None
    start = 0
    total_slots = 0
    retention = max(params.server.retention, 2)
    num_cycles = params.sim.num_cycles
    for cycle in range(1, num_cycles + 1):
        program = builder.build(cycle, outcome)
        metrics.observe(metric_names.BROADCAST_SLOTS, program.total_slots)
        metrics.observe(
            metric_names.BROADCAST_CONTROL_SLOTS, program.control_slots
        )
        metrics.observe(
            metric_names.BROADCAST_OVERFLOW_SLOTS,
            len(program.overflow_buckets),
        )
        records.append(CycleRecord(cycle=cycle, start=start, program=program))
        # Transactions logically commit *during* the cycle that just
        # aired; their values go out with the next cycle's snapshot.
        outcome = engine.run_cycle(cycle)
        engine.prune_graph_before(cycle - 4 * retention)
        start += program.total_slots
        total_slots += program.total_slots
    return ServerTrace(
        records=records,
        end_time=start,
        cycles_completed=num_cycles,
        mean_cycle_slots=total_slots / num_cycles if num_cycles else 0.0,
    )
