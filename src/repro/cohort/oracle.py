"""Cohort-vs-discrete differential oracle.

For small populations, run the same configuration twice -- once through
the event-driven :class:`~repro.runtime.Simulation`, once through
:class:`~repro.cohort.CohortSimulation` -- and demand that the aggregate
metrics agree *exactly* under the shared seed:

* every counter (commits, aborts by cause, fault/cache/disconnect
  bookkeeping) equal as integers;
* every ratio estimator equal as ``(hits, total)`` integer pairs;
* every sampler equal as ``(count, exact_sum)``, where the exact sum is
  the order-independent Shewchuk accumulation -- the two engines fold
  samples in different orders, so the Welford running mean may differ in
  the last ulp, but the exact sums must be bit-identical;
* the headline ``SimulationResult`` aggregates (cycles completed, mean
  cycle slots, committed/total attempts) equal.

Usage::

    python -m repro.cohort.oracle                  # full default matrix
    python -m repro.cohort.oracle --clients 1 4 --seeds 7 11 --faults on
    python -m repro.cohort.oracle --artifacts DIR  # dump failing cells

Exits non-zero if any cell mismatches; a runtime budget caps the matrix
(remaining cells are reported as skipped, not failed).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cohort.engine import CohortSimulation
from repro.config import ModelParameters
from repro.experiments.schemes import scheme_factory
from repro.runtime import Simulation, SimulationResult
from repro.stats.metrics import MetricsRegistry

#: One scheme per protocol family of the paper (plus the uncached
#: baseline): invalidation-only with and without caching, caching with
#: versions, serialization-graph testing, and multiversion broadcast.
DEFAULT_SCHEMES: Tuple[str, ...] = (
    "inval",
    "inval+cache",
    "versioned-cache",
    "sgt+cache",
    "multiversion+cache",
)
DEFAULT_CLIENTS: Tuple[int, ...] = (1, 4, 16)
DEFAULT_SEEDS: Tuple[int, ...] = (7, 11, 23, 42, 97)

#: Fault mix exercising every model: per-slot and burst loss, control
#: loss, truncation, delayed reports, and disconnect storms.
FAULT_KNOBS = dict(
    slot_loss=0.05,
    burst_rate=0.02,
    burst_length=3.0,
    control_loss=0.03,
    truncation=0.02,
    report_delay=0.05,
    storm_rate=0.02,
)


def oracle_params(
    clients: int, seed: int, faults: bool, num_cycles: int = 30
) -> ModelParameters:
    """Small-but-nontrivial configuration (mirrors the test fixtures):
    enough update pressure for invalidations, old versions and graph
    cycles within a fast run."""
    params = (
        ModelParameters()
        .with_server(
            broadcast_size=100,
            update_range=50,
            offset=30,
            updates_per_cycle=8,
            transactions_per_cycle=5,
            items_per_bucket=10,
            retention=12,
        )
        .with_client(
            read_range=40,
            ops_per_query=4,
            think_time=0.5,
            cache_size=20,
            max_attempts=6,
        )
        .with_sim(
            num_cycles=num_cycles,
            warmup_cycles=3,
            num_clients=clients,
            seed=seed,
        )
    )
    if faults:
        params = params.with_faults(**FAULT_KNOBS)
    return params


def registry_delta(
    discrete: MetricsRegistry, cohort: MetricsRegistry
) -> List[Dict]:
    """Every metric on which the two registries disagree (exactly)."""
    mismatches: List[Dict] = []
    d_counters = dict(discrete.counters())
    c_counters = dict(cohort.counters())
    for name in sorted(set(d_counters) | set(c_counters)):
        d = d_counters[name].value if name in d_counters else None
        c = c_counters[name].value if name in c_counters else None
        if d != c:
            mismatches.append(
                {"metric": name, "kind": "counter", "discrete": d, "cohort": c}
            )
    d_ratios = dict(discrete.ratios())
    c_ratios = dict(cohort.ratios())
    for name in sorted(set(d_ratios) | set(c_ratios)):
        d = (d_ratios[name].hits, d_ratios[name].total) if name in d_ratios else None
        c = (c_ratios[name].hits, c_ratios[name].total) if name in c_ratios else None
        if d != c:
            mismatches.append(
                {"metric": name, "kind": "ratio", "discrete": d, "cohort": c}
            )
    d_samplers = dict(discrete.samplers())
    c_samplers = dict(cohort.samplers())
    for name in sorted(set(d_samplers) | set(c_samplers)):
        d = (
            (d_samplers[name].count, d_samplers[name].exact_sum)
            if name in d_samplers
            else None
        )
        c = (
            (c_samplers[name].count, c_samplers[name].exact_sum)
            if name in c_samplers
            else None
        )
        if d != c:
            mismatches.append(
                {"metric": name, "kind": "sampler", "discrete": d, "cohort": c}
            )
    return mismatches


def result_delta(
    discrete: SimulationResult, cohort: SimulationResult
) -> List[Dict]:
    """Headline aggregate disagreements beyond the raw registries."""
    mismatches: List[Dict] = []
    pairs = [
        ("scheme_label", discrete.scheme_label, cohort.scheme_label),
        ("cycles_completed", discrete.cycles_completed, cohort.cycles_completed),
        ("mean_cycle_slots", discrete.mean_cycle_slots, cohort.mean_cycle_slots),
        ("committed_attempts", discrete.committed_attempts, cohort.committed_attempts),
        ("total_attempts", discrete.total_attempts, cohort.total_attempts),
    ]
    for field, d, c in pairs:
        if d != c:
            mismatches.append(
                {"metric": field, "kind": "result", "discrete": d, "cohort": c}
            )
    return mismatches


def compare_cell(
    scheme: str,
    clients: int,
    seed: int,
    faults: bool,
    num_cycles: int = 30,
    cohort_size: int = 1024,
) -> Dict:
    """Run one (scheme, N, seed, faults) cell both ways and diff.

    Returns a report dict; the cell passed iff ``mismatches`` is empty.
    """
    params = oracle_params(clients, seed, faults, num_cycles=num_cycles)
    factory = scheme_factory(scheme)
    t0 = time.perf_counter()
    discrete = Simulation(params, scheme_factory=factory).run()
    t1 = time.perf_counter()
    cohort = CohortSimulation(
        params, scheme_factory=factory, cohort_size=cohort_size
    ).run()
    t2 = time.perf_counter()
    mismatches = result_delta(discrete, cohort) + registry_delta(
        discrete.metrics, cohort.metrics
    )
    return {
        "scheme": scheme,
        "clients": clients,
        "seed": seed,
        "faults": faults,
        "num_cycles": num_cycles,
        "cohort_size": cohort_size,
        "discrete_seconds": t1 - t0,
        "cohort_seconds": t2 - t1,
        "total_attempts": discrete.total_attempts,
        "mismatches": mismatches,
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cohort.oracle",
        description="Differential oracle: cohort aggregates must equal "
        "N discrete clients exactly under shared seeds.",
    )
    parser.add_argument(
        "--schemes", nargs="+", default=list(DEFAULT_SCHEMES), metavar="S"
    )
    parser.add_argument(
        "--clients", nargs="+", type=int, default=list(DEFAULT_CLIENTS),
        metavar="N",
    )
    parser.add_argument(
        "--seeds", nargs="+", type=int, default=list(DEFAULT_SEEDS),
        metavar="SEED",
    )
    parser.add_argument(
        "--faults",
        choices=["both", "on", "off"],
        default="both",
        help="run the matrix with faults injected, clean, or both",
    )
    parser.add_argument("--cycles", type=int, default=30)
    parser.add_argument(
        "--cohort-size", type=int, default=1024,
        help="members advanced per cohort chunk",
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=600.0,
        help="runtime budget; remaining cells are skipped, not failed",
    )
    parser.add_argument(
        "--artifacts",
        type=Path,
        default=None,
        help="directory for per-failure JSON dumps",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    fault_modes = {"both": (False, True), "on": (True,), "off": (False,)}[
        args.faults
    ]
    cells = [
        (scheme, clients, seed, faults)
        for scheme in args.schemes
        for faults in fault_modes
        for clients in args.clients
        for seed in args.seeds
    ]
    started = time.perf_counter()
    failures: List[Dict] = []
    run = 0
    skipped = 0
    for scheme, clients, seed, faults in cells:
        if time.perf_counter() - started > args.max_seconds:
            skipped += 1
            continue
        report = compare_cell(
            scheme,
            clients,
            seed,
            faults,
            num_cycles=args.cycles,
            cohort_size=args.cohort_size,
        )
        run += 1
        ok = not report["mismatches"]
        tag = "ok" if ok else "FAIL"
        print(
            f"[{tag}] {scheme:<20} N={clients:<3} seed={seed:<4} "
            f"faults={'on' if faults else 'off':<3} "
            f"attempts={report['total_attempts']:<5} "
            f"({report['discrete_seconds']:.2f}s vs "
            f"{report['cohort_seconds']:.2f}s)"
        )
        if not ok:
            failures.append(report)
            for mismatch in report["mismatches"][:8]:
                print(f"       {mismatch}")
            if args.artifacts is not None:
                args.artifacts.mkdir(parents=True, exist_ok=True)
                name = (
                    f"{scheme.replace('/', '_')}-n{clients}-s{seed}-"
                    f"{'faults' if faults else 'clean'}.json"
                )
                (args.artifacts / name).write_text(
                    json.dumps(report, indent=2, sort_keys=True)
                )
    verdict = "PASS" if not failures else "FAIL"
    print(
        f"{verdict}: {run - len(failures)}/{run} cells exact"
        + (f", {skipped} skipped (runtime budget)" if skipped else "")
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
