"""Sim-vs-live differential oracle.

Runs the same configuration twice -- once through the event-driven
:class:`~repro.runtime.Simulation`, once over *real sockets* on
loopback (:class:`~repro.live.server.LiveBroadcastServer` airing
encoded cycles to :class:`~repro.live.client.LiveClient` listeners with
the deterministic :class:`~repro.live.clock.ImmediateClock`) -- and
demands agreement:

**Exact lanes** (lossless wire; faults, when on, are the client-side
pipelines the DES runs use): the merged live registries must equal the
discrete run's *exactly* -- the same criterion as
:mod:`repro.cohort.oracle`, extended across a codec round trip and a
TCP hop.  Any wire-format lossiness (a mis-sized field, a dropped
report, a version off by one) surfaces as a counter mismatch here.

**Chaos lane**: the same configuration behind a seeded
:class:`~repro.live.chaos.ChaosProxy` mangling the byte stream.  Frame
damage is attributed by the proxy's own fault schedule (not the DES
per-client streams -- arrival order is an OS property), so this lane
asserts the protocols' *contracts* instead of registry equality: every
client finishes, the server airs every cycle, progress is made, and
every committed read-only transaction passes the ground-truth
correctness criterion (:func:`repro.verify.check_transaction`) against
the server's version chains and operation history.

Usage::

    python -m repro.live.oracle                    # default matrix
    python -m repro.live.oracle --schemes sgt+cache --seeds 7
    python -m repro.live.oracle --chaos off --artifacts DIR

Exits non-zero if any cell fails; a runtime budget caps the matrix
(remaining cells are reported as skipped, not failed).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cohort.oracle import FAULT_KNOBS, oracle_params, registry_delta
from repro.config import FaultParameters, ModelParameters
from repro.experiments.schemes import scheme_factory
from repro.faults.injector import FaultInjector
from repro.live.chaos import ChaosProxy
from repro.live.client import LiveClient, LiveClientResult
from repro.live.server import LiveBroadcastServer
from repro.runtime import Simulation
from repro.stats.metrics import MetricsRegistry
from repro.verify import violations

#: One scheme per resync family the live client implements:
#: invalidation, multiversion, and serialization-graph testing.
DEFAULT_SCHEMES: Tuple[str, ...] = (
    "inval+cache",
    "multiversion+cache",
    "sgt+cache",
)
DEFAULT_SEEDS: Tuple[int, ...] = (7, 11, 23)


async def run_live(
    params: ModelParameters,
    scheme: str,
    *,
    faults: bool,
    keep_history: bool = False,
    chaos: Optional[FaultParameters] = None,
) -> Tuple[LiveBroadcastServer, List[LiveClientResult], MetricsRegistry]:
    """One live run on loopback; returns (server, results, merged metrics).

    RNG draw order mirrors ``Simulation.__init__`` under the shared
    master seed: the engine RNG first, then per client (in id order) the
    fault pipeline / storm draws and the workload RNG -- so the exact
    lanes share every random stream with their DES twin.
    """
    factory = scheme_factory(scheme)
    probe = factory()
    num_clients = params.sim.num_clients

    master = random.Random(params.sim.seed)
    engine_rng = random.Random(master.getrandbits(64))
    fault_metrics = MetricsRegistry()
    injector: Optional[FaultInjector] = None
    if faults and params.faults.active:
        injector = FaultInjector(params.faults, params.sim, fault_metrics)

    specs = []
    for client_id in range(num_clients):
        pipeline = None
        disconnect = None
        if injector is not None:
            pipeline = injector.pipeline_for(client_id)
            disconnect = injector.disconnections_for(client_id)
        rng = random.Random(master.getrandbits(64))
        specs.append((client_id, pipeline, disconnect, rng))

    server = LiveBroadcastServer(
        params,
        probe.requirements(),
        scheme_label=scheme,
        engine_rng=engine_rng,
        keep_history=keep_history,
    )
    await server.start()
    assert server.port is not None
    proxy: Optional[ChaosProxy] = None
    connect_port = server.port
    if chaos is not None:
        proxy = ChaosProxy(
            server.host,
            server.port,
            chaos,
            num_cycles=params.sim.num_cycles,
            seed=params.sim.seed,
        )
        await proxy.start()
        assert proxy.port is not None
        connect_port = proxy.port

    clients = [
        LiveClient(
            server.host,
            connect_port,
            scheme=factory(),
            client_id=client_id,
            rng=rng,
            pipeline=pipeline,
            disconnect=disconnect,
            params=params,
        )
        for client_id, pipeline, disconnect, rng in specs
    ]
    try:
        tasks = [asyncio.ensure_future(client.run()) for client in clients]
        try:
            await server.wait_for_clients(num_clients)
            await server.run()
            results = await asyncio.wait_for(asyncio.gather(*tasks), 60.0)
        except BaseException:
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            raise
    finally:
        await server.stop()
        if proxy is not None:
            await proxy.stop()

    merged = MetricsRegistry()
    merged.merge(server.metrics)
    merged.merge(fault_metrics)
    for result in results:
        merged.merge(result.metrics)
    return server, list(results), merged


def compare_exact_cell(
    scheme: str,
    seed: int,
    faults: bool,
    *,
    clients: int = 3,
    num_cycles: int = 30,
) -> Dict:
    """Run one (scheme, seed, faults) cell sim and live, then diff."""
    params = oracle_params(clients, seed, faults, num_cycles=num_cycles)
    factory = scheme_factory(scheme)
    t0 = time.perf_counter()
    discrete = Simulation(params, scheme_factory=factory).run()
    t1 = time.perf_counter()
    server, _results, merged = asyncio.run(
        run_live(params, scheme, faults=faults)
    )
    t2 = time.perf_counter()
    mismatches = registry_delta(discrete.metrics, merged)
    if discrete.cycles_completed != server.backend.cycles_completed:
        mismatches.insert(
            0,
            {
                "metric": "cycles_completed",
                "kind": "result",
                "discrete": discrete.cycles_completed,
                "live": server.backend.cycles_completed,
            },
        )
    return {
        "lane": "exact",
        "scheme": scheme,
        "clients": clients,
        "seed": seed,
        "faults": faults,
        "num_cycles": num_cycles,
        "discrete_seconds": t1 - t0,
        "live_seconds": t2 - t1,
        "total_attempts": discrete.total_attempts,
        "mismatches": mismatches,
    }


def check_chaos_cell(
    scheme: str,
    seed: int,
    *,
    clients: int = 3,
    num_cycles: int = 30,
) -> Dict:
    """One chaos-proxy cell: liveness + serializability contracts."""
    params = oracle_params(clients, seed, faults=False, num_cycles=num_cycles)
    chaos = FaultParameters(**FAULT_KNOBS)
    t0 = time.perf_counter()
    server, results, _merged = asyncio.run(
        run_live(params, scheme, faults=False, keep_history=True, chaos=chaos)
    )
    elapsed = time.perf_counter() - t0
    problems: List[Dict] = []
    if server.backend.cycles_completed != num_cycles:
        problems.append(
            {
                "contract": "server airs every cycle",
                "expected": num_cycles,
                "got": server.backend.cycles_completed,
            }
        )
    if len(results) != clients:
        problems.append(
            {
                "contract": "every client finishes",
                "expected": clients,
                "got": len(results),
            }
        )
    attempts = sum(
        len(result.client.completed) for result in results
    )
    heard = sum(result.cycles_heard for result in results)
    if attempts == 0:
        problems.append(
            {"contract": "progress under chaos", "expected": "> 0 attempts",
             "got": 0}
        )
    bad = violations(
        [result.client for result in results],
        server.database,
        server.engine.history,
    )
    if bad:
        problems.append(
            {
                "contract": "committed readsets are consistent",
                "expected": "0 violations",
                "got": [str(txn.txn_id) for txn in bad[:8]],
            }
        )
    return {
        "lane": "chaos",
        "scheme": scheme,
        "clients": clients,
        "seed": seed,
        "num_cycles": num_cycles,
        "live_seconds": elapsed,
        "total_attempts": attempts,
        "cycles_heard": heard,
        "cycles_missed": sum(r.cycles_missed for r in results),
        "mismatches": problems,
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.live.oracle",
        description="Differential oracle: a loopback live broadcast must "
        "match its DES twin exactly (lossless lanes) and keep the "
        "correctness contracts under byte-stream chaos.",
    )
    parser.add_argument(
        "--schemes", nargs="+", default=list(DEFAULT_SCHEMES), metavar="S"
    )
    parser.add_argument(
        "--seeds", nargs="+", type=int, default=list(DEFAULT_SEEDS),
        metavar="SEED",
    )
    parser.add_argument("--clients", type=int, default=3)
    parser.add_argument("--cycles", type=int, default=30)
    parser.add_argument(
        "--faults",
        choices=["both", "on", "off"],
        default="both",
        help="exact lanes: client-side fault pipelines on, off, or both",
    )
    parser.add_argument(
        "--chaos",
        choices=["on", "off"],
        default="on",
        help="also run the chaos-proxy contract lane",
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=600.0,
        help="runtime budget; remaining cells are skipped, not failed",
    )
    parser.add_argument(
        "--artifacts",
        type=Path,
        default=None,
        help="directory for per-failure JSON dumps",
    )
    return parser


def _cell_name(report: Dict) -> str:
    scheme = report["scheme"].replace("/", "_")
    if report["lane"] == "chaos":
        return f"chaos-{scheme}-s{report['seed']}.json"
    mode = "faults" if report["faults"] else "clean"
    return f"exact-{scheme}-s{report['seed']}-{mode}.json"


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    fault_modes = {"both": (False, True), "on": (True,), "off": (False,)}[
        args.faults
    ]
    cells: List[Tuple] = [
        ("exact", scheme, seed, faults)
        for scheme in args.schemes
        for faults in fault_modes
        for seed in args.seeds
    ]
    if args.chaos == "on":
        cells += [
            ("chaos", scheme, seed, None)
            for scheme in args.schemes
            for seed in args.seeds
        ]
    started = time.perf_counter()
    failures: List[Dict] = []
    run = 0
    skipped = 0
    for lane, scheme, seed, faults in cells:
        if time.perf_counter() - started > args.max_seconds:
            skipped += 1
            continue
        if lane == "exact":
            report = compare_exact_cell(
                scheme, seed, faults,
                clients=args.clients, num_cycles=args.cycles,
            )
            label = f"faults={'on' if faults else 'off':<3}"
        else:
            report = check_chaos_cell(
                scheme, seed, clients=args.clients, num_cycles=args.cycles
            )
            label = (
                f"missed={report['cycles_missed']:<4}"
            )
        run += 1
        ok = not report["mismatches"]
        tag = "ok" if ok else "FAIL"
        print(
            f"[{tag}] {lane:<5} {scheme:<20} seed={seed:<4} {label} "
            f"attempts={report['total_attempts']:<5} "
            f"({report['live_seconds']:.2f}s live)"
        )
        if not ok:
            failures.append(report)
            for mismatch in report["mismatches"][:8]:
                print(f"       {mismatch}")
            if args.artifacts is not None:
                args.artifacts.mkdir(parents=True, exist_ok=True)
                (args.artifacts / _cell_name(report)).write_text(
                    json.dumps(report, indent=2, sort_keys=True, default=str)
                )
    verdict = "PASS" if not failures else "FAIL"
    print(
        f"{verdict}: {run - len(failures)}/{run} cells clean"
        + (f", {skipped} skipped (runtime budget)" if skipped else "")
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
