"""The chaos proxy: the sim's fault models lifted to the byte stream.

A TCP man-in-the-middle between the live server and its listeners.
Every downstream connection gets its own upstream connection (so each
listener receives its own HELLO) and its own seeded fault pipeline --
the exact :func:`repro.faults.models.build_pipeline` models the DES and
cohort runs use -- applied at *frame* granularity:

* a ``control_lost`` fate XORs a byte of the CONTROL payload, so the
  frame arrives but fails its CRC32 -- the client walks the same
  checksum-failure path a real corrupted control segment would trigger;
* a lost data/overflow slot drops that slot's frame outright;
* a ``ReportDelay`` fate cannot be expressed at the byte level (clients
  time against the logical clock in the control frame, not against
  arrival instants), so the slots that would have flown before the late
  synchronization are dropped instead -- the same information loss, just
  attributed to the slots rather than the delay;
* the shared storm schedule (:func:`compute_storm_windows`) silences a
  participating connection for whole cycles at a time -- every frame of
  a stormed cycle vanishes, which the client surfaces as missed cycles.

HELLO and END always pass through untouched: the session envelope is
out of band of the air interface the fault models describe.

The fault *schedule* per connection is deterministic in the proxy seed
and the connection's arrival order; it is not the DES per-client stream
(arrival order is an OS property), which is why the oracle's chaos lane
checks liveness and serializability contracts, not registry equality.
"""

from __future__ import annotations

import asyncio
import random
from typing import Dict, List, Optional, Set, Tuple

from repro.config import FaultParameters
from repro.faults.models import (
    CycleFate,
    build_pipeline,
    compute_storm_windows,
)
from repro.live.codec import (
    CONTROL,
    DATA,
    END,
    HELLO,
    OVERFLOW,
    BitReader,
    FrameCorrupt,
    FrameStream,
    encode_frame,
)

#: Mixed into the proxy seed so its RNG tree never collides with the
#: injector's (which salts with 0x5EED_FA17) or the workload stream.
_PROXY_SEED_SALT = 0xC4A0_5EED


def control_geometry(payload: bytes) -> Tuple[int, int, int, int, int]:
    """(control_slots, index_slots, org_code, n_data, n_overflow).

    The leading geometry of a CONTROL payload is profile-independent
    (fixed widths), so the proxy can size a :class:`CycleFate` without
    knowing the wire profile.
    """
    r = BitReader(payload)
    r.read(64)  # start_slot -- the proxy never retimes
    control_slots = r.read(16)
    index_slots = r.read(16)
    org_code = r.read(2)
    n_data = r.read(16)
    n_overflow = r.read(16)
    return control_slots, index_slots, org_code, n_data, n_overflow


class _Link:
    """One downstream listener's lossy view of the upstream broadcast."""

    def __init__(
        self,
        faults: FaultParameters,
        rng: random.Random,
        storm_windows: List[Tuple[int, int]],
    ) -> None:
        self.pipeline = build_pipeline(faults, rng)
        self.participation = faults.storm_participation
        self.windows = storm_windows
        self._storm_rng = random.Random(rng.getrandbits(64))
        self._storm_hit: Dict[int, bool] = {}
        self._fates: Dict[int, CycleFate] = {}

    def _stormed(self, cycle: int) -> bool:
        for index, (first, last) in enumerate(self.windows):
            if first <= cycle <= last:
                hit = self._storm_hit.get(index)
                if hit is None:
                    hit = self._storm_hit[index] = (
                        self._storm_rng.random() < self.participation
                    )
                return hit
        return False

    def _fate_for_control(self, cycle: int, payload: bytes) -> CycleFate:
        control_slots, index_slots, _org, n_data, n_overflow = (
            control_geometry(payload)
        )
        total = control_slots + index_slots + n_data + n_overflow
        fate = CycleFate(
            cycle=cycle, total_slots=total, control_slots=control_slots
        )
        for model in self.pipeline:
            model.apply(fate)
        # The faulty channel's degeneration rules, verbatim.
        if fate.control_delay >= total:
            fate.control_lost = True
        if any(slot < control_slots for slot in fate.lost_slots):
            fate.control_lost = True
        if fate.control_delay > 0:
            # No byte-level analogue of a late decode: drop what flew
            # before synchronization instead.
            for slot in range(total):
                if slot + 0.5 < fate.control_delay:
                    fate.lost_slots.add(slot)
        self._fates[cycle] = fate
        return fate

    def transform(self, frame) -> Optional[bytes]:
        """The bytes to forward downstream for one frame, or ``None``."""
        if frame.type in (HELLO, END):
            return encode_frame(frame.type, frame.cycle, frame.slot, frame.payload)
        if self._stormed(frame.cycle):
            return None
        if frame.type == CONTROL:
            fate = self._fate_for_control(frame.cycle, frame.payload)
            # Old cycles' fates are done with; keep the table tiny.
            self._fates = {frame.cycle: fate}
            raw = encode_frame(CONTROL, frame.cycle, frame.slot, frame.payload)
            if fate.control_lost:
                damaged = bytearray(raw)
                # Flip a payload byte: the header (and its CRC claim)
                # stay intact, so the receiver attributes the damage to
                # this (cycle, slot) and counts a lost control segment.
                damaged[-1] ^= 0xFF
                return bytes(damaged)
            return raw
        fate = self._fates.get(frame.cycle)
        if fate is not None and frame.slot in fate.lost_slots:
            return None
        return encode_frame(frame.type, frame.cycle, frame.slot, frame.payload)


class ChaosProxy:
    """Seeded lossy TCP relay in front of a :class:`LiveBroadcastServer`."""

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        faults: FaultParameters,
        *,
        num_cycles: int,
        seed: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.faults = faults
        self.host = host
        self.requested_port = port
        self._rng = random.Random(seed ^ _PROXY_SEED_SALT)
        self.storm_windows: List[Tuple[int, int]] = []
        if faults.storm_rate > 0:
            self.storm_windows = compute_storm_windows(
                random.Random(self._rng.getrandbits(64)),
                num_cycles,
                faults.storm_rate,
                faults.storm_length,
            )
        self.port: Optional[int] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._conn_tasks: Set[asyncio.Task] = set()
        self._stopped = False

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.requested_port,
            reuse_address=True,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._conn_tasks.clear()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        link = _Link(
            self.faults,
            random.Random(self._rng.getrandbits(64)),
            self.storm_windows,
        )
        up_writer: Optional[asyncio.StreamWriter] = None
        try:
            up_reader, up_writer = await asyncio.open_connection(
                self.upstream_host, self.upstream_port
            )
            stream = FrameStream()
            while True:
                data = await up_reader.read(1 << 16)
                if not data:
                    break
                out = bytearray()
                for event in stream.feed(data):
                    if isinstance(event, FrameCorrupt):
                        # Upstream is loopback-clean; should not happen,
                        # but pass the damage along faithfully if it does.
                        frame = event.frame
                        raw = bytearray(
                            encode_frame(
                                frame.type, frame.cycle, frame.slot,
                                frame.payload,
                            )
                        )
                        raw[-1] ^= 0xFF
                        out += raw
                        continue
                    forwarded = link.transform(event)
                    if forwarded is not None:
                        out += forwarded
                if out:
                    writer.write(bytes(out))
                    await writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            for w in (writer, up_writer):
                if w is None:
                    continue
                w.close()
                try:
                    await w.wait_closed()
                except (ConnectionError, OSError, asyncio.CancelledError):
                    pass
            if task is not None:
                self._conn_tasks.discard(task)
