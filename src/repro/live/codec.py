"""The broadcast wire format: framed, bit-packed cycles.

One broadcast cycle flies as a sequence of *frames*, one per slot-level
unit the chaos layer can drop independently -- exactly the failure
granularity of the sim's fault models:

```
[ CONTROL frame ][ DATA frame ]*[ OVERFLOW frame ]*
```

Each frame is ``header || payload``; the 20-byte header carries the
frame type, the cycle number, the cycle-relative slot and a CRC32 of
the payload, so a receiver can always attribute a corrupted payload to
its (cycle, slot) -- a corrupt control payload is a lost control
segment, a corrupt data payload a lost bucket, mirroring
:class:`~repro.faults.models.SlotLoss` / ``ControlCorruption``.

Payloads are bit-packed with the field widths of the analytic
:class:`~repro.server.sizing.SizeModel`: keys cost ``k`` units, values
``d`` units, version numbers ride age-relative in ``ceil(log2 S)`` bits
(Section 3.2) and transaction ids in ``ceil(log2 N)`` bits qualified
with an age-relative cycle (Section 3.3), so the wire size of a cycle
tracks the Figure 7 closed forms (``tests/live/test_codec.py`` pins the
agreement).  Two deliberate divergences from the strict per-scheme
formulas, both so that a decoded program is *bit-identical* to the
built one for every scheme:

* version ages and last-writer tags ride on every profile (the paper's
  invalidation-only report omits them; our client stack stores both on
  every record, and the SGT layout already prices the pair as
  ``log2(S) + log2(N)`` bits);
* an age that overflows its field width escapes to an explicit 32-bit
  value (all-ones marker) instead of saturating -- items never updated
  since the initial load carry age ``cycle``, which no fixed ``log2 S``
  field can hold.

Encoding reuses one preallocated bit buffer across cycles (the ROADMAP
item-4 follow-on: cycle encoding writes straight into wire buffers
instead of allocating per record).
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from math import ceil, log2
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.broadcast.program import (
    BroadcastProgram,
    Bucket,
    ItemRecord,
    MultiversionOrganization,
    OldVersionRecord,
)
from repro.config import ServerParameters
from repro.core.control import (
    BroadcastRequirements,
    ControlInfo,
    InvalidationReport,
    report_from_updates,
)
from repro.graph.sgraph import GraphDiff, TxnId


class FrameError(Exception):
    """Base wire-format error: the byte stream is not a valid frame."""


class FrameTruncated(FrameError):
    """The buffer ends inside a frame header or payload."""


class FrameCorrupt(FrameError):
    """The payload does not match the header's CRC32."""

    def __init__(self, message: str, frame: "Frame") -> None:
        super().__init__(message)
        #: The frame whose payload failed its checksum (payload bytes as
        #: received); receivers map it to a lost slot / control segment.
        self.frame = frame


class CodecError(FrameError):
    """A payload (or a program being encoded) violates the bit layout."""


# -- bit packing --------------------------------------------------------------


class BitWriter:
    """MSB-first bit packer over one reusable, growable buffer."""

    __slots__ = ("_buf", "_len", "_acc", "_nbits")

    def __init__(self, capacity: int = 1 << 12) -> None:
        self._buf = bytearray(max(64, capacity))
        self.reset()

    def reset(self) -> None:
        self._len = 0
        self._acc = 0
        self._nbits = 0

    def write(self, value: int, bits: int) -> None:
        if value < 0 or (bits < 64 and value >> bits):
            raise CodecError(f"value {value} does not fit in {bits} bits")
        acc = (self._acc << bits) | value
        nbits = self._nbits + bits
        buf, pos = self._buf, self._len
        if pos + (nbits >> 3) >= len(buf):
            self._buf = buf = buf + bytearray(len(buf) + (nbits >> 3))
        while nbits >= 8:
            nbits -= 8
            buf[pos] = (acc >> nbits) & 0xFF
            pos += 1
        self._acc = acc & ((1 << nbits) - 1)
        self._nbits = nbits
        self._len = pos

    def getvalue(self) -> bytes:
        """The packed bytes, zero-padded to a byte boundary."""
        if self._nbits:
            tail = bytes([(self._acc << (8 - self._nbits)) & 0xFF])
            return bytes(self._buf[: self._len]) + tail
        return bytes(self._buf[: self._len])

    @property
    def bit_length(self) -> int:
        return 8 * self._len + self._nbits


class BitReader:
    """MSB-first reader over immutable payload bytes."""

    __slots__ = ("_data", "_pos", "_nbits")

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # bit position
        self._nbits = 8 * len(data)

    def read(self, bits: int) -> int:
        pos = self._pos
        end = pos + bits
        if end > self._nbits:
            raise CodecError("bit stream truncated")
        self._pos = end
        data = self._data
        value = 0
        while bits > 0:
            byte = data[pos >> 3]
            offset = pos & 7
            take = min(8 - offset, bits)
            value = (value << take) | (
                (byte >> (8 - offset - take)) & ((1 << take) - 1)
            )
            pos += take
            bits -= take
        return value


# -- framing ------------------------------------------------------------------

MAGIC = b"\xb7\x1e"
_HEADER = struct.Struct(">2sBBIIII")
HEADER_BYTES = _HEADER.size  # 20

HELLO = 0x01
CONTROL = 0x02
DATA = 0x03
OVERFLOW = 0x04
END = 0x05

_FRAME_TYPES = frozenset((HELLO, CONTROL, DATA, OVERFLOW, END))


@dataclass(frozen=True)
class Frame:
    """One decoded frame: type, (cycle, slot) address, payload bytes."""

    type: int
    cycle: int
    slot: int
    payload: bytes


def encode_frame(ftype: int, cycle: int, slot: int, payload: bytes) -> bytes:
    return (
        _HEADER.pack(
            MAGIC, ftype, 0, cycle, slot, len(payload),
            zlib.crc32(payload) & 0xFFFFFFFF,
        )
        + payload
    )


def decode_frame(buf: bytes, offset: int = 0) -> Tuple[Frame, int]:
    """Strictly decode one frame at ``offset``; returns (frame, consumed).

    Raises :class:`FrameTruncated` when the buffer ends mid-frame,
    :class:`FrameError` on a bad magic or unknown type, and
    :class:`FrameCorrupt` when the payload fails its CRC32.
    """
    if len(buf) - offset < HEADER_BYTES:
        raise FrameTruncated(
            f"need {HEADER_BYTES} header bytes, have {len(buf) - offset}"
        )
    magic, ftype, _flags, cycle, slot, length, crc = _HEADER.unpack_from(
        buf, offset
    )
    if magic != MAGIC:
        raise FrameError(f"bad frame magic {magic!r}")
    if ftype not in _FRAME_TYPES:
        raise FrameError(f"unknown frame type 0x{ftype:02x}")
    start = offset + HEADER_BYTES
    if len(buf) - start < length:
        raise FrameTruncated(
            f"frame payload truncated: need {length} bytes, "
            f"have {len(buf) - start}"
        )
    payload = bytes(buf[start : start + length])
    frame = Frame(type=ftype, cycle=cycle, slot=slot, payload=payload)
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise FrameCorrupt(
            f"payload CRC mismatch in frame (cycle={cycle}, slot={slot})",
            frame,
        )
    return frame, HEADER_BYTES + length


class FrameStream:
    """Incremental frame parser for a TCP byte stream.

    ``feed`` returns complete frames in order; a payload failing its
    CRC comes back as the :class:`FrameCorrupt` exception *object* (the
    receiver maps it to a lost slot), while a broken header is fatal --
    framing is lost and the connection must drop.
    """

    __slots__ = ("_buf",)

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> List[Union[Frame, FrameCorrupt]]:
        self._buf += data
        out: List[Union[Frame, FrameCorrupt]] = []
        offset = 0
        while True:
            try:
                frame, consumed = decode_frame(self._buf, offset)
            except FrameTruncated:
                break
            except FrameCorrupt as corrupt:
                out.append(corrupt)
                offset += HEADER_BYTES + len(corrupt.frame.payload)
                continue
            out.append(frame)
            offset += consumed
        if offset:
            del self._buf[:offset]
        return out


def encode_json_frame(ftype: int, obj: dict) -> bytes:
    """Session frames (HELLO/END) carry self-describing JSON."""
    payload = json.dumps(obj, sort_keys=True).encode("utf-8")
    return encode_frame(ftype, 0, 0, payload)


def decode_json_payload(payload: bytes) -> dict:
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"malformed session payload: {exc}") from None


# -- the wire profile ---------------------------------------------------------

_ORGS = (
    MultiversionOrganization.NONE,
    MultiversionOrganization.CLUSTERED,
    MultiversionOrganization.OVERFLOW,
)


@dataclass(frozen=True)
class WireProfile:
    """Field widths and layout flags of one broadcast's wire format.

    Derived from the server parameters and the merged scheme
    requirements exactly as :class:`~repro.server.sizing.SizeModel`
    prices them: ``key_bits = k`` units, ``data_bits = d`` units,
    ``version_bits = ceil(log2 S)``, ``tid_bits = ceil(log2 N)``.
    """

    key_bits: int
    data_bits: int
    version_bits: int
    tid_bits: int
    items_per_bucket: int
    span: int
    sgt: bool
    organization: MultiversionOrganization
    bits_per_unit: int = 32

    @classmethod
    def from_params(
        cls,
        params: ServerParameters,
        requirements: BroadcastRequirements,
        bits_per_unit: int = 32,
    ) -> "WireProfile":
        span = params.retention if requirements.needs_old_versions else 0
        if requirements.needs_old_versions:
            organization = (
                MultiversionOrganization.CLUSTERED
                if requirements.organization == "clustered"
                else MultiversionOrganization.OVERFLOW
            )
        else:
            organization = MultiversionOrganization.NONE
        return cls(
            key_bits=params.key_size * bits_per_unit,
            data_bits=params.data_size * bits_per_unit,
            version_bits=ceil(log2(max(2, span))),
            tid_bits=ceil(log2(max(2, params.transactions_per_cycle))),
            items_per_bucket=params.items_per_bucket,
            span=span,
            sgt=requirements.needs_sgt,
            organization=organization,
            bits_per_unit=bits_per_unit,
        )

    def to_wire(self) -> dict:
        """JSON-safe form for the HELLO frame."""
        return {
            "key_bits": self.key_bits,
            "data_bits": self.data_bits,
            "version_bits": self.version_bits,
            "tid_bits": self.tid_bits,
            "items_per_bucket": self.items_per_bucket,
            "span": self.span,
            "sgt": self.sgt,
            "organization": self.organization.value,
            "bits_per_unit": self.bits_per_unit,
        }

    @classmethod
    def from_wire(cls, blob: dict) -> "WireProfile":
        try:
            organization = MultiversionOrganization(blob["organization"])
            return cls(
                key_bits=int(blob["key_bits"]),
                data_bits=int(blob["data_bits"]),
                version_bits=int(blob["version_bits"]),
                tid_bits=int(blob["tid_bits"]),
                items_per_bucket=int(blob["items_per_bucket"]),
                span=int(blob["span"]),
                sgt=bool(blob["sgt"]),
                organization=organization,
                bits_per_unit=int(blob["bits_per_unit"]),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise CodecError(f"malformed wire profile: {exc}") from None


# -- the cycle codec ----------------------------------------------------------

#: Age escape: an all-ones age field means "explicit 32-bit age follows".
_AGE_EXPLICIT_BITS = 32


@dataclass(frozen=True)
class ControlHeader:
    """Geometry decoded from a CONTROL payload (plus the control info)."""

    cycle: int
    start_slot: int
    control_slots: int
    index_slots: int
    organization: MultiversionOrganization
    num_data_buckets: int
    num_overflow_buckets: int
    control: ControlInfo

    @property
    def total_slots(self) -> int:
        return (
            self.control_slots
            + self.index_slots
            + self.num_data_buckets
            + self.num_overflow_buckets
        )


class CycleCodec:
    """Encode/decode one :class:`BroadcastProgram` per wire profile.

    One codec instance owns one preallocated :class:`BitWriter`; every
    ``encode_*`` call resets and reuses it, so steady-state encoding
    allocates only the final payload copies.
    """

    def __init__(self, profile: WireProfile, capacity: int = 1 << 14) -> None:
        self.profile = profile
        self._writer = BitWriter(capacity)

    # -- field helpers ------------------------------------------------------

    def _write_age(self, w: BitWriter, age: int, bits: int) -> None:
        if age < 0:
            raise CodecError(f"negative age {age} (field is age-relative)")
        marker = (1 << bits) - 1
        if age < marker:
            w.write(age, bits)
        else:
            w.write(marker, bits)
            w.write(age, _AGE_EXPLICIT_BITS)

    def _read_age(self, r: BitReader, bits: int) -> int:
        value = r.read(bits)
        if value == (1 << bits) - 1:
            return r.read(_AGE_EXPLICIT_BITS)
        return value

    def _write_txn(self, w: BitWriter, tid: TxnId, base_cycle: int) -> None:
        self._write_age(w, base_cycle - tid.cycle, self.profile.version_bits)
        self._write_age(w, tid.seq, self.profile.tid_bits)

    def _read_txn(self, r: BitReader, base_cycle: int) -> TxnId:
        cycle = base_cycle - self._read_age(r, self.profile.version_bits)
        seq = self._read_age(r, self.profile.tid_bits)
        return TxnId(cycle=cycle, seq=seq)

    def _write_opt_txn(
        self, w: BitWriter, tid: Optional[TxnId], base_cycle: int
    ) -> None:
        if tid is None:
            w.write(0, 1)
        else:
            w.write(1, 1)
            self._write_txn(w, tid, base_cycle)

    def _read_opt_txn(self, r: BitReader, base_cycle: int) -> Optional[TxnId]:
        if r.read(1):
            return self._read_txn(r, base_cycle)
        return None

    def _write_value(self, w: BitWriter, value: int) -> None:
        zigzag = (value << 1) if value >= 0 else ((-value << 1) - 1)
        if zigzag >> self.profile.data_bits:
            raise CodecError(
                f"value {value} does not fit the {self.profile.data_bits}-bit "
                "data field"
            )
        w.write(zigzag, self.profile.data_bits)

    def _read_value(self, r: BitReader) -> int:
        zigzag = r.read(self.profile.data_bits)
        return (zigzag >> 1) if not (zigzag & 1) else -((zigzag + 1) >> 1)

    def _write_version(self, w: BitWriter, version: int, cycle: int) -> None:
        # Versions are age-relative (Section 3.2); version 0 (the initial
        # database load, whose age grows without bound) gets its own bit.
        if version == 0:
            w.write(0, 1)
        else:
            w.write(1, 1)
            self._write_age(w, cycle - version, self.profile.version_bits)

    def _read_version(self, r: BitReader, cycle: int) -> int:
        if not r.read(1):
            return 0
        return cycle - self._read_age(r, self.profile.version_bits)

    def _write_record(
        self, w: BitWriter, record: ItemRecord, cycle: int
    ) -> None:
        w.write(record.item, self.profile.key_bits)
        self._write_value(w, record.value)
        self._write_version(w, record.version, cycle)
        self._write_opt_txn(w, record.writer, cycle)
        if self.profile.organization is MultiversionOrganization.OVERFLOW:
            w.write(1 if record.has_old_versions else 0, 1)
        elif record.has_old_versions:
            raise CodecError(
                "has_old_versions pointers only exist in the overflow "
                "organization"
            )

    def _read_record(self, r: BitReader, cycle: int) -> ItemRecord:
        item = r.read(self.profile.key_bits)
        value = self._read_value(r)
        version = self._read_version(r, cycle)
        writer = self._read_opt_txn(r, cycle)
        has_old = False
        if self.profile.organization is MultiversionOrganization.OVERFLOW:
            has_old = bool(r.read(1))
        return ItemRecord(
            item=item,
            value=value,
            version=version,
            writer=writer,
            has_old_versions=has_old,
        )

    def _write_old(
        self, w: BitWriter, old: OldVersionRecord, cycle: int
    ) -> None:
        w.write(old.item, self.profile.key_bits)
        self._write_value(w, old.value)
        self._write_version(w, old.version, cycle)
        self._write_age(w, old.valid_to - old.version, self.profile.version_bits)
        self._write_opt_txn(w, old.writer, cycle)

    def _read_old(self, r: BitReader, cycle: int) -> OldVersionRecord:
        item = r.read(self.profile.key_bits)
        value = self._read_value(r)
        version = self._read_version(r, cycle)
        valid_to = version + self._read_age(r, self.profile.version_bits)
        writer = self._read_opt_txn(r, cycle)
        return OldVersionRecord(
            item=item,
            value=value,
            version=version,
            valid_to=valid_to,
            writer=writer,
        )

    def _write_report(
        self, w: BitWriter, report: InvalidationReport, base_cycle: int
    ) -> None:
        self._write_age(w, base_cycle - report.cycle, self.profile.version_bits)
        items = sorted(report.updated_items)
        w.write(len(items), 32)
        for item in items:
            w.write(item, self.profile.key_bits)
            if self.profile.sgt:
                self._write_opt_txn(
                    w, report.first_writers.get(item), base_cycle
                )

    def _read_report(
        self, r: BitReader, base_cycle: int
    ) -> InvalidationReport:
        cycle = base_cycle - self._read_age(r, self.profile.version_bits)
        count = r.read(32)
        items = []
        writers: Dict[int, TxnId] = {}
        for _ in range(count):
            item = r.read(self.profile.key_bits)
            items.append(item)
            if self.profile.sgt:
                writer = self._read_opt_txn(r, base_cycle)
                if writer is not None:
                    writers[item] = writer
        # Bucket-level projection is derived, not transmitted: clients map
        # items to pages with the same flat arithmetic as the builder.
        return report_from_updates(
            cycle=cycle,
            updated_items=frozenset(items),
            first_writers=writers or None,
            items_per_bucket=self.profile.items_per_bucket,
        )

    # -- frame encoders -----------------------------------------------------

    def encode_control(
        self, program: BroadcastProgram, start_slot: int
    ) -> bytes:
        w = self._writer
        w.reset()
        w.write(start_slot, 64)
        w.write(program.control_slots, 16)
        w.write(program.index_slots, 16)
        w.write(_ORGS.index(program.organization), 2)
        w.write(len(program.data_buckets), 16)
        w.write(len(program.overflow_buckets), 16)

        control = program.control
        cycle = program.cycle
        self._write_age(w, cycle - control.cycle, self.profile.version_bits)
        w.write(control.size_units, 32)
        self._write_report(w, control.invalidation, cycle)
        if len(control.window) > 0xFF:
            raise CodecError(
                f"report window of {len(control.window)} exceeds the "
                "8-bit window field"
            )
        w.write(len(control.window), 8)
        for report in control.window:
            self._write_report(w, report, cycle)
        diff = control.graph_diff
        if diff is None:
            w.write(0, 1)
        else:
            w.write(1, 1)
            self._write_age(w, cycle - diff.cycle, self.profile.version_bits)
            w.write(len(diff.nodes), 32)
            for node in sorted(diff.nodes):
                self._write_txn(w, node, cycle)
            w.write(len(diff.edges), 32)
            for src, dst in sorted(diff.edges):
                self._write_txn(w, src, cycle)
                self._write_txn(w, dst, cycle)
        return encode_frame(CONTROL, program.cycle, 0, w.getvalue())

    def decode_control(self, frame: Frame) -> ControlHeader:
        if frame.type != CONTROL:
            raise CodecError(f"expected a CONTROL frame, got 0x{frame.type:02x}")
        r = BitReader(frame.payload)
        cycle = frame.cycle
        start_slot = r.read(64)
        control_slots = r.read(16)
        index_slots = r.read(16)
        org_code = r.read(2)
        if org_code >= len(_ORGS):
            raise CodecError(f"unknown organization code {org_code}")
        num_data = r.read(16)
        num_overflow = r.read(16)

        control_cycle = cycle - self._read_age(r, self.profile.version_bits)
        size_units = r.read(32)
        invalidation = self._read_report(r, cycle)
        window = tuple(
            self._read_report(r, cycle) for _ in range(r.read(8))
        )
        diff: Optional[GraphDiff] = None
        if r.read(1):
            diff_cycle = cycle - self._read_age(r, self.profile.version_bits)
            nodes = frozenset(
                self._read_txn(r, cycle) for _ in range(r.read(32))
            )
            edges = frozenset(
                (self._read_txn(r, cycle), self._read_txn(r, cycle))
                for _ in range(r.read(32))
            )
            diff = GraphDiff(cycle=diff_cycle, nodes=nodes, edges=edges)
        if control_slots < 1:
            raise CodecError("control_slots must be at least 1")
        return ControlHeader(
            cycle=cycle,
            start_slot=start_slot,
            control_slots=control_slots,
            index_slots=index_slots,
            organization=_ORGS[org_code],
            num_data_buckets=num_data,
            num_overflow_buckets=num_overflow,
            control=ControlInfo(
                cycle=control_cycle,
                invalidation=invalidation,
                graph_diff=diff,
                window=window,
                size_units=size_units,
            ),
        )

    def _encode_bucket(
        self,
        ftype: int,
        bucket: Bucket,
        cycle: int,
        slot: int,
        with_records: bool,
        with_old: bool,
    ) -> bytes:
        w = self._writer
        w.reset()
        w.write(bucket.index, 32)
        if with_records:
            w.write(len(bucket.records), 16)
            for record in bucket.records:
                self._write_record(w, record, cycle)
        if with_old:
            w.write(len(bucket.old_records), 16)
            for old in bucket.old_records:
                self._write_old(w, old, cycle)
        elif bucket.old_records:
            raise CodecError(
                "old versions ride in data buckets only under the "
                "clustered organization"
            )
        return encode_frame(ftype, cycle, slot, w.getvalue())

    def encode_data_bucket(
        self, program: BroadcastProgram, offset: int
    ) -> bytes:
        slot = program.control_slots + program.index_slots + offset
        clustered = (
            program.organization is MultiversionOrganization.CLUSTERED
        )
        return self._encode_bucket(
            DATA,
            program.data_buckets[offset],
            program.cycle,
            slot,
            with_records=True,
            with_old=clustered,
        )

    def decode_data_bucket(self, frame: Frame, header: ControlHeader) -> Bucket:
        if frame.type != DATA:
            raise CodecError(f"expected a DATA frame, got 0x{frame.type:02x}")
        r = BitReader(frame.payload)
        index = r.read(32)
        records = tuple(
            self._read_record(r, frame.cycle) for _ in range(r.read(16))
        )
        old_records: Tuple[OldVersionRecord, ...] = ()
        if header.organization is MultiversionOrganization.CLUSTERED:
            old_records = tuple(
                self._read_old(r, frame.cycle) for _ in range(r.read(16))
            )
        return Bucket(index=index, records=records, old_records=old_records)

    def encode_overflow_bucket(
        self, program: BroadcastProgram, offset: int
    ) -> bytes:
        slot = (
            program.control_slots
            + program.index_slots
            + len(program.data_buckets)
            + offset
        )
        return self._encode_bucket(
            OVERFLOW,
            program.overflow_buckets[offset],
            program.cycle,
            slot,
            with_records=False,
            with_old=True,
        )

    def decode_overflow_bucket(self, frame: Frame) -> Bucket:
        if frame.type != OVERFLOW:
            raise CodecError(
                f"expected an OVERFLOW frame, got 0x{frame.type:02x}"
            )
        r = BitReader(frame.payload)
        index = r.read(32)
        old_records = tuple(
            self._read_old(r, frame.cycle) for _ in range(r.read(16))
        )
        return Bucket(index=index, records=(), old_records=old_records)

    # -- whole cycles -------------------------------------------------------

    def encode_cycle(
        self, program: BroadcastProgram, start_slot: int
    ) -> List[bytes]:
        """All frames of one cycle, in air order (control first)."""
        frames = [self.encode_control(program, start_slot)]
        for offset in range(len(program.data_buckets)):
            frames.append(self.encode_data_bucket(program, offset))
        for offset in range(len(program.overflow_buckets)):
            frames.append(self.encode_overflow_bucket(program, offset))
        return frames

    def assemble(
        self,
        header: ControlHeader,
        data_buckets: Sequence[Bucket],
        overflow_buckets: Sequence[Bucket],
    ) -> BroadcastProgram:
        """Rebuild the program from a fully received cycle."""
        if len(data_buckets) != header.num_data_buckets:
            raise CodecError(
                f"cycle {header.cycle}: expected "
                f"{header.num_data_buckets} data buckets, got "
                f"{len(data_buckets)}"
            )
        if len(overflow_buckets) != header.num_overflow_buckets:
            raise CodecError(
                f"cycle {header.cycle}: expected "
                f"{header.num_overflow_buckets} overflow buckets, got "
                f"{len(overflow_buckets)}"
            )
        return BroadcastProgram(
            cycle=header.cycle,
            control=header.control,
            data_buckets=list(data_buckets),
            overflow_buckets=list(overflow_buckets),
            control_slots=header.control_slots,
            index_slots=header.index_slots,
            organization=header.organization,
        )

    def decode_cycle(
        self, frames: Iterable[bytes]
    ) -> Tuple[BroadcastProgram, int]:
        """Strictly decode one whole cycle from raw frame bytes.

        The loopback/test convenience inverse of :meth:`encode_cycle`;
        returns ``(program, start_slot)``.
        """
        header: Optional[ControlHeader] = None
        data: List[Bucket] = []
        overflow: List[Bucket] = []
        for raw in frames:
            frame, consumed = decode_frame(raw)
            if consumed != len(raw):
                raise CodecError("trailing bytes after frame")
            if frame.type == CONTROL:
                if header is not None:
                    raise CodecError("duplicate CONTROL frame in cycle")
                header = self.decode_control(frame)
            elif frame.type == DATA:
                if header is None:
                    raise CodecError("DATA frame before CONTROL")
                data.append(self.decode_data_bucket(frame, header))
            elif frame.type == OVERFLOW:
                if header is None:
                    raise CodecError("OVERFLOW frame before CONTROL")
                overflow.append(self.decode_overflow_bucket(frame))
            else:
                raise CodecError(
                    f"unexpected frame type 0x{frame.type:02x} in cycle"
                )
        if header is None:
            raise CodecError("cycle has no CONTROL frame")
        return self.assemble(header, data, overflow), header.start_slot

    def segment_bits(self, program: BroadcastProgram) -> Dict[str, int]:
        """Payload bits per segment (frame headers excluded) -- the
        measured counterpart of the :class:`SizeModel` breakdowns."""
        control = len(self.encode_control(program, 0)) - HEADER_BYTES
        data = sum(
            len(self.encode_data_bucket(program, off)) - HEADER_BYTES
            for off in range(len(program.data_buckets))
        )
        overflow = sum(
            len(self.encode_overflow_bucket(program, off)) - HEADER_BYTES
            for off in range(len(program.overflow_buckets))
        )
        return {
            "control_bits": 8 * control,
            "data_bits": 8 * data,
            "overflow_bits": 8 * overflow,
        }


def programs_equal(a: BroadcastProgram, b: BroadcastProgram) -> bool:
    """Field-level equality of two programs (the round-trip invariant)."""
    return (
        a.cycle == b.cycle
        and a.control == b.control
        and a.control_slots == b.control_slots
        and a.index_slots == b.index_slots
        and a.organization == b.organization
        and a.data_buckets == b.data_buckets
        and a.overflow_buckets == b.overflow_buckets
    )
