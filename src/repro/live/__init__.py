"""Live serving mode: the broadcast protocol over real sockets.

Everything else in this repository runs the paper's broadcast-push
protocol inside the discrete-event engine (or its cohort replayer).
This package bridges sim -> production (ROADMAP item 2):

* :mod:`repro.live.codec` -- the wire format: one broadcast cycle as a
  sequence of framed, bit-packed buckets whose field widths come from
  the analytic :class:`~repro.server.sizing.SizeModel`;
* :mod:`repro.live.server` -- an asyncio server that drives the
  unmodified ``ProgramBuilder``/``TransactionEngine`` stack on a cycle
  clock and fans encoded cycles out over TCP connections;
* :mod:`repro.live.client` -- a live client that decodes frames back
  into :class:`~repro.broadcast.program.BroadcastProgram` s and runs the
  unmodified :class:`~repro.client.machine.BroadcastClient` protocol
  logic against them;
* :mod:`repro.live.chaos` -- a man-in-the-middle proxy lifting the
  :mod:`repro.faults` models to the byte stream;
* :mod:`repro.live.oracle` -- the sim-vs-live differential oracle
  (``python -m repro.live.oracle``).

The determinism seam stays in sim: the server's broadcast schedule is a
pure function of the parameters and the seed (the cohort pre-pass
property), so a live run on loopback with a deterministic cycle clock
must reproduce the discrete-event twin's aggregate registry exactly.
"""

from repro.live.codec import (
    CodecError,
    CycleCodec,
    FrameCorrupt,
    FrameError,
    FrameTruncated,
    WireProfile,
)

__all__ = [
    "CodecError",
    "CycleCodec",
    "FrameCorrupt",
    "FrameError",
    "FrameTruncated",
    "WireProfile",
]
