"""The live client: scheme protocol logic off decoded wire frames.

The protocol stack is reused unmodified: a decoded cycle becomes a
:class:`~repro.broadcast.program.BroadcastProgram`, installed into the
same :class:`~repro.cohort.channel.CohortChannel` surface the cohort
replayer drives, and the unmodified
:class:`~repro.client.machine.BroadcastClient` (invalidation /
multiversion / SGT resync, caches, disconnect models, warmup
accounting) advances through the kernel-exact
:class:`~repro.cohort.engine.Member` scheduling rules.  Time is
*logical*: every control frame carries its cycle's cumulative start
slot, so client behaviour is independent of the wall-clock pace -- a
loopback run with client-side fault pipelines is bit-identical to its
DES twin (the live oracle's exact lanes).

Wire damage (the chaos proxy, or a genuinely bad link) maps onto the
sim's fault semantics at reassembly:

* a corrupt or missing CONTROL frame is a lost control segment --
  ``on_signal_lost`` fires, the cycle is missed;
* a corrupt or missing DATA/OVERFLOW frame marks its slot lost; the
  bucket's *position* is back-filled from the previous cycle's program
  (item positions are cycle-invariant in the flat and overflow
  organizations), and lost slots are never receivable, so stale
  back-fill content can never surface in a read;
* in the clustered organization positions shift every cycle, so any
  lost data slot conservatively degrades to a missed cycle;
* wholly missing cycles (every frame dropped) are signalled lost, in
  order, when the next decodable cycle arrives.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Optional, Sequence, Union

from repro.broadcast.program import (
    BroadcastProgram,
    Bucket,
    MultiversionOrganization,
)
from repro.client.disconnect import DisconnectionModel
from repro.client.machine import BroadcastClient
from repro.cohort.channel import CohortChannel
from repro.cohort.engine import Member
from repro.cohort.shim import CohortEnv
from repro.config import ModelParameters
from repro.core.base import Scheme
from repro.experiments.schemes import scheme_factory as lookup_scheme
from repro.faults.models import FaultModel
from repro.live.codec import (
    CONTROL,
    DATA,
    END,
    HELLO,
    OVERFLOW,
    ControlHeader,
    CycleCodec,
    Frame,
    FrameCorrupt,
    FrameError,
    FrameStream,
    WireProfile,
    decode_json_payload,
)
from repro.live.server import params_from_wire, requirements_from_wire
from repro.stats.metrics import (
    FAULT_REPORTS_MISSED,
    FAULT_SLOTS_LOST,
    MetricsRegistry,
)


@dataclass
class LiveClientResult:
    """What one listener brings home from a broadcast."""

    scheme_label: str
    params: ModelParameters
    metrics: MetricsRegistry
    client: BroadcastClient
    cycles_heard: int = 0
    cycles_missed: int = 0
    end_time: float = 0.0


@dataclass
class _PendingCycle:
    """Frames of one cycle as they arrive off the stream."""

    cycle: int
    header: Optional[ControlHeader] = None
    control_corrupt: bool = False
    data: Dict[int, Bucket] = dataclass_field(default_factory=dict)
    overflow: Dict[int, Bucket] = dataclass_field(default_factory=dict)
    corrupt_slots: set = dataclass_field(default_factory=set)

    def complete(self) -> bool:
        header = self.header
        return (
            header is not None
            and not self.control_corrupt
            and not self.corrupt_slots
            and len(self.data) == header.num_data_buckets
            and len(self.overflow) == header.num_overflow_buckets
        )


class LiveClient:
    """One listener: connects, decodes, runs the client protocol.

    With ``pipeline`` (client-side fault models, the sim's semantics)
    the wire must be lossless and the run is bit-exact against the DES
    twin; without one, wire damage itself supplies the cycle fates.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        scheme: Union[str, Scheme, None] = None,
        client_id: int = 0,
        rng: Optional[random.Random] = None,
        metrics: Optional[MetricsRegistry] = None,
        pipeline: Optional[Sequence[FaultModel]] = None,
        disconnect: Optional[DisconnectionModel] = None,
        params: Optional[ModelParameters] = None,
    ) -> None:
        self.host = host
        self.port = port
        self._scheme_arg = scheme
        self.client_id = client_id
        self.rng = rng
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.pipeline = pipeline
        self.disconnect = disconnect
        self._params_override = params

        self.params: Optional[ModelParameters] = None
        self.scheme_label = ""
        self.codec: Optional[CycleCodec] = None
        self.member: Optional[Member] = None
        self.channel: Optional[CohortChannel] = None

        self._cur: Optional[_PendingCycle] = None
        self._last_cycle: Optional[int] = None
        self._prev_program: Optional[BroadcastProgram] = None
        self._next_start = 0.0
        self._cycles_heard = 0
        self._cycles_missed = 0
        self._end_time: Optional[float] = None
        self._done = False

    # -- session setup -------------------------------------------------------

    def _resolve_scheme(self, served_label: str) -> Scheme:
        scheme = self._scheme_arg
        if scheme is None:
            scheme = served_label
        if isinstance(scheme, str):
            built = lookup_scheme(scheme)()
        else:
            built = scheme
        return built

    def _on_hello(self, payload: bytes) -> None:
        hello = decode_json_payload(payload)
        profile = WireProfile.from_wire(hello["profile"])
        self.params = self._params_override or params_from_wire(
            hello["params"]
        )
        served = requirements_from_wire(hello["requirements"])
        scheme = self._resolve_scheme(hello.get("scheme") or "inval")
        needed = scheme.requirements()
        # The server must already be airing everything this scheme reads;
        # merge raises on a conflicting multiversion organization.
        merged = served.merge(needed)
        if merged != served:
            raise FrameError(
                f"scheme {scheme.label!r} needs {needed} but the server "
                f"airs only {served}"
            )
        self.scheme_label = scheme.label
        self.codec = CycleCodec(profile)

        rng = self.rng
        if rng is None:
            # Single-listener convenience: the same derivation as a
            # one-client discrete run (engine draw first, then client 0).
            master = random.Random(self.params.sim.seed)
            master.getrandbits(64)
            rng = random.Random(master.getrandbits(64))
        env = CohortEnv()
        self.channel = CohortChannel(
            env,
            self.metrics,
            pipeline=self.pipeline,
            client_id=self.client_id,
        )
        client = BroadcastClient(
            env=env,
            channel=self.channel,
            scheme=scheme,
            params=self.params.client,
            metrics=self.metrics,
            rng=rng,
            disconnect=self.disconnect,
            client_id=self.client_id,
            warmup_cycles=self.params.sim.warmup_cycles,
        )
        self.member = Member(client, self.channel, env)
        # Prime: parks on cycle_started, like the DES Initialize event.
        self.member.advance()

    # -- cycle reassembly ----------------------------------------------------

    def _open_cycle(self, cycle: int) -> _PendingCycle:
        if self._cur is not None and self._cur.cycle != cycle:
            self._finalize_cycle()
        if self._cur is None:
            self._cur = _PendingCycle(cycle=cycle)
        return self._cur

    def _signal_missed(self, cycle: int) -> None:
        member, channel = self.member, self.channel
        assert member is not None and channel is not None
        member.run_until(self._next_start)
        member.env.now = self._next_start
        channel.signal_lost(cycle)
        self._cycles_missed += 1

    def _finalize_cycle(self) -> None:
        cur, self._cur = self._cur, None
        if cur is None or self.member is None:
            return
        last = self._last_cycle
        if last is not None and cur.cycle > last + 1:
            if self.pipeline is not None:
                raise FrameError(
                    "lossy wire under a client-side fault pipeline; the "
                    "exact lane requires a clean transport"
                )
            # Cycles with not a single frame heard are missed, in order.
            for missing in range(last + 1, cur.cycle):
                self.metrics.count(FAULT_REPORTS_MISSED)
                self._signal_missed(missing)
        self._last_cycle = cur.cycle

        header = cur.header
        if header is None or cur.control_corrupt:
            if self.pipeline is not None:
                raise FrameError(
                    "lossy wire under a client-side fault pipeline; the "
                    "exact lane requires a clean transport"
                )
            self.metrics.count(FAULT_REPORTS_MISSED)
            self._signal_missed(cur.cycle)
            return

        start = float(header.start_slot)
        data_start = header.control_slots + header.index_slots
        overflow_start = data_start + header.num_data_buckets
        lost: set = set(cur.corrupt_slots)
        data: List[Bucket] = []
        for off in range(header.num_data_buckets):
            slot = data_start + off
            bucket = cur.data.get(slot)
            if bucket is None:
                lost.add(slot)
                bucket = self._backfill_data(header, off)
                if bucket is None:
                    if self.pipeline is not None:
                        raise FrameError(
                            "lossy wire under a client-side fault pipeline"
                        )
                    # No safe position knowledge: the cycle is missed,
                    # anchored at the decoded start slot.
                    self.metrics.count(FAULT_REPORTS_MISSED)
                    member = self.member
                    member.run_until(start)
                    member.env.now = start
                    self.channel.signal_lost(cur.cycle)
                    self._cycles_missed += 1
                    self._next_start = start + header.total_slots
                    return
            data.append(bucket)
        overflow: List[Bucket] = []
        for off in range(header.num_overflow_buckets):
            slot = overflow_start + off
            bucket = cur.overflow.get(slot)
            if bucket is None:
                lost.add(slot)
                bucket = Bucket(index=off)
            overflow.append(bucket)

        assert self.codec is not None
        program = self.codec.assemble(header, data, overflow)
        if self.pipeline is not None:
            if lost:
                raise FrameError(
                    "lossy wire under a client-side fault pipeline; the "
                    "exact lane requires a clean transport"
                )
            # The sim's fate semantics, bit-exact: the member runs the
            # pipeline at the boundary, exactly like the cohort driver.
            self.member.deliver(start, program)
        else:
            data_lost = sum(1 for slot in lost if slot >= header.control_slots)
            if data_lost:
                self.metrics.count(FAULT_SLOTS_LOST, data_lost)
            member = self.member
            member.run_until(start)
            member.env.now = start
            self.channel.install(program, frozenset(lost), start)
            if member.wake is None:
                member.advance()
        self._cycles_heard += 1
        self._prev_program = program
        self._next_start = start + header.total_slots

    def _backfill_data(
        self, header: ControlHeader, offset: int
    ) -> Optional[Bucket]:
        """Positions for a lost data bucket, from the previous cycle.

        Sound in the flat and overflow organizations (item positions are
        cycle-invariant); impossible in the clustered one.
        """
        if header.organization is MultiversionOrganization.CLUSTERED:
            return None
        prev = self._prev_program
        if prev is None or offset >= len(prev.data_buckets):
            return None
        stale = prev.data_buckets[offset]
        # Stale records keep items addressable (layout, autoprefetch
        # arming); the lost slot is never receivable, so the stale
        # content cannot reach a read.
        return Bucket(index=stale.index, records=stale.records)

    # -- frame dispatch ------------------------------------------------------

    def _on_event(self, event: Union[Frame, FrameCorrupt]) -> None:
        if isinstance(event, FrameCorrupt):
            frame = event.frame
            if frame.type == HELLO or self.member is None:
                raise event
            cur = self._open_cycle(frame.cycle)
            if frame.type == CONTROL:
                cur.control_corrupt = True
            else:
                cur.corrupt_slots.add(frame.slot)
            return
        frame = event
        if frame.type == HELLO:
            if self.member is None:
                self._on_hello(frame.payload)
            return
        if self.member is None:
            raise FrameError("broadcast frame before HELLO")
        if frame.type == END:
            blob = decode_json_payload(frame.payload)
            self._finalize_cycle()
            self._end_time = float(blob["end_time"])
            self._done = True
            return
        assert self.codec is not None
        if frame.type == CONTROL:
            cur = self._open_cycle(frame.cycle)
            cur.header = self.codec.decode_control(frame)
        elif frame.type == DATA:
            cur = self._open_cycle(frame.cycle)
            if cur.header is not None:
                cur.data[frame.slot] = self.codec.decode_data_bucket(
                    frame, cur.header
                )
            else:
                # Header not (yet) decodable: remember raw, decode later.
                cur.data[frame.slot] = self._decode_data_headerless(frame)
        elif frame.type == OVERFLOW:
            cur = self._open_cycle(frame.cycle)
            cur.overflow[frame.slot] = self.codec.decode_overflow_bucket(
                frame
            )
        if self._cur is not None and self._cur.complete():
            self._finalize_cycle()

    def _decode_data_headerless(self, frame: Frame) -> Bucket:
        """Data arriving before its control frame decodes.

        Only reachable on a lossy wire (TCP preserves order, the server
        sends control first), where the cycle is headed for a miss
        anyway; old-record sections exist only under the clustered
        organization, which the codec profile knows without the header.
        """
        assert self.codec is not None
        clustered = (
            self.codec.profile.organization
            is MultiversionOrganization.CLUSTERED
        )
        pseudo = ControlHeader(
            cycle=frame.cycle,
            start_slot=0,
            control_slots=1,
            index_slots=0,
            organization=(
                MultiversionOrganization.CLUSTERED
                if clustered
                else self.codec.profile.organization
            ),
            num_data_buckets=0,
            num_overflow_buckets=0,
            control=None,  # type: ignore[arg-type]
        )
        return self.codec.decode_data_bucket(frame, pseudo)

    # -- the session ---------------------------------------------------------

    async def run(self) -> LiveClientResult:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            stream = FrameStream()
            while not self._done:
                data = await reader.read(1 << 16)
                if not data:
                    break
                for event in stream.feed(data):
                    self._on_event(event)
                    if self._done:
                        break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        if self.member is None:
            raise FrameError("connection closed before HELLO")
        self._finalize_cycle()
        end_time = (
            self._end_time if self._end_time is not None else self._next_start
        )
        self.member.finish(end_time)
        assert self.params is not None
        return LiveClientResult(
            scheme_label=self.scheme_label,
            params=self.params,
            metrics=self.metrics,
            client=self.member.client,
            cycles_heard=self._cycles_heard,
            cycles_missed=self._cycles_missed,
            end_time=end_time,
        )
