"""The asyncio broadcast server: real encoded cycles over TCP fan-out.

The server stack is the *unmodified* simulation substrate --
``Database`` / ``ItemStateStore`` / ``TransactionEngine`` /
``ProgramBuilder`` -- driven through the unmodified
:class:`~repro.server.backend.SingleChannelBackend` loop.  Only the
kernel is swapped out: the backend's ``yield env.timeout(slots)``
lands here, where the cycle's frames are fanned out to every connected
listener and a :class:`~repro.live.clock.CycleClock` waits out the
airtime.  Clients never send anything after connecting (broadcast
*push*: the paper's scalability property is physical here -- the
server's work is independent of the audience size).

Shutdown is deliberately boring: ``stop()`` is idempotent, closes the
listening socket (opened with ``SO_REUSEADDR``, so back-to-back runs
never flake on ``EADDRINUSE``), closes every client connection, and
awaits every task it spawned -- nothing is left orphaned, which the
start/stop/start tests pin.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import asdict
from typing import Dict, Optional, Set

from repro.cohort.shim import CohortEnv
from repro.config import (
    ClientParameters,
    FaultParameters,
    ModelParameters,
    ResilienceParameters,
    ServerParameters,
    SimulationParameters,
)
from repro.core.control import BroadcastRequirements, ReportSchedule
from repro.live.clock import CycleClock, ImmediateClock
from repro.live.codec import (
    END,
    HELLO,
    CycleCodec,
    WireProfile,
    encode_json_frame,
)
from repro.server.backend import SingleChannelBackend
from repro.server.broadcast import ProgramBuilder
from repro.server.database import Database
from repro.server.itemstate import ItemStateStore, make_item_state
from repro.server.transactions import TransactionEngine
from repro.stats.metrics import MetricsRegistry


def params_to_wire(params: ModelParameters) -> dict:
    """JSON-safe form of the full parameter set (HELLO frame)."""
    return asdict(params)


def params_from_wire(blob: dict) -> ModelParameters:
    return ModelParameters(
        server=ServerParameters(**blob["server"]),
        client=ClientParameters(**blob["client"]),
        sim=SimulationParameters(**blob["sim"]),
        faults=FaultParameters(**blob["faults"]),
        resilience=ResilienceParameters(**blob["resilience"]),
    )


def requirements_to_wire(requirements: BroadcastRequirements) -> dict:
    return asdict(requirements)


def requirements_from_wire(blob: dict) -> BroadcastRequirements:
    return BroadcastRequirements(**blob)


class _ProgramFeed:
    """The backend's channel seam: captures each cycle's program."""

    __slots__ = ("program",)

    def __init__(self) -> None:
        self.program = None

    def begin_cycle(self, program) -> None:
        self.program = program


class LiveBroadcastServer:
    """One live broadcast: the paper's server loop over real sockets.

    Parameters mirror the simulation wiring: the engine RNG is drawn
    from the master seed exactly as ``Simulation.__init__`` draws it
    (first ``getrandbits(64)``), so a loopback run shares the update
    workload of its DES twin bit for bit.
    """

    def __init__(
        self,
        params: ModelParameters,
        requirements: BroadcastRequirements,
        *,
        scheme_label: str = "",
        host: str = "127.0.0.1",
        port: int = 0,
        clock: Optional[CycleClock] = None,
        columnar: bool = True,
        engine_rng: Optional[random.Random] = None,
        metrics: Optional[MetricsRegistry] = None,
        keep_history: bool = False,
        report_schedule: Optional[ReportSchedule] = None,
    ) -> None:
        params.validate()
        if params.resilience.active:
            raise ValueError(
                "live mode does not support resilience bundles; run the "
                "event-driven simulation for crash-recovery experiments"
            )
        self.report_schedule = report_schedule or ReportSchedule()
        if self.report_schedule.per_cycle != 1:
            raise ValueError(
                "live mode airs one report per cycle; sub-cycle interim "
                "reports need the event-driven simulation"
            )
        self.params = params
        self.requirements = BroadcastRequirements(
            report_window=self.report_schedule.window
        ).merge(requirements)
        self.scheme_label = scheme_label
        self.host = host
        self.requested_port = port
        self.clock = clock or ImmediateClock()
        self.metrics = metrics if metrics is not None else MetricsRegistry()

        if engine_rng is None:
            master = random.Random(params.sim.seed)
            engine_rng = random.Random(master.getrandbits(64))

        # -- the unmodified server substrate (same wiring as build_trace) --
        self.database = Database(params.server.broadcast_size)
        item_state = make_item_state(
            self.database,
            retention=(
                params.server.retention
                if self.requirements.needs_old_versions
                else 0
            ),
            columnar=columnar,
            items_per_bucket=params.server.items_per_bucket,
        )
        version_store: Optional[ItemStateStore] = (
            item_state if self.requirements.needs_old_versions else None
        )
        self.engine = TransactionEngine(
            params.server,
            self.database,
            version_store=version_store,
            rng=engine_rng,
            keep_history=keep_history,
        )
        builder = ProgramBuilder(
            params.server,
            self.database,
            version_store=version_store,
            requirements=self.requirements,
            item_state=item_state,
        )
        self._env = CohortEnv()
        self._feed = _ProgramFeed()
        self.backend = SingleChannelBackend(
            env=self._env,
            params=params,
            report_schedule=self.report_schedule,
            metrics=self.metrics,
            engine=self.engine,
            builder=builder,
            channel=self._feed,
        )
        self.profile = WireProfile.from_params(
            params.server, self.requirements
        )
        self.codec = CycleCodec(self.profile)

        self.port: Optional[int] = None
        self.end_time: float = 0.0
        self._server: Optional[asyncio.base_events.Server] = None
        self._writers: Set[asyncio.StreamWriter] = set()
        self._conn_tasks: Set[asyncio.Task] = set()
        self._joined = 0
        self._joined_event = asyncio.Event()
        self._stop_event = asyncio.Event()
        self._stopped = False

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting listeners (does not air anything)."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.requested_port,
            reuse_address=True,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def request_stop(self) -> None:
        """Ask the broadcast loop to wind down (signal-handler safe)."""
        self._stop_event.set()

    async def stop(self) -> None:
        """Idempotent teardown: no orphaned tasks, no lingering sockets."""
        if self._stopped:
            return
        self._stopped = True
        self._stop_event.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._writers):
            writer.close()
        self._writers.clear()
        # Closing the transports feeds EOF to every handler's read();
        # they exit on their own -- cancel only a straggler.
        if self._conn_tasks:
            _done, pending = await asyncio.wait(
                self._conn_tasks, timeout=5.0
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        self._conn_tasks.clear()

    async def wait_for_clients(self, count: int, timeout: float = 30.0) -> None:
        """Block until ``count`` listeners have received their HELLO."""
        async def _wait() -> None:
            while self._joined < count:
                self._joined_event.clear()
                await self._joined_event.wait()

        await asyncio.wait_for(_wait(), timeout)

    # -- connections --------------------------------------------------------

    def _hello_payload(self) -> dict:
        return {
            "profile": self.profile.to_wire(),
            "params": params_to_wire(self.params),
            "requirements": requirements_to_wire(self.requirements),
            "scheme": self.scheme_label,
            "num_cycles": self.params.sim.num_cycles,
        }

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            writer.write(encode_json_frame(HELLO, self._hello_payload()))
            await writer.drain()
            self._writers.add(writer)
            self._joined += 1
            self._joined_event.set()
            # Listeners never talk back; read() returning b"" is the
            # disconnect signal (broadcast push has no client->server path).
            while await reader.read(4096):
                pass
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass
            if task is not None:
                self._conn_tasks.discard(task)

    async def _broadcast(self, payload: bytes) -> None:
        for writer in list(self._writers):
            try:
                writer.write(payload)
                await writer.drain()
            except (ConnectionError, OSError):
                self._writers.discard(writer)

    async def _wait_cycle(self, slots: int) -> None:
        """Wait out one cycle's airtime, abandoning early on stop."""
        waiter = asyncio.ensure_future(self.clock.wait(slots))
        stopper = asyncio.ensure_future(self._stop_event.wait())
        try:
            await asyncio.wait(
                {waiter, stopper}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            for pending in (waiter, stopper):
                if not pending.done():
                    pending.cancel()
            await asyncio.gather(waiter, stopper, return_exceptions=True)

    # -- the broadcast loop --------------------------------------------------

    async def run(self) -> None:
        """Air ``num_cycles`` cycles, then an END frame.

        The backend generator is the DES server loop verbatim; every
        ``Wake`` it yields is one cycle's airtime.
        """
        if self._server is None:
            raise RuntimeError("call start() before run()")
        gen = self.backend.process()
        start_slot = 0
        while not self._stop_event.is_set():
            try:
                wake = next(gen)
            except StopIteration:
                break
            program = self._feed.program
            frames = self.codec.encode_cycle(program, start_slot)
            await self._broadcast(b"".join(frames))
            await self._wait_cycle(program.total_slots)
            start_slot += program.total_slots
            self._env.now = wake.at
        self.end_time = float(start_slot)
        if not self._stop_event.is_set():
            await self._broadcast(
                encode_json_frame(
                    END,
                    {
                        "end_time": self.end_time,
                        "cycles_completed": self.backend.cycles_completed,
                    },
                )
            )

    async def serve(self) -> None:
        """start() + run() + stop() with guaranteed teardown."""
        await self.start()
        try:
            await self.run()
        finally:
            await self.stop()
