"""Cycle clocks: how broadcast slots map to wall-clock time.

The live server airs one cycle, then waits out the cycle's airtime
before building the next -- exactly the ``yield env.timeout(slots)`` of
the DES server loop, with the kernel's virtual clock replaced by one of
these.  The *logical* clock (cycle start = accumulated slot count,
carried in every control frame) is what clients time against, so the
wall-clock pace never affects protocol behaviour -- the property the
sim-vs-live oracle leans on.
"""

from __future__ import annotations

import asyncio


class CycleClock:
    """Waits out one cycle's airtime after its frames are written."""

    async def wait(self, slots: int) -> None:
        raise NotImplementedError


class RealTimeClock(CycleClock):
    """Paces the broadcast at ``slot_seconds`` wall-clock per slot."""

    def __init__(self, slot_seconds: float) -> None:
        if slot_seconds < 0:
            raise ValueError(f"slot_seconds must be >= 0, got {slot_seconds}")
        self.slot_seconds = slot_seconds

    async def wait(self, slots: int) -> None:
        await asyncio.sleep(slots * self.slot_seconds)


class ImmediateClock(CycleClock):
    """Deterministic full-speed clock for loopback oracle runs.

    Yields to the event loop so connection I/O (and the clients pulling
    it) keeps flowing between cycles, but spends no wall-clock time.
    """

    async def wait(self, slots: int) -> None:
        await asyncio.sleep(0)
