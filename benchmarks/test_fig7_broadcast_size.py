"""Figure 7: broadcast-size increase vs. span and updates (analytic).

Paper's shapes and quoted operating point (U=50, span=3 on the 1000-item
broadcast): invalidation-only ~1%, multiversion ~12%, SGT a few percent,
multiversion caching ~2%.
"""

from repro.config import ModelParameters
from repro.experiments import fig7
from repro.experiments.render import render_sweep

PAPER_PARAMS = ModelParameters()  # the paper's D=1000 defaults


def regenerate():
    return (
        fig7.run_vs_span(params=PAPER_PARAMS),
        fig7.run_vs_updates(params=PAPER_PARAMS),
    )


def test_fig7_broadcast_size(benchmark):
    vs_span, vs_updates = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print()
    print(render_sweep(vs_span, precision=2))
    print(render_sweep(vs_updates, precision=2))

    # Shapes: multiversion grows with span, invalidation-only does not.
    assert vs_span.monotone_increasing("multiversion_overflow")
    inval = vs_span.series["invalidation_only"]
    assert all(v == inval[0] for v in inval)
    # Everything grows with the update rate.
    for scheme in vs_updates.series:
        assert vs_updates.monotone_increasing(scheme), scheme

    # The paper's Table-1 operating point (U=50, span=3), loose bands.
    row = {s: vs_updates.series[s][0] for s in vs_updates.series}
    assert row["invalidation_only"] < 2.0  # paper: ~1%
    assert 5.0 < row["multiversion_overflow"] < 25.0  # paper: ~12%
    assert row["sgt"] < 10.0  # paper: ~2.5%
    assert row["multiversion_caching"] < 5.0  # paper: ~1.8%
    # Ordering between the schemes matches Table 1.
    assert (
        row["invalidation_only"]
        < row["multiversion_caching"]
        < row["sgt"]
        < row["multiversion_overflow"]
    )
