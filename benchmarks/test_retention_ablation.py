"""V-multiversion retention ablation (Section 3.2).

Paper's claim: a V-multiversion server guarantees transactions with span
<= V and lets longer ones run at their own risk; V dials bandwidth
against concurrency.  Expected shape: abort rate falls monotonically as
V grows and hits zero once V covers the maximum span, while the bcast
length grows with V.
"""

from repro.experiments import retention
from repro.experiments.render import render_sweep

SWEEP = (1, 4, 16)


def regenerate(bench_profile, bench_params):
    return retention.run(
        profile=bench_profile, params=bench_params, retention_sweep=SWEEP
    )


def test_retention_ablation(benchmark, bench_profile, bench_params):
    sweep = benchmark.pedantic(
        regenerate, args=(bench_profile, bench_params), rounds=1, iterations=1
    )
    print()
    print(render_sweep(sweep, precision=3))

    aborts = sweep.series["abort_rate"]
    slots = sweep.series["slots_per_cycle"]
    # More retained versions, fewer aborts...
    assert sweep.monotone_decreasing("abort_rate", tolerance=0.05)
    # ...until the span is covered and nothing aborts at all.
    assert aborts[-1] == 0.0
    # Risky V=1 server must actually lose transactions.
    assert aborts[0] > 0.0
    # Bandwidth is the price: the bcast grows with V.
    assert sweep.monotone_increasing("slots_per_cycle")
