"""The scalability claim: per-client quality independent of client count.

Not a numbered figure, but the paper's title property ("their performance
is independent of the number of clients") -- measured by sweeping the
audience size and checking the per-client abort rate and latency stay
flat while total throughput grows linearly.
"""

import math

from repro.experiments import scalability
from repro.experiments.render import render_sweep

CLIENTS = (2, 8, 16)


def regenerate(bench_profile, bench_params):
    return scalability.run(
        profile=bench_profile,
        params=bench_params,
        scheme="inval+cache",
        client_sweep=CLIENTS,
    )


def test_scalability(benchmark, bench_profile, bench_params):
    sweep = benchmark.pedantic(
        regenerate, args=(bench_profile, bench_params), rounds=1, iterations=1
    )
    print()
    print(render_sweep(sweep, precision=3))

    rates = sweep.series["abort_rate"]
    latencies = sweep.series["latency_cycles"]
    # Abort rate flat across an 8x audience change.
    assert max(rates) - min(rates) <= 0.2
    # Latency flat too.
    measured = [y for y in latencies if not math.isnan(y)]
    assert max(measured) - min(measured) <= 1.5
    # Total work done grows with the audience (same per-client rate).
    attempts = [p.attempts for p in sweep.points["abort_rate"]]
    assert attempts[-1] > attempts[0] * (CLIENTS[-1] / CLIENTS[0]) * 0.5
