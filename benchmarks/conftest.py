"""Benchmark configuration: scaled-down experiment profiles.

The benchmarks regenerate every figure and table of the paper on a
reduced profile (fewer cycles, clients and sweep points than the full
harness in ``repro.experiments``) so the whole bench suite runs in a few
minutes.  The *shapes* asserted here are the paper's headline claims;
absolute numbers belong to EXPERIMENTS.md, produced by the full profile.
"""

from __future__ import annotations

import pytest

from repro.config import ModelParameters
from repro.experiments.runner import ExperimentProfile

#: Profile used by all simulation benchmarks.
BENCH_PROFILE = ExperimentProfile(
    num_cycles=60, warmup_cycles=6, num_clients=6, seeds=(17,)
)

#: A 4x-reduced world that preserves the paper's ratios:
#: UpdateRange = D/2, ReadRange = D/4, CacheSize = D/8, U = D/20.
BENCH_PARAMS = (
    ModelParameters()
    .with_server(
        broadcast_size=250,
        update_range=125,
        offset=25,
        updates_per_cycle=12,
        transactions_per_cycle=6,
        items_per_bucket=10,
        retention=16,
    )
    .with_client(
        read_range=62,
        ops_per_query=8,
        think_time=1.0,
        cache_size=31,
        max_attempts=8,
    )
)


@pytest.fixture(scope="session")
def bench_profile() -> ExperimentProfile:
    return BENCH_PROFILE


@pytest.fixture(scope="session")
def bench_params() -> ModelParameters:
    return BENCH_PARAMS
