"""Ablation benches for the design choices the paper discusses.

Each ablation flips one mechanism and reports the metric the paper's
prose predicts it moves:

* multiversion organization: overflow vs. clustered (§3.2, Figure 2) --
  clustered pays an index every cycle (longer bcasts), overflow makes
  old-version readers wait for the end of the bcast;
* invalidation granularity: item vs. bucket reports (§7) -- coarser
  reports can only add false aborts;
* transaction optimization: reading in broadcast order (§2.2) shrinks
  the span;
* sub-cycle reports (§7): faster aborts, slightly lower acceptance;
* w-window report retransmission (§5.2.2/§7): disconnected clients can
  resynchronize their caches instead of dropping them.
"""

import pytest

from repro.client.disconnect import RandomDisconnections
from repro.core import InvalidationOnly, MultiversionBroadcast
from repro.core.control import ReportSchedule
from repro.core.invalidation import Granularity
from repro.experiments.runner import run_point
from repro.experiments.render import render_table


def test_ablation_multiversion_organization(benchmark, bench_profile, bench_params):
    def regenerate():
        points = {}
        for organization in ("overflow", "clustered"):
            points[organization] = run_point(
                bench_params,
                lambda: MultiversionBroadcast(organization=organization),
                bench_profile,
                label=organization,
            )
        return points

    points = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    rows = [
        [
            org,
            f"{p.mean_cycle_slots:.1f}",
            f"{p.mean_latency_cycles:.2f}",
            f"{p.abort_rate:.3f}",
        ]
        for org, p in points.items()
    ]
    print()
    print(render_table(["organization", "slots/cycle", "latency", "aborts"], rows))
    # Clustered rebroadcasts an index every cycle: longer bcasts.
    assert (
        points["clustered"].mean_cycle_slots > points["overflow"].mean_cycle_slots
    )
    # Neither organization aborts anything within the retention window.
    assert points["overflow"].abort_rate == 0.0
    assert points["clustered"].abort_rate == 0.0


def test_ablation_invalidation_granularity(benchmark, bench_profile, bench_params):
    def regenerate():
        return {
            grain.value: run_point(
                bench_params,
                lambda: InvalidationOnly(use_cache=True, granularity=grain),
                bench_profile,
                label=grain.value,
            )
            for grain in (Granularity.ITEM, Granularity.BUCKET)
        }

    points = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["granularity", "abort rate"],
            [[g, f"{p.abort_rate:.3f}"] for g, p in points.items()],
        )
    )
    # Bucket-level reports can only add (false) aborts.
    assert points["bucket"].abort_rate >= points["item"].abort_rate - 0.03


def test_ablation_transaction_optimization(benchmark, bench_profile, bench_params):
    def regenerate():
        results = {}
        for sort_reads in (False, True):
            params = bench_params.with_client(sort_reads=sort_reads)
            results[sort_reads] = run_point(
                params,
                lambda: InvalidationOnly(use_cache=False),
                bench_profile,
                label=str(sort_reads),
            )
        return results

    points = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["sorted reads", "span", "latency", "aborts"],
            [
                [
                    str(s),
                    f"{p.mean_span:.2f}",
                    f"{p.mean_latency_cycles:.2f}",
                    f"{p.abort_rate:.3f}",
                ]
                for s, p in points.items()
            ],
        )
    )
    # Reading in broadcast order shrinks the span (Section 2.2).
    assert points[True].mean_span <= points[False].mean_span + 0.2


def test_ablation_subcycle_reports(benchmark, bench_profile, bench_params):
    def regenerate():
        return {
            k: run_point(
                bench_params,
                lambda: InvalidationOnly(use_cache=True),
                bench_profile,
                label=f"k={k}",
                report_schedule=ReportSchedule(per_cycle=k),
            )
            for k in (1, 4)
        }

    points = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["reports/cycle", "abort rate", "attempts"],
            [
                [str(k), f"{p.abort_rate:.3f}", str(p.attempts)]
                for k, p in points.items()
            ],
        )
    )
    # Early aborts may cost a little acceptance, never correctness.
    assert points[4].abort_rate >= points[1].abort_rate - 0.05


def test_ablation_report_window(benchmark, bench_profile, bench_params):
    def flaky(rng):
        return RandomDisconnections(
            p_disconnect=0.12, mean_outage_cycles=1.5, rng=rng
        )

    def regenerate():
        return {
            window: run_point(
                bench_params,
                lambda: InvalidationOnly(use_cache=True),
                bench_profile,
                label=f"w={window}",
                report_schedule=ReportSchedule(window=window),
                disconnect_factory=flaky,
            )
            for window in (0, 4)
        }

    points = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["window", "abort rate", "latency"],
            [
                [str(w), f"{p.abort_rate:.3f}", f"{p.mean_latency_cycles:.2f}"]
                for w, p in points.items()
            ],
        )
    )
    # With a covering window the cache survives outages; quality must not
    # get worse (usually latency improves through better hit rates).
    assert points[4].abort_rate <= points[0].abort_rate + 0.1
