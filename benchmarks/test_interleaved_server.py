"""Ablation: commit-order server execution vs. real interleaved 2PL.

The default engine executes each cycle's transactions serially in commit
order, justified by strict 2PL's conflict-equivalence to that order.
This bench runs the same workload with the actual lock-manager-driven
interleaved executor and checks that the client-visible statistics are
statistically indistinguishable -- the shortcut changes nothing a client
can observe.
"""

from repro.experiments.render import render_table
from repro.experiments.runner import run_point
from repro.experiments.schemes import scheme_factory
from repro.stats.compare import two_proportion_z


def test_interleaved_server_equivalence(benchmark, bench_profile, bench_params):
    def regenerate():
        points = {}
        for interleaved in (False, True):
            points[interleaved] = run_point(
                bench_params,
                scheme_factory("sgt+cache"),
                bench_profile,
                label="interleaved" if interleaved else "commit-order",
                interleaved_server=interleaved,
            )
        return points

    points = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    rows = [
        [
            "interleaved" if mode else "commit-order",
            f"{p.abort_rate:.3f}",
            f"{p.mean_latency_cycles:.2f}",
            str(p.attempts),
        ]
        for mode, p in points.items()
    ]
    print()
    print(render_table(["server execution", "aborts", "latency", "attempts"], rows))

    base, inter = points[False], points[True]
    # The client-visible acceptance rates must not differ significantly.
    test = two_proportion_z(
        base.committed, base.attempts, inter.committed, inter.attempts
    )
    assert not test.significant(alpha=0.01), (
        f"interleaving changed client-visible behaviour (p={test.p_value:.4f})"
    )
    # And latency stays in the same band.
    assert abs(base.mean_latency_cycles - inter.mean_latency_cycles) < 1.5
