"""Figure 5 (right): abort rate vs. offset between the client-read and
server-update access patterns.

Paper's shape: abort rates peak at offset 0 (maximal overlap) and fall
as the update hot-spot moves away from the client's read hot-spot; at
small overlap SGT accepts (nearly) everything.
"""

from repro.experiments import fig5
from repro.experiments.render import render_sweep

OFFSETS = (0, 30, 60)
SCHEMES = ("inval", "versioned-cache", "sgt+cache")


def regenerate(bench_profile, bench_params):
    return fig5.run_right(
        profile=bench_profile,
        params=bench_params,
        schemes=SCHEMES,
        offset_sweep=OFFSETS,
    )


def test_fig5_abort_vs_offset(benchmark, bench_profile, bench_params):
    sweep = benchmark.pedantic(
        regenerate, args=(bench_profile, bench_params), rounds=1, iterations=1
    )
    print()
    print(render_sweep(sweep))

    # Shape 1: maximal overlap is worst for every scheme.
    for scheme in SCHEMES:
        assert sweep.y(scheme, 0) >= sweep.y(scheme, OFFSETS[-1]) - 0.05, scheme
    # Shape 2: at the largest offset SGT accepts nearly everything.
    assert sweep.y("sgt+cache", OFFSETS[-1]) <= 0.15
