"""Figure 8 (right): multiversion latency vs. offset.

Paper's shape: the smaller the overlap between the server-update and the
client-read patterns, the fewer reads need an old version from the end
of the bcast, so the multiversion latency penalty shrinks.
"""

import math

from repro.experiments import fig8
from repro.experiments.render import render_sweep

OFFSETS = (0, 30, 60)


def regenerate(bench_profile, bench_params):
    return fig8.run_right(
        profile=bench_profile, params=bench_params, offset_sweep=OFFSETS
    )


def test_fig8_latency_vs_offset(benchmark, bench_profile, bench_params):
    sweep = benchmark.pedantic(
        regenerate, args=(bench_profile, bench_params), rounds=1, iterations=1
    )
    print()
    print(render_sweep(sweep, precision=2))

    ys = sweep.series["multiversion"]
    assert all(not math.isnan(y) for y in ys)
    # Latency at maximal overlap is the worst (loose tolerance: one
    # half-cycle of noise on the reduced profile).
    assert ys[0] >= ys[-1] - 1.0
    # The cached variant is never slower than the plain one.
    cached = sweep.series["multiversion+cache"]
    for plain_y, cached_y in zip(ys, cached):
        if not math.isnan(cached_y):
            assert cached_y <= plain_y + 0.5
