"""Figure 5 (left): abort rate vs. operations per query.

Paper's shape: every aborting scheme's abort rate climbs with the query
size; SGT(+cache) stays lowest; the versioned cache is competitive with
SGT for short queries but falls behind for long ones.
"""

from repro.experiments import fig5
from repro.experiments.render import render_sweep

OPS = (4, 8, 16)
SCHEMES = ("inval", "inval+cache", "versioned-cache", "sgt+cache")


def regenerate(bench_profile, bench_params):
    return fig5.run_left(
        profile=bench_profile,
        params=bench_params,
        schemes=SCHEMES,
        ops_sweep=OPS,
    )


def test_fig5_abort_vs_ops(benchmark, bench_profile, bench_params):
    sweep = benchmark.pedantic(
        regenerate, args=(bench_profile, bench_params), rounds=1, iterations=1
    )
    print()
    print(render_sweep(sweep))

    # Shape 1: aborts grow with query size for the plain scheme.
    assert sweep.y("inval", OPS[-1]) >= sweep.y("inval", OPS[0]) - 0.05
    # Shape 2: SGT with cache beats plain invalidation-only everywhere.
    for ops in OPS:
        assert sweep.y("sgt+cache", ops) <= sweep.y("inval", ops) + 0.05
    # Shape 3: caching helps invalidation-only.
    for ops in OPS:
        assert sweep.y("inval+cache", ops) <= sweep.y("inval", ops) + 0.05
