"""Figure 8 (left): latency (cycles per committed query) vs. query size.

Paper's shapes: latency grows with the number of operations (about half
a cycle per uncached read); only the multiversion-overflow organization
pays *extra* latency (old-version reads wait for the end of the bcast);
caching cuts latency sharply.
"""

import math

from repro.experiments import fig8
from repro.experiments.render import render_sweep

OPS = (4, 8, 16)
SCHEMES = ("inval", "inval+cache", "multiversion")


def regenerate(bench_profile, bench_params):
    return fig8.run_left(
        profile=bench_profile,
        params=bench_params,
        schemes=SCHEMES,
        ops_sweep=OPS,
    )


def test_fig8_latency_vs_ops(benchmark, bench_profile, bench_params):
    sweep = benchmark.pedantic(
        regenerate, args=(bench_profile, bench_params), rounds=1, iterations=1
    )
    print()
    print(render_sweep(sweep, precision=2))

    def valid(scheme):
        return [y for y in sweep.series[scheme] if not math.isnan(y)]

    # Shape 1: latency grows with query size wherever measured.
    for scheme in SCHEMES:
        ys = valid(scheme)
        assert all(b >= a - 1.0 for a, b in zip(ys, ys[1:])), scheme

    # Shape 2: caching cuts latency.
    for ops in OPS:
        cached = sweep.y("inval+cache", ops)
        plain = sweep.y("inval", ops)
        if not math.isnan(cached) and not math.isnan(plain):
            assert cached <= plain + 0.5

    # Shape 3: multiversion-overflow is the slowest committed path.
    mv = sweep.y("multiversion", OPS[-1])
    cached = sweep.y("inval+cache", OPS[-1])
    if not math.isnan(mv) and not math.isnan(cached):
        assert mv >= cached
