"""Figure 6: abort rate vs. the number of updates per cycle.

Paper's shapes: abort rates climb with server activity for every scheme;
the SGT advantage over invalidation-only shrinks as the graph densifies;
with heavy updates (over a quarter of the broadcast) the versioned cache
overtakes SGT.
"""

from repro.experiments import fig6
from repro.experiments.render import render_sweep

UPDATES = (12, 36, 80)
SCHEMES = ("inval", "versioned-cache", "sgt")


def regenerate(bench_profile, bench_params):
    return fig6.run(
        profile=bench_profile,
        params=bench_params,
        schemes=SCHEMES,
        update_sweep=UPDATES,
    )


def test_fig6_abort_vs_updates(benchmark, bench_profile, bench_params):
    sweep = benchmark.pedantic(
        regenerate, args=(bench_profile, bench_params), rounds=1, iterations=1
    )
    print()
    print(render_sweep(sweep))

    # Shape 1: more updates, more aborts.
    for scheme in SCHEMES:
        assert (
            sweep.y(scheme, UPDATES[-1]) >= sweep.y(scheme, UPDATES[0]) - 0.05
        ), scheme
    # Shape 2: SGT beats invalidation-only at low update rates...
    assert sweep.y("sgt", UPDATES[0]) <= sweep.y("inval", UPDATES[0])
    # ...but its advantage narrows as activity grows.
    low_gap = sweep.y("inval", UPDATES[0]) - sweep.y("sgt", UPDATES[0])
    high_gap = sweep.y("inval", UPDATES[-1]) - sweep.y("sgt", UPDATES[-1])
    assert high_gap <= low_gap + 0.1
