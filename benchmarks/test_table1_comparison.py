"""Table 1: the six-axis comparison of the four approaches, measured.

Paper's qualitative claims, checked quantitatively:

* concurrency: multiversion accepts everything; invalidation-only the
  least; SGT and multiversion-caching in between;
* currency: invalidation-only is the most current (lag 0), multiversion
  the least current;
* size: invalidation-only cheapest, multiversion most expensive;
* disconnections: multiversion tolerates them, the others suffer.
"""

from repro.experiments import table1


def regenerate(bench_profile, bench_params):
    return table1.run(profile=bench_profile, params=bench_params)


def test_table1_comparison(benchmark, bench_profile, bench_params):
    result = benchmark.pedantic(
        regenerate, args=(bench_profile, bench_params), rounds=1, iterations=1
    )
    print()
    print(result.render())

    connected = result.connected
    # Concurrency row: multiversion accepts all transactions.
    assert connected["multiversion"].acceptance_rate == 1.0
    assert (
        connected["multiversion"].acceptance_rate
        >= connected["sgt"].acceptance_rate
        >= connected["inval"].acceptance_rate - 0.05
    )
    assert (
        connected["mv-caching"].acceptance_rate
        >= connected["inval"].acceptance_rate - 0.05
    )

    # Currency row: invalidation-only lag 0; multiversion the oldest view.
    assert connected["inval"].mean_currency_lag == 0.0
    assert (
        connected["multiversion"].mean_currency_lag
        >= connected["mv-caching"].mean_currency_lag - 0.5
    )

    # Size row ordering (analytic, paper's Table 1).
    si = result.size_increase
    assert si["inval"] < si["mv-caching"] < si["sgt"] < si["multiversion"]

    # Disconnection row: multiversion's acceptance is unharmed; the
    # report-dependent schemes lose queries.
    assert result.disconnected["multiversion"].acceptance_rate >= 0.95
    assert (
        result.disconnected["inval"].acceptance_rate
        <= result.connected["inval"].acceptance_rate + 0.05
    )
