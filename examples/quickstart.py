#!/usr/bin/env python3
"""Quickstart: one broadcast server, one client, one consistency scheme.

Runs the paper's default workload (1000-item broadcast, Zipf access,
50 updates per cycle) with serialization-graph testing plus a client
cache, and prints what the client experienced.

    python examples/quickstart.py
"""

from repro import ModelParameters, Simulation
from repro.core import SerializationGraphTesting


def main() -> None:
    params = (
        ModelParameters()
        .with_client(ops_per_query=8)
        .with_sim(num_cycles=80, warmup_cycles=8, num_clients=4, seed=2026)
    )

    sim = Simulation(
        params,
        scheme_factory=lambda: SerializationGraphTesting(use_cache=True),
    )
    result = sim.run()

    print("Scalable read-only transactions in broadcast push -- quickstart")
    print("=" * 64)
    print(f"scheme:                 {result.scheme_label}")
    print(f"broadcast cycles run:   {result.cycles_completed}")
    print(f"mean bcast length:      {result.mean_cycle_slots:.1f} buckets")
    print(f"query attempts:         {result.total_attempts}")
    print(f"committed:              {result.committed_attempts}")
    print(f"abort rate:             {result.abort_rate:.1%}")
    print(f"mean latency:           {result.mean_latency_cycles:.2f} cycles")
    print(f"mean span:              {result.mean_span:.2f} cycles")

    hit_ratio = result.metrics.get_sampler("cache.hit_ratio")
    if hit_ratio is not None and hit_ratio.count:
        print(f"cache hit ratio:        {hit_ratio.mean:.1%}")

    print()
    print("Every query was validated locally at the client -- the server")
    print("was never contacted, so these numbers would be identical with")
    print("one client or one million.")


if __name__ == "__main__":
    main()
