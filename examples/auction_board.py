#!/usr/bin/env python3
"""Electronic auction board under rising bidding frenzy (Figure 6's
crossover, in an application).

An auction house broadcasts the state of 400 lots.  Monitoring clients
read snapshots of several related lots (a bidder tracking substitutes, an
auditor checking a seller's listings).  As the auction heats up, more
lots receive bids per cycle -- the paper's "number of updates" axis.

Figure 6's insight, reproduced here as an operations decision: SGT is
the best acceptor while bidding is calm, but once a large fraction of
the board changes per cycle the serialization graph is so dense that the
humble versioned cache accepts more queries at a fraction of the
broadcast overhead.

    python examples/auction_board.py
"""

from repro import ModelParameters, Simulation
from repro.core import (
    InvalidationOnly,
    InvalidationWithVersionedCache,
    SerializationGraphTesting,
)


def auction_params(bids_per_cycle: int) -> ModelParameters:
    return (
        ModelParameters()
        .with_server(
            broadcast_size=400,
            update_range=200,  # lots currently open for bidding
            offset=0,  # watchers watch exactly the contested lots
            updates_per_cycle=bids_per_cycle,
            transactions_per_cycle=8,
            items_per_bucket=10,
        )
        .with_client(
            read_range=100,
            ops_per_query=5,
            think_time=1.0,
            cache_size=50,
            max_attempts=8,
        )
        .with_sim(num_cycles=90, warmup_cycles=8, num_clients=8, seed=31)
    )


def main() -> None:
    schemes = {
        "invalidation-only": lambda: InvalidationOnly(use_cache=True),
        "versioned cache": lambda: InvalidationWithVersionedCache(),
        "SGT + cache": lambda: SerializationGraphTesting(use_cache=True),
    }
    frenzy_levels = [10, 40, 100, 160]

    print("Lot-snapshot acceptance as the bidding frenzy grows")
    print("=" * 70)
    header = f"{'bids/cycle':>10}  " + "  ".join(
        f"{name:>18}" for name in schemes
    )
    print(header)
    print("-" * len(header))

    accept = {name: [] for name in schemes}
    for bids in frenzy_levels:
        row = [f"{bids:>10}"]
        for name, factory in schemes.items():
            result = Simulation(
                auction_params(bids), scheme_factory=factory
            ).run()
            accept[name].append(result.acceptance_rate)
            row.append(f"{result.acceptance_rate:>18.1%}")
        print("  ".join(row))

    print()
    calm, frenzy = frenzy_levels[0], frenzy_levels[-1]
    sgt_calm = accept["SGT + cache"][0]
    vc_calm = accept["versioned cache"][0]
    sgt_hot = accept["SGT + cache"][-1]
    vc_hot = accept["versioned cache"][-1]
    print(f"While calm ({calm} bids/cycle): SGT accepts {sgt_calm:.0%} vs the")
    print(f"versioned cache's {vc_calm:.0%}.  In full frenzy ({frenzy} bids/")
    print(f"cycle): SGT {sgt_hot:.0%} vs versioned cache {vc_hot:.0%} -- the")
    print("paper's Figure 6 crossover: with heavy server activity the")
    print("serialization graph closes cycles everywhere, and old-enough")
    print("cached values become the better consistency currency.")


if __name__ == "__main__":
    main()
