#!/usr/bin/env python3
"""Mobile news readers with flaky connectivity (Section 5.2.2).

A road-traffic / news service broadcasts 300 bulletins to vehicles that
drive through tunnels and dead zones: every client randomly misses
broadcast cycles.  Queries assemble multi-bulletin digests that must be
mutually consistent (e.g. an incident report plus the detour that was
computed from it).

The example measures Table 1's disconnection-tolerance row:

* invalidation-only and plain SGT lose every active query when a report
  is missed;
* multiversion broadcast lets sleeping clients catch up as long as the
  versions they need are still on the air;
* SGT with the version-number enhancement survives gaps by refusing
  post-gap values only.

    python examples/mobile_newsreader.py
"""

from repro import ModelParameters, Simulation
from repro.client.disconnect import RandomDisconnections
from repro.core import (
    InvalidationOnly,
    MultiversionBroadcast,
    SerializationGraphTesting,
)


def newsreader_params() -> ModelParameters:
    return (
        ModelParameters()
        .with_server(
            broadcast_size=300,
            update_range=150,
            offset=30,
            updates_per_cycle=15,
            transactions_per_cycle=5,
            items_per_bucket=10,
            retention=24,  # generous version retention for sleepy clients
        )
        .with_client(
            read_range=100,
            ops_per_query=5,
            think_time=1.0,
            cache_size=40,
            max_attempts=8,
        )
        .with_sim(num_cycles=120, warmup_cycles=10, num_clients=8, seed=99)
    )


def tunnel_prone(rng):
    """Each heard cycle: 12% chance to enter a ~2-cycle dead zone."""
    return RandomDisconnections(
        p_disconnect=0.12, mean_outage_cycles=2.0, rng=rng
    )


def run(name, factory, disconnected):
    sim = Simulation(
        newsreader_params(),
        scheme_factory=factory,
        disconnect_factory=tunnel_prone if disconnected else None,
    )
    result = sim.run()
    killed = result.abort_count("disconnected")
    return result, killed


def main() -> None:
    schemes = {
        "invalidation-only": lambda: InvalidationOnly(use_cache=True),
        "multiversion bcast": lambda: MultiversionBroadcast(),
        "SGT + cache": lambda: SerializationGraphTesting(use_cache=True),
        "SGT enhanced": lambda: SerializationGraphTesting(
            use_cache=True, enhanced_disconnections=True
        ),
    }

    print("News digests on a flaky wireless broadcast")
    print("=" * 74)
    header = (
        f"{'scheme':<20} {'connected':>10} {'flaky':>10} "
        f"{'lost to gaps':>12} {'degradation':>12}"
    )
    print(header)
    print("-" * len(header))

    for name, factory in schemes.items():
        stable, _ = run(name, factory, disconnected=False)
        flaky, killed = run(name, factory, disconnected=True)
        degradation = stable.acceptance_rate - flaky.acceptance_rate
        print(
            f"{name:<20} {stable.acceptance_rate:>10.1%} "
            f"{flaky.acceptance_rate:>10.1%} {killed:>12} "
            f"{degradation:>+12.1%}"
        )

    print()
    print("Multiversion broadcast shrugs off dead zones (old versions stay")
    print("on the air for S cycles); the invalidation-driven schemes lose")
    print("every query that spans a gap, and the SGT version-number")
    print("enhancement recovers part of that loss.")


if __name__ == "__main__":
    main()
