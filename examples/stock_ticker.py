#!/usr/bin/env python3
"""Stock-ticker dissemination: why consistency control matters.

A server broadcasts 500 stock quotes; prices of actively traded symbols
change every cycle.  Clients read *portfolios* -- several related quotes
that must come from one consistent market snapshot (e.g. to compute a
spread or a portfolio value).  Hot symbols are both the most read and
the most updated (offset 0: maximal overlap).

The example contrasts:

* a naive client that just grabs quotes as they fly by -- and routinely
  computes portfolio values no market state ever had;
* the paper's schemes, which never do, at different abort/latency/
  bandwidth trade-offs.

    python examples/stock_ticker.py
"""

from repro import ModelParameters, Simulation
from repro.core import (
    InvalidationOnly,
    InvalidationWithVersionedCache,
    MultiversionBroadcast,
    NoConsistency,
    SerializationGraphTesting,
)
from repro.verify import violations


def market_params() -> ModelParameters:
    return (
        ModelParameters()
        .with_server(
            broadcast_size=500,  # 500 listed symbols
            update_range=250,  # half of them trade actively
            offset=0,  # hot reads == hot updates
            updates_per_cycle=40,  # trades per bcast period
            transactions_per_cycle=8,
            items_per_bucket=10,
            retention=20,
        )
        .with_client(
            read_range=125,  # symbols anyone holds
            ops_per_query=6,  # portfolio size
            think_time=1.0,
            cache_size=60,
            max_attempts=8,
        )
        .with_sim(num_cycles=100, warmup_cycles=10, num_clients=6, seed=7)
    )


def count_inconsistent(sim) -> int:
    """Committed portfolios that correspond to *no* consistent market
    state -- neither a broadcast snapshot nor any serializable point
    (SGT legitimately commits off-snapshot but serializable readsets)."""
    return len(violations(sim.clients, sim.database, sim.engine.history))


def main() -> None:
    schemes = {
        "naive (no control)": lambda: NoConsistency(),
        "invalidation-only": lambda: InvalidationOnly(use_cache=True),
        "versioned cache": lambda: InvalidationWithVersionedCache(),
        "multiversion bcast": lambda: MultiversionBroadcast(),
        "SGT + cache": lambda: SerializationGraphTesting(use_cache=True),
    }

    print("Portfolio reads over a broadcast stock ticker")
    print("=" * 78)
    header = (
        f"{'scheme':<20} {'committed':>9} {'inconsistent':>12} "
        f"{'abort rate':>10} {'latency':>8} {'bcast len':>9}"
    )
    print(header)
    print("-" * len(header))

    for name, factory in schemes.items():
        sim = Simulation(market_params(), scheme_factory=factory, keep_history=True)
        result = sim.run()
        bad = count_inconsistent(sim)
        latency = result.mean_latency_cycles
        print(
            f"{name:<20} {result.committed_attempts:>9} {bad:>12} "
            f"{result.abort_rate:>10.1%} {latency:>7.2f}c "
            f"{result.mean_cycle_slots:>8.1f}b"
        )

    print()
    print("The naive client commits portfolios that mix quotes from")
    print("different market states; every paper scheme commits zero such")
    print("portfolios and pays for it differently: invalidation-only with")
    print("aborts, multiversion with bandwidth (longer bcasts) and older")
    print("data, SGT with control information and client-side graph work.")


if __name__ == "__main__":
    main()
