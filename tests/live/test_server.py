"""Lifecycle pins for the live broadcast server.

The ISSUE's shutdown bug class: a stopped server must leave nothing
behind -- no bound socket (start/stop/start on the *same* port must
work back to back, which ``SO_REUSEADDR`` plus a full teardown
guarantees), no orphaned connection tasks, and ``stop()`` must be
idempotent and safe to race with ``run()``.
"""

import asyncio

import pytest

from repro.cohort.oracle import oracle_params
from repro.core.control import ReportSchedule
from repro.experiments.schemes import scheme_factory
from repro.live.clock import RealTimeClock
from repro.live.codec import HELLO, FrameStream
from repro.live.server import LiveBroadcastServer


def _make_server(num_cycles: int = 10, **kwargs) -> LiveBroadcastServer:
    params = oracle_params(2, seed=13, faults=False, num_cycles=num_cycles)
    scheme = scheme_factory("inval+cache")()
    return LiveBroadcastServer(params, scheme.requirements(), **kwargs)


def _leftover_tasks():
    return [t for t in asyncio.all_tasks() if t is not asyncio.current_task()]


def test_start_stop_start_reuses_the_same_port():
    async def scenario():
        first = _make_server()
        await first.start()
        port = first.port
        assert port is not None
        await first.stop()

        # Rebinding the exact port immediately must not flake on
        # EADDRINUSE: the socket is opened with SO_REUSEADDR and stop()
        # fully released it.
        second = _make_server(port=port)
        await second.start()
        assert second.port == port
        await second.stop()
        assert _leftover_tasks() == []

    asyncio.run(scenario())


def test_stop_is_idempotent_and_safe_before_start():
    async def scenario():
        server = _make_server()
        await server.stop()  # never started: still a clean no-op
        await server.start()
        await server.stop()
        await server.stop()
        assert _leftover_tasks() == []

    asyncio.run(scenario())


def test_run_requires_start():
    async def scenario():
        server = _make_server()
        with pytest.raises(RuntimeError):
            await server.run()

    asyncio.run(scenario())


def test_stop_drains_connected_listeners_without_orphans():
    async def scenario():
        server = _make_server()
        await server.start()
        reader, writer = await asyncio.open_connection(server.host, server.port)
        await server.wait_for_clients(1, timeout=5.0)

        # The listener heard its HELLO before anything aired.
        stream = FrameStream()
        frames = []
        while not frames:
            frames = stream.feed(await reader.read(1 << 16))
        assert frames[0].type == HELLO

        # Stopping with a live connection must complete promptly and
        # leave no connection-handler task behind.
        await asyncio.wait_for(server.stop(), 10.0)
        assert server._conn_tasks == set()
        assert server._writers == set()
        # The client sees EOF, not a hang.
        assert await asyncio.wait_for(reader.read(), 5.0) == b""
        writer.close()
        await asyncio.wait_for(_await_closed(writer), 5.0)
        assert _leftover_tasks() == []

    async def _await_closed(writer):
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    asyncio.run(scenario())


def test_request_stop_interrupts_a_running_broadcast():
    async def scenario():
        # A slow clock so the broadcast is still mid-flight when the
        # stop request lands (500 cycles would otherwise take minutes).
        server = _make_server(num_cycles=500, clock=RealTimeClock(0.01))
        await server.start()
        runner = asyncio.ensure_future(server.run())
        await asyncio.sleep(0.15)
        server.request_stop()
        await asyncio.wait_for(runner, 10.0)
        assert 0 < server.backend.cycles_completed < 500
        await server.stop()
        assert _leftover_tasks() == []

    asyncio.run(scenario())


def test_rejects_configurations_live_mode_cannot_honor():
    params = oracle_params(2, seed=13, faults=False, num_cycles=10)
    scheme = scheme_factory("inval+cache")()

    resilient = params.with_resilience(retry_policy="backoff")
    with pytest.raises(ValueError, match="resilience"):
        LiveBroadcastServer(resilient, scheme.requirements())

    with pytest.raises(ValueError, match="one report per cycle"):
        LiveBroadcastServer(
            params,
            scheme.requirements(),
            report_schedule=ReportSchedule(per_cycle=2),
        )
