"""The wire codec: round-trip fidelity, framing errors, size agreement.

Three pillars:

* a Hypothesis round-trip property -- any program a profile can legally
  carry decodes bit-identically across all three multiversion
  organizations and every control-info variant (windows, graph diffs,
  SGT writer tags, age escapes);
* framing failure modes -- truncated and corrupted byte streams come
  back as the documented error types, never as garbage programs;
* size agreement -- the codec's field widths are exactly the analytic
  :class:`~repro.server.sizing.SizeModel` widths, pinned both at the
  profile level and by counting the bits of an encoded bucket.
"""

from math import ceil, log2

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broadcast.program import (
    BroadcastProgram,
    Bucket,
    ItemRecord,
    MultiversionOrganization,
    OldVersionRecord,
)
from repro.config import ServerParameters
from repro.core.control import (
    BroadcastRequirements,
    ControlInfo,
    report_from_updates,
)
from repro.graph.sgraph import GraphDiff, TxnId
from repro.live.codec import (
    CONTROL,
    DATA,
    HEADER_BYTES,
    HELLO,
    BitReader,
    BitWriter,
    CodecError,
    CycleCodec,
    FrameCorrupt,
    FrameError,
    FrameStream,
    FrameTruncated,
    WireProfile,
    decode_frame,
    decode_json_payload,
    encode_frame,
    encode_json_frame,
    programs_equal,
)
from repro.server.sizing import SizeModel

ORGS = (
    MultiversionOrganization.NONE,
    MultiversionOrganization.CLUSTERED,
    MultiversionOrganization.OVERFLOW,
)


# -- program strategies -------------------------------------------------------


def _txn_ids(cycle: int) -> st.SearchStrategy:
    # Large seq values force the all-ones age escape through tiny
    # tid_bits fields.
    return st.builds(
        TxnId,
        cycle=st.integers(0, cycle),
        seq=st.integers(0, 500),
    )


def _records(profile: WireProfile, cycle: int) -> st.SearchStrategy:
    overflow = profile.organization is MultiversionOrganization.OVERFLOW
    return st.builds(
        ItemRecord,
        item=st.integers(1, 300),
        value=st.integers(-(2**31), 2**31 - 1),
        version=st.integers(0, cycle),
        writer=st.none() | _txn_ids(cycle),
        has_old_versions=st.booleans() if overflow else st.just(False),
    )


def _old_records(cycle: int) -> st.SearchStrategy:
    def build(item, value, version, extra, writer):
        return OldVersionRecord(
            item=item,
            value=value,
            version=version,
            valid_to=version + extra,
            writer=writer,
        )

    return st.builds(
        build,
        item=st.integers(1, 300),
        value=st.integers(-(2**31), 2**31 - 1),
        version=st.integers(0, cycle),
        extra=st.integers(0, 40),
        writer=st.none() | _txn_ids(cycle),
    )


@st.composite
def _reports(draw, profile: WireProfile, cycle: int):
    report_cycle = draw(st.integers(0, cycle))
    items = draw(st.frozensets(st.integers(1, 300), max_size=6))
    writers = None
    if profile.sgt and items:
        # A partial writer map: the wire carries an optional tag per item.
        tagged = draw(st.sets(st.sampled_from(sorted(items)), max_size=4))
        writers = {item: draw(_txn_ids(cycle)) for item in tagged} or None
    return report_from_updates(
        cycle=report_cycle,
        updated_items=items,
        first_writers=writers,
        items_per_bucket=profile.items_per_bucket,
    )


@st.composite
def _graph_diffs(draw, cycle: int):
    nodes = draw(st.frozensets(_txn_ids(cycle), max_size=4))
    edges = draw(st.frozensets(st.tuples(_txn_ids(cycle), _txn_ids(cycle)), max_size=4))
    return GraphDiff(cycle=draw(st.integers(0, cycle)), nodes=nodes, edges=edges)


@st.composite
def wire_cases(draw):
    """(profile, program) pairs covering every layout the codec owns."""
    organization = draw(st.sampled_from(ORGS))
    profile = WireProfile(
        key_bits=32,
        data_bits=64,
        # Tiny fields exercise the explicit-age escape path.
        version_bits=draw(st.integers(1, 5)),
        tid_bits=draw(st.integers(1, 5)),
        items_per_bucket=draw(st.integers(1, 10)),
        span=0 if organization is MultiversionOrganization.NONE else draw(st.integers(1, 16)),
        sgt=draw(st.booleans()),
        organization=organization,
    )
    cycle = draw(st.integers(1, 40))

    clustered = organization is MultiversionOrganization.CLUSTERED
    buckets = []
    for index in draw(st.lists(st.integers(0, 1000), max_size=3, unique=True)):
        buckets.append(
            Bucket(
                index=index,
                records=tuple(draw(st.lists(_records(profile, cycle), max_size=4))),
                old_records=(
                    tuple(draw(st.lists(_old_records(cycle), max_size=3)))
                    if clustered
                    else ()
                ),
            )
        )
    overflow_buckets = []
    if organization is MultiversionOrganization.OVERFLOW:
        for index in draw(st.lists(st.integers(0, 1000), max_size=2, unique=True)):
            overflow_buckets.append(
                Bucket(
                    index=index,
                    records=(),
                    old_records=tuple(
                        draw(st.lists(_old_records(cycle), max_size=3))
                    ),
                )
            )

    control = ControlInfo(
        cycle=draw(st.integers(0, cycle)),
        invalidation=draw(_reports(profile, cycle)),
        graph_diff=draw(st.none() | _graph_diffs(cycle)),
        window=tuple(draw(st.lists(_reports(profile, cycle), max_size=2))),
        size_units=draw(st.integers(0, 10**6)),
    )
    program = BroadcastProgram(
        cycle=cycle,
        control=control,
        data_buckets=buckets,
        overflow_buckets=overflow_buckets,
        control_slots=draw(st.integers(1, 3)),
        index_slots=draw(st.integers(0, 2)),
        organization=organization,
    )
    return profile, program


# -- round trip ---------------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(wire_cases(), st.integers(0, 2**40))
def test_cycle_round_trip_is_bit_identical(case, start_slot):
    profile, program = case
    encoder = CycleCodec(profile)
    frames = encoder.encode_cycle(program, start_slot)
    # Decode through the HELLO-serialized profile, like a real listener.
    decoder = CycleCodec(WireProfile.from_wire(profile.to_wire()))
    decoded, decoded_slot = decoder.decode_cycle(frames)
    assert decoded_slot == start_slot
    assert programs_equal(program, decoded)
    # Re-encoding the decoded program reproduces the exact wire bytes.
    assert decoder.encode_cycle(decoded, start_slot) == frames


@settings(max_examples=50, deadline=None)
@given(wire_cases())
def test_decoded_control_geometry_matches_program(case):
    profile, program = case
    codec = CycleCodec(profile)
    raw = codec.encode_control(program, 7)
    frame, consumed = decode_frame(raw)
    assert consumed == len(raw)
    header = codec.decode_control(frame)
    assert header.cycle == program.cycle
    assert header.start_slot == 7
    assert header.organization is program.organization
    assert header.num_data_buckets == len(program.data_buckets)
    assert header.num_overflow_buckets == len(program.overflow_buckets)
    assert header.total_slots == program.total_slots


def test_wire_profile_json_round_trip():
    profile = WireProfile(
        key_bits=32,
        data_bits=160,
        version_bits=4,
        tid_bits=4,
        items_per_bucket=10,
        span=16,
        sgt=True,
        organization=MultiversionOrganization.OVERFLOW,
    )
    assert WireProfile.from_wire(profile.to_wire()) == profile


def test_wire_profile_rejects_malformed_blob():
    with pytest.raises(CodecError):
        WireProfile.from_wire({"key_bits": 32})
    blob = WireProfile(
        key_bits=32,
        data_bits=160,
        version_bits=4,
        tid_bits=4,
        items_per_bucket=10,
        span=0,
        sgt=False,
        organization=MultiversionOrganization.NONE,
    ).to_wire()
    blob["organization"] = "no-such-layout"
    with pytest.raises(CodecError):
        WireProfile.from_wire(blob)


# -- framing failure modes ----------------------------------------------------


def test_frame_round_trip_and_json_payload():
    raw = encode_json_frame(HELLO, {"scheme": "sgt+cache", "n": 3})
    frame, consumed = decode_frame(raw)
    assert consumed == len(raw)
    assert frame.type == HELLO
    assert decode_json_payload(frame.payload) == {"scheme": "sgt+cache", "n": 3}
    with pytest.raises(CodecError):
        decode_json_payload(b"\xff\xfe not json")


def test_truncated_header_and_payload_raise_frame_truncated():
    raw = encode_frame(DATA, 3, 5, b"payload bytes")
    for cut in (0, 1, HEADER_BYTES - 1, HEADER_BYTES, len(raw) - 1):
        with pytest.raises(FrameTruncated):
            decode_frame(raw[:cut])


def test_corrupt_payload_raises_frame_corrupt_with_frame_attached():
    raw = bytearray(encode_frame(CONTROL, 9, 0, b"control segment"))
    raw[-1] ^= 0xFF
    with pytest.raises(FrameCorrupt) as excinfo:
        decode_frame(bytes(raw))
    assert excinfo.value.frame.cycle == 9
    assert excinfo.value.frame.type == CONTROL


def test_bad_magic_and_unknown_type_are_fatal_frame_errors():
    raw = bytearray(encode_frame(DATA, 1, 1, b"x"))
    raw[0] ^= 0xFF
    with pytest.raises(FrameError) as excinfo:
        decode_frame(bytes(raw))
    assert not isinstance(excinfo.value, (FrameTruncated, FrameCorrupt))

    raw = bytearray(encode_frame(DATA, 1, 1, b"x"))
    raw[2] = 0x7E  # not a registered frame type
    with pytest.raises(FrameError) as excinfo:
        decode_frame(bytes(raw))
    assert not isinstance(excinfo.value, (FrameTruncated, FrameCorrupt))


def test_frame_stream_reassembles_split_and_corrupt_frames():
    first = encode_frame(DATA, 2, 3, b"alpha")
    damaged = bytearray(encode_frame(DATA, 2, 4, b"beta"))
    damaged[-1] ^= 0xFF
    third = encode_frame(DATA, 2, 5, b"gamma")
    wire = first + bytes(damaged) + third

    stream = FrameStream()
    events = []
    # One byte at a time: the parser must hold partial frames across feeds.
    for i in range(len(wire)):
        events.extend(stream.feed(wire[i : i + 1]))
    assert len(events) == 3
    assert events[0].payload == b"alpha"
    assert isinstance(events[1], FrameCorrupt)
    assert events[1].frame.slot == 4
    assert events[2].payload == b"gamma"
    # The buffer drained completely.
    assert stream.feed(b"") == []


@settings(max_examples=50, deadline=None)
@given(wire_cases(), st.data())
def test_truncated_control_payload_is_a_clean_codec_error(case, data):
    profile, program = case
    codec = CycleCodec(profile)
    raw = codec.encode_control(program, 0)
    payload = raw[HEADER_BYTES:]
    if len(payload) < 2:
        return
    cut = data.draw(st.integers(0, len(payload) - 1))
    frame, _ = decode_frame(encode_frame(CONTROL, program.cycle, 0, payload[:cut]))
    with pytest.raises(CodecError):
        codec.decode_control(frame)


def test_layout_violations_raise_codec_errors():
    flat = WireProfile(
        key_bits=32,
        data_bits=32,
        version_bits=4,
        tid_bits=4,
        items_per_bucket=10,
        span=0,
        sgt=False,
        organization=MultiversionOrganization.NONE,
    )
    codec = CycleCodec(flat)
    pointer = ItemRecord(item=1, value=0, version=0, writer=None, has_old_versions=True)
    with pytest.raises(CodecError):
        codec._write_record(BitWriter(), pointer, cycle=1)

    # Old versions in a data bucket only exist under CLUSTERED.
    old = OldVersionRecord(item=1, value=0, version=1, valid_to=2, writer=None)
    program = BroadcastProgram(
        cycle=3,
        control=ControlInfo(cycle=3, invalidation=report_from_updates(3, frozenset())),
        data_buckets=[Bucket(index=0, records=(), old_records=(old,))],
        overflow_buckets=[],
        control_slots=1,
        index_slots=0,
        organization=MultiversionOrganization.NONE,
    )
    with pytest.raises(CodecError):
        codec.encode_data_bucket(program, 0)

    # A value whose zigzag form overflows the data field.
    with pytest.raises(CodecError):
        codec._write_value(BitWriter(), 2**40)

    # Versions from the future have a negative age.
    with pytest.raises(CodecError):
        codec._write_version(BitWriter(), version=9, cycle=3)


def test_bit_writer_reader_round_trip_and_bounds():
    w = BitWriter(capacity=1)
    values = [(0, 1), (1, 1), (5, 3), (2**31 - 1, 32), (0, 7), (123456, 20)]
    for value, bits in values:
        w.write(value, bits)
    r = BitReader(w.getvalue())
    for value, bits in values:
        assert r.read(bits) == value
    with pytest.raises(CodecError):
        r.read(64)  # past the end
    with pytest.raises(CodecError):
        BitWriter().write(8, 3)  # does not fit


# -- size agreement with the analytic model -----------------------------------


def test_profile_widths_match_size_model():
    params = ServerParameters()
    model = SizeModel(params)
    requirements = BroadcastRequirements(
        needs_old_versions=True, organization="overflow", needs_sgt=True
    )
    profile = WireProfile.from_params(params, requirements)
    assert profile.key_bits == params.key_size * model.bits_per_unit
    assert profile.data_bits == params.data_size * model.bits_per_unit
    assert profile.version_bits == ceil(model.version_bits(params.retention))
    assert profile.tid_bits == ceil(model.tid_bits())
    assert profile.span == params.retention
    assert profile.organization is MultiversionOrganization.OVERFLOW

    # An invalidation-only scheme airs no old versions: span 0 collapses
    # the version field to the model's log2(max(2, 0)) = 1-bit floor.
    flat = WireProfile.from_params(params, BroadcastRequirements())
    assert flat.span == 0
    assert flat.version_bits == ceil(model.version_bits(0)) == 1
    assert flat.organization is MultiversionOrganization.NONE


def _expected_record_bits(profile: WireProfile, record: ItemRecord, cycle: int) -> int:
    bits = profile.key_bits + profile.data_bits
    bits += 1  # version-zero flag
    if record.version:
        age = cycle - record.version
        bits += profile.version_bits
        if age >= (1 << profile.version_bits) - 1:
            bits += 32  # explicit-age escape
    bits += 1  # writer-present flag
    if record.writer is not None:
        for value, width in (
            (cycle - record.writer.cycle, profile.version_bits),
            (record.writer.seq, profile.tid_bits),
        ):
            bits += width
            if value >= (1 << width) - 1:
                bits += 32
    if profile.organization is MultiversionOrganization.OVERFLOW:
        bits += 1  # has-old pointer bit
    return bits


@settings(max_examples=100, deadline=None)
@given(wire_cases())
def test_measured_bucket_bits_equal_model_field_sums(case):
    """segment_bits measures exactly the SizeModel widths, bit for bit."""
    profile, program = case
    if not program.data_buckets:
        return
    codec = CycleCodec(profile)
    measured = codec.segment_bits(program)
    clustered = profile.organization is MultiversionOrganization.CLUSTERED
    expected = 0
    for bucket in program.data_buckets:
        bits = 32 + 16  # bucket index + record count
        for record in bucket.records:
            bits += _expected_record_bits(profile, record, program.cycle)
        if clustered:
            bits += 16
            for old in bucket.old_records:
                # An old record is an item record plus a validity age,
                # minus the pointer bit (there is no overflow to point at).
                bits += _expected_record_bits(
                    profile,
                    ItemRecord(
                        item=old.item,
                        value=old.value,
                        version=old.version,
                        writer=old.writer,
                        has_old_versions=False,
                    ),
                    program.cycle,
                )
                span = old.valid_to - old.version
                bits += profile.version_bits
                if span >= (1 << profile.version_bits) - 1:
                    bits += 32
        expected += 8 * ceil(bits / 8)  # each payload pads to a byte
    assert measured["data_bits"] == expected


def test_segment_bits_track_figure7_growth():
    """More updates -> a larger control segment, data segment unchanged
    (the invalidation-only row of Figure 7)."""
    params = ServerParameters()
    profile = WireProfile.from_params(params, BroadcastRequirements())
    codec = CycleCodec(profile)

    def program_with(updates: int) -> BroadcastProgram:
        records = tuple(
            ItemRecord(item=i, value=i, version=0, writer=None)
            for i in range(1, params.items_per_bucket + 1)
        )
        return BroadcastProgram(
            cycle=5,
            control=ControlInfo(
                cycle=5,
                invalidation=report_from_updates(
                    5,
                    frozenset(range(1, updates + 1)),
                    items_per_bucket=params.items_per_bucket,
                ),
            ),
            data_buckets=[Bucket(index=0, records=records)],
            overflow_buckets=[],
            control_slots=1,
            index_slots=0,
            organization=MultiversionOrganization.NONE,
        )

    small = codec.segment_bits(program_with(5))
    large = codec.segment_bits(program_with(50))
    assert large["control_bits"] - small["control_bits"] == 45 * profile.key_bits
    assert large["data_bits"] == small["data_bits"]
    assert small["overflow_bits"] == large["overflow_bits"] == 0
