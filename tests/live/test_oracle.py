"""Budgeted sim-vs-live oracle cells as regression tests.

The full matrix lives in ``python -m repro.live.oracle`` (the CI
``live-oracle`` job); these cells keep the core guarantee under the
tier-1 suite at a small fixed cost: a loopback broadcast through the
real codec and real sockets is *registry-identical* to its DES twin,
and the chaos lane keeps its liveness/serializability contracts.
"""

import pytest

from repro.live.oracle import check_chaos_cell, compare_exact_cell


@pytest.mark.parametrize(
    "scheme,faults",
    [
        ("inval+cache", False),
        ("multiversion+cache", False),
        ("sgt+cache", False),
        ("inval+cache", True),
    ],
)
def test_exact_lane_matches_discrete_twin(scheme, faults):
    report = compare_exact_cell(scheme, seed=7, faults=faults, clients=2, num_cycles=16)
    assert report["mismatches"] == []
    assert report["total_attempts"] > 0


def test_chaos_lane_keeps_contracts():
    report = check_chaos_cell("multiversion+cache", seed=11, clients=2, num_cycles=16)
    assert report["mismatches"] == []
    assert report["total_attempts"] > 0
    assert report["cycles_heard"] > 0
