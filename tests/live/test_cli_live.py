"""CLI surface of the live mode: ``repro serve`` and ``repro listen``."""

import asyncio
import threading

from repro.cli import main
from repro.cohort.oracle import oracle_params
from repro.experiments.schemes import scheme_factory
from repro.live.server import LiveBroadcastServer

SERVE_SMALL = [
    "serve",
    "--port", "0",
    "--cycles", "8",
    "--warmup", "2",
    "--broadcast-size", "100",
    "--update-range", "50",
    "--updates", "8",
    "--offset", "20",
    "--read-range", "40",
    "--cache-size", "20",
    "--ops", "4",
]


def test_serve_airs_to_an_empty_room(capsys):
    """Broadcast push: the server's work is audience-independent, so a
    serve with zero listeners still airs every cycle and exits 0."""
    assert main(SERVE_SMALL) == 0
    out = capsys.readouterr().out
    assert "airing sgt+cache on 127.0.0.1:" in out
    assert "aired 8 cycle(s)" in out


def test_serve_rejects_resilient_configs_with_exit_2(capsys):
    assert main(SERVE_SMALL + ["--report-window", "-1"]) == 2
    assert "serve:" in capsys.readouterr().out


def test_listen_reports_a_session_summary(capsys):
    params = oracle_params(1, seed=7, faults=False, num_cycles=12)
    scheme = scheme_factory("inval+cache")()
    ready = threading.Event()
    box = {}

    def serve() -> None:
        async def go() -> None:
            server = LiveBroadcastServer(
                params, scheme.requirements(), scheme_label="inval+cache"
            )
            await server.start()
            box["port"] = server.port
            ready.set()
            await server.wait_for_clients(1, timeout=30.0)
            await server.run()
            await server.stop()
            box["cycles"] = server.backend.cycles_completed

        asyncio.run(go())

    thread = threading.Thread(target=serve)
    thread.start()
    try:
        assert ready.wait(10.0)
        code = main(["listen", "--port", str(box["port"])])
    finally:
        thread.join(30.0)
    assert code == 0
    assert not thread.is_alive()
    assert box["cycles"] == 12
    out = capsys.readouterr().out
    # The summary names the resolved scheme (its own label, which may be
    # longer than the registry key aired in the HELLO).
    assert "invalidation-only+cache" in out
    assert "cycles heard" in out


def test_listen_against_a_dead_port_exits_1(capsys):
    # Grab a port that is certainly closed by binding and releasing it.
    import socket

    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    assert main(["listen", "--port", str(port)]) == 1
    assert "listen:" in capsys.readouterr().out
