"""Unit tests for the tracer core: levels, gating, sinks."""

import pytest

from repro.obs.trace import (
    EV_HEADER,
    EV_QUERY_BEGIN,
    JsonlSink,
    NULL_TRACER,
    RingBufferSink,
    TraceLevel,
    Tracer,
    gate,
    read_jsonl,
)


class TestTraceLevel:
    def test_parse_is_case_insensitive(self):
        assert TraceLevel.parse("query") is TraceLevel.QUERY
        assert TraceLevel.parse("READ") is TraceLevel.READ
        assert TraceLevel.parse("Engine") is TraceLevel.ENGINE

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError, match="Unknown trace level"):
            TraceLevel.parse("verbose")

    def test_levels_are_ordered(self):
        assert (
            TraceLevel.OFF
            < TraceLevel.CYCLE
            < TraceLevel.QUERY
            < TraceLevel.READ
            < TraceLevel.ENGINE
        )


class TestGating:
    def test_none_tracer_gates_to_none(self):
        assert gate(None, "queries") is None

    def test_null_tracer_gates_to_none(self):
        assert gate(NULL_TRACER, "cycles") is None

    def test_sinkless_tracer_gates_to_none(self):
        tracer = Tracer(level=TraceLevel.ENGINE, sinks=())
        assert not tracer.enabled
        assert gate(tracer, "queries") is None

    def test_off_tracer_with_sinks_gates_to_none(self):
        tracer = Tracer(level=TraceLevel.OFF, sinks=[RingBufferSink(8)])
        assert gate(tracer, "cycles") is None

    def test_level_inclusion(self):
        tracer = Tracer(level=TraceLevel.QUERY, sinks=[RingBufferSink(8)])
        assert gate(tracer, "cycles") is tracer
        assert gate(tracer, "queries") is tracer
        assert gate(tracer, "reads") is None
        assert gate(tracer, "engine") is None

    def test_read_level_excludes_engine(self):
        tracer = Tracer(level=TraceLevel.READ, sinks=[RingBufferSink(8)])
        assert gate(tracer, "reads") is tracer
        assert gate(tracer, "engine") is None


class TestTracer:
    def test_emit_stamps_time_from_clock(self):
        sink = RingBufferSink(8)
        tracer = Tracer(
            level=TraceLevel.QUERY, sinks=[sink], clock=lambda: 42.5
        )
        tracer.emit(EV_QUERY_BEGIN, txn="t1")
        [event] = sink.events
        assert event == {"t": 42.5, "kind": EV_QUERY_BEGIN, "txn": "t1"}

    def test_bind_clock_replaces_default(self):
        sink = RingBufferSink(8)
        tracer = Tracer(level=TraceLevel.QUERY, sinks=[sink])
        tracer.emit("a")
        tracer.bind_clock(lambda: 7.0)
        tracer.emit("b")
        assert [e["t"] for e in sink.events] == [0.0, 7.0]

    def test_header_carries_level(self):
        sink = RingBufferSink(8)
        tracer = Tracer(level=TraceLevel.READ, sinks=[sink])
        tracer.header(scheme="inval", seed=7)
        [event] = sink.events
        assert event["kind"] == EV_HEADER
        assert event["level"] == "read"
        assert event["scheme"] == "inval"
        assert event["seed"] == 7

    def test_multiple_sinks_all_receive(self):
        a, b = RingBufferSink(8), RingBufferSink(8)
        tracer = Tracer(level=TraceLevel.QUERY, sinks=[a, b])
        tracer.emit("x")
        assert len(a) == len(b) == 1


class TestRingBufferSink:
    def test_bounded_and_counts_drops(self):
        sink = RingBufferSink(capacity=3)
        for i in range(5):
            sink.write({"kind": "e", "i": i})
        assert len(sink) == 3
        assert sink.dropped == 2
        assert [e["i"] for e in sink.events] == [2, 3, 4]

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlSink(path)
        sink.write({"t": 0.0, "kind": "a", "n": 1})
        sink.write({"t": 1.5, "kind": "b", "items": [3, 4]})
        sink.close()
        events = read_jsonl(path)
        assert events == [
            {"t": 0.0, "kind": "a", "n": 1},
            {"t": 1.5, "kind": "b", "items": [3, 4]},
        ]

    def test_write_after_close_raises(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "t.jsonl"))
        sink.close()
        with pytest.raises(RuntimeError):
            sink.write({"kind": "late"})
