"""CLI surface of the observability subsystem: --version, run --trace,
and the trace analysis subcommands."""

import json

import pytest

from repro import __version__
from repro.cli import main
from repro.obs.trace import read_jsonl

RUN_TRACED = [
    "run",
    "--cycles", "20",
    "--warmup", "3",
    "--clients", "2",
    "--broadcast-size", "100",
    "--update-range", "50",
    "--updates", "8",
    "--offset", "20",
    "--read-range", "40",
    "--cache-size", "20",
    "--ops", "4",
    "--think-time", "0.5",
    "--scheme", "inval",
]


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
    assert f"repro {__version__}" in capsys.readouterr().out


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("trace")
    trace = tmp / "run.jsonl"
    code = main(RUN_TRACED + ["--trace", str(trace), "--trace-level", "read"])
    assert code == 0
    return trace


def test_run_trace_writes_jsonl_header_and_manifest(traced_run):
    events = read_jsonl(str(traced_run))
    header = events[0]
    assert header["kind"] == "trace.header"
    assert header["version"] == __version__
    assert header["scheme"] == "inval"
    assert header["level"] == "read"

    manifest = json.loads((traced_run.parent / "run.jsonl.manifest.json").read_text())
    assert manifest["version"] == __version__
    assert manifest["scheme"] == "inval"
    assert manifest["extra"]["trace_level"] == "read"
    assert manifest["params"]["sim"]["num_cycles"] == 20


def test_trace_summarize(traced_run, capsys):
    assert main(["trace", "summarize", str(traced_run)]) == 0
    out = capsys.readouterr().out
    assert "events" in out
    assert "query.begin" in out


def test_trace_aborts(traced_run, capsys):
    assert main(["trace", "aborts", str(traced_run), "--all"]) == 0
    out = capsys.readouterr().out
    assert "root cause" in out


def test_trace_airtime(traced_run, capsys):
    assert main(["trace", "airtime", str(traced_run)]) == 0
    out = capsys.readouterr().out
    assert "control" in out and "data" in out
    assert "20 cycles" in out


def test_trace_timeline(traced_run, capsys):
    assert main(["trace", "timeline", str(traced_run), "--limit", "1"]) == 0
    out = capsys.readouterr().out
    assert "query.begin" in out


def test_trace_timeline_no_match_fails(traced_run, capsys):
    assert main(["trace", "timeline", str(traced_run), "--txn", "nope"]) == 1
