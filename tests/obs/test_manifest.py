"""Unit tests for run manifests."""

from repro.config import ModelParameters
from repro.obs.manifest import (
    RunManifest,
    git_revision,
    load_manifest,
    package_versions,
    write_manifest,
)


def test_git_revision_in_checkout_is_short_hex():
    rev = git_revision()
    # In this repo it must resolve; anywhere else "unknown" is the
    # documented fallback.
    assert rev == "unknown" or all(c in "0123456789abcdef" for c in rev)


def test_package_versions_include_python_and_repro():
    versions = package_versions()
    assert "python" in versions
    assert "repro" in versions


def test_collect_records_params_and_seed():
    params = ModelParameters().with_sim(seed=99).with_faults(slot_loss=0.1)
    manifest = RunManifest.collect(params=params, scheme="inval")
    assert manifest.seed == 99
    assert manifest.scheme == "inval"
    assert manifest.params["sim"]["seed"] == 99
    assert manifest.fault_knobs["slot_loss"] == 0.1
    assert manifest.version == manifest.packages["repro"]


def test_write_and_load_round_trip(tmp_path):
    params = ModelParameters().with_sim(seed=7)
    path = write_manifest(
        str(tmp_path / "runs" / "m.json"),
        params=params,
        seeds=(7, 11),
        extra={"experiment": "unit-test"},
    )
    assert path.exists()
    data = load_manifest(str(path))
    assert data["seed"] == 7
    assert data["seeds"] == [7, 11]
    assert data["extra"]["experiment"] == "unit-test"
    assert data["params"]["sim"]["seed"] == 7
    assert "git_rev" in data and "platform" in data


def test_collect_without_params_is_empty_but_valid():
    manifest = RunManifest.collect()
    assert manifest.params == {}
    assert manifest.seed is None
    assert manifest.fault_knobs == {}
