"""Tests for the trace analyzer, on synthetic and real traces."""

from repro.core import InvalidationOnly
from repro.obs.analyze import TraceAnalyzer
from repro.obs.trace import (
    EV_CYCLE_START,
    EV_QUERY_ABORT,
    EV_QUERY_ACCEPT,
    EV_QUERY_BEGIN,
    EV_QUERY_READ,
    RingBufferSink,
    TraceLevel,
    Tracer,
)
from repro.runtime import Simulation

from tests.helpers import SMALL_WORLD


def _synthetic_events():
    return [
        {"t": 0.0, "kind": "trace.header", "level": "query", "seed": 1},
        {"t": 0.0, "kind": EV_CYCLE_START, "cycle": 1, "control_slots": 1,
         "index_slots": 0, "data_slots": 10, "overflow_slots": 2, "slots": 13},
        {"t": 1.0, "kind": EV_QUERY_BEGIN, "txn": "c0.q0.a1", "client": 0,
         "measured": False},
        {"t": 2.0, "kind": EV_QUERY_READ, "txn": "c0.q0.a1", "client": 0,
         "item": 4},
        {"t": 3.0, "kind": EV_QUERY_ABORT, "txn": "c0.q0.a1", "client": 0,
         "reason": "invalidated", "measured": False,
         "cause": [{"event": "invalidation", "items": [4]}]},
        {"t": 4.0, "kind": EV_CYCLE_START, "cycle": 2, "control_slots": 2,
         "index_slots": 0, "data_slots": 10, "overflow_slots": 2, "slots": 14},
        {"t": 5.0, "kind": EV_QUERY_BEGIN, "txn": "c1.q0.a1", "client": 1,
         "measured": True},
        {"t": 6.0, "kind": EV_QUERY_ACCEPT, "txn": "c1.q0.a1", "client": 1,
         "measured": True},
        {"t": 7.0, "kind": EV_QUERY_BEGIN, "txn": "c1.q1.a1", "client": 1,
         "measured": True},
        {"t": 8.0, "kind": EV_QUERY_ABORT, "txn": "c1.q1.a1", "client": 1,
         "reason": "cycle_detected", "measured": True,
         "cause": [{"event": "invalidation", "items": [2]},
                   {"event": "sgt_cycle", "item": 2}]},
    ]


class TestSyntheticTrace:
    def test_summary(self):
        info = TraceAnalyzer(_synthetic_events()).summary()
        assert info["events"] == 10
        assert info["cycles"] == 2
        assert info["last_cycle"] == 2
        assert info["accepted"] == 1
        assert info["aborted"] == 2
        assert info["aborted_measured"] == 1
        assert info["header"]["seed"] == 1
        assert info["t_max"] == 8.0

    def test_timelines_group_by_txn(self):
        lines = TraceAnalyzer(_synthetic_events()).timelines()
        assert set(lines) == {"c0.q0.a1", "c1.q0.a1", "c1.q1.a1"}
        kinds = [e["kind"] for e in lines["c0.q0.a1"]]
        assert kinds == [EV_QUERY_BEGIN, EV_QUERY_READ, EV_QUERY_ABORT]

    def test_timelines_filter_by_client_and_txn(self):
        analyzer = TraceAnalyzer(_synthetic_events())
        assert set(analyzer.timelines(client=1)) == {"c1.q0.a1", "c1.q1.a1"}
        assert set(analyzer.timelines(txn="c0.q0.a1")) == {"c0.q0.a1"}

    def test_abort_breakdown_measured_vs_all(self):
        analyzer = TraceAnalyzer(_synthetic_events())
        assert analyzer.abort_breakdown() == {"cycle_detected": 1}
        assert analyzer.abort_breakdown(measured_only=False) == {
            "invalidated": 1,
            "cycle_detected": 1,
        }

    def test_abort_causes_use_chain_root(self):
        causes = TraceAnalyzer(_synthetic_events()).abort_causes()
        assert causes == {"invalidation": 2}

    def test_airtime_per_cycle_and_totals(self):
        analyzer = TraceAnalyzer(_synthetic_events())
        per_cycle = analyzer.airtime()
        assert per_cycle[1] == {
            "control": 1, "index": 0, "data": 10, "overflow": 2, "total": 13,
        }
        totals = analyzer.airtime_totals()
        assert totals["total"] == 27
        assert totals["control"] == 3
        assert totals["cycles"] == 2
        assert abs(totals["data_fraction"] - 20 / 27) < 1e-12


class TestRealTrace:
    def test_airtime_matches_simulation_slot_accounting(self):
        """Trace-derived airtime must equal what the server actually flew."""
        sink = RingBufferSink(1 << 16)
        tracer = Tracer(level=TraceLevel.CYCLE, sinks=[sink])
        params = SMALL_WORLD.with_sim(
            num_cycles=20, warmup_cycles=2, num_clients=2, seed=3
        )
        sim = Simulation(
            params, scheme_factory=lambda: InvalidationOnly(), tracer=tracer
        )
        result = sim.run()

        totals = TraceAnalyzer.from_ring(sink).airtime_totals()
        assert totals["cycles"] == result.cycles_completed
        assert totals["total"] == (
            result.mean_cycle_slots * result.cycles_completed
        )
        # Every cycle's segments must add up to its total.
        for row in TraceAnalyzer.from_ring(sink).airtime().values():
            assert (
                row["control"] + row["index"] + row["data"] + row["overflow"]
                == row["total"]
            )

    def test_cycle_level_trace_has_no_query_events(self):
        sink = RingBufferSink(1 << 16)
        tracer = Tracer(level=TraceLevel.CYCLE, sinks=[sink])
        params = SMALL_WORLD.with_sim(
            num_cycles=10, warmup_cycles=1, num_clients=2, seed=3
        )
        Simulation(
            params, scheme_factory=lambda: InvalidationOnly(), tracer=tracer
        ).run()
        kinds = {e["kind"] for e in sink.events}
        assert EV_CYCLE_START in kinds
        assert EV_QUERY_BEGIN not in kinds
        assert EV_QUERY_READ not in kinds
