"""Smoke tests for the hot-path micro-benchmark suite (quick mode)."""

import json

from repro.obs import hotpath


def test_hotpath_quick_payload_and_gate(tmp_path, capsys):
    out = tmp_path / "BENCH_hotpath.json"
    code = hotpath.main(
        ["--quick", "--repeats", "1", "--out", str(out)]
    )
    assert code == 0
    payload = json.loads(out.read_text())
    assert payload["bench"] == "repro.obs.hotpath"
    assert payload["quick"] is True

    suites = payload["suites"]
    assert suites["dispatch"]["events_per_sec"] > 0
    assert suites["dispatch"]["events"] > 0
    for variant in ("flat", "overflow", "clustered"):
        assert suites["programs"][variant]["builds_per_sec"] > 0
    # The builder supports incremental construction, so the suite also
    # measures the full-rebuild control for the non-clustered layouts.
    assert suites["programs"]["flat_full_rebuild"]["builds_per_sec"] > 0
    for count in hotpath.CLIENT_COUNTS:
        stats = suites["clients"][str(count)]
        assert stats["events_per_sec"] > 0
        assert stats["cycles_per_sec"] > 0
    assert suites["profile"]
    assert all("cumtime" in row for row in suites["profile"])
    assert "events/s" in capsys.readouterr().out

    # Self-comparison always passes the regression gate...
    assert hotpath.main(
        [
            "--quick", "--repeats", "1",
            "--out", str(tmp_path / "b.json"),
            "--against", str(out),
        ]
    ) == 0


def test_hotpath_gate_trips_on_impossible_baseline(tmp_path):
    out = tmp_path / "BENCH_hotpath.json"
    assert hotpath.main(["--quick", "--repeats", "1", "--out", str(out)]) == 0
    baseline = json.loads(out.read_text())
    # An absurdly fast baseline makes any run a >20% regression.
    baseline["suites"]["dispatch"]["events_per_sec"] *= 1000
    fast = tmp_path / "impossible.json"
    fast.write_text(json.dumps(baseline))
    code = hotpath.main(
        [
            "--quick", "--repeats", "1",
            "--out", str(tmp_path / "b.json"),
            "--against", str(fast),
        ]
    )
    assert code == 1


def test_hotpath_before_attaches_speedups(tmp_path):
    before = tmp_path / "before.json"
    assert hotpath.main(["--quick", "--repeats", "1", "--out", str(before)]) == 0
    out = tmp_path / "after.json"
    assert hotpath.main(
        [
            "--quick", "--repeats", "1",
            "--out", str(out),
            "--before", str(before),
        ]
    ) == 0
    payload = json.loads(out.read_text())
    assert "before" in payload
    speedups = payload["speedup_vs_before"]
    assert speedups["dispatch_events_per_sec"] > 0
    assert speedups["programs_flat_builds_per_sec"] > 0
