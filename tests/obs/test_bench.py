"""Smoke tests for the benchmark harness (tiny scenario, one repeat)."""

import json

from repro.obs import bench
from repro.obs.analyze import TraceAnalyzer


def test_run_bench_smoke_payload():
    scenario = bench.scenarios()["smoke"]
    payload = bench.run_bench(scenario, repeats=1)
    assert payload["scenario"] == "smoke"
    assert set(payload["modes"]) == set(bench.MODES)
    for mode in bench.MODES:
        stats = payload["modes"][mode]
        assert stats["seconds"] > 0
        assert stats["events"] > 0
        assert stats["queries"] > 0
        assert stats["events_per_sec"] > 0
        assert stats["queries_per_sec"] > 0
    # The ring mode must actually have captured events.
    assert payload["modes"]["ring"]["trace_events"] > 0
    # Disabled mode has a sink attached but never writes to it.
    assert payload["modes"]["disabled"]["trace_events"] == 0
    assert "disabled_overhead" in payload
    assert payload["events_per_sec"] == payload["modes"]["control"]["events_per_sec"]


def test_bench_main_writes_json_and_sample(tmp_path, capsys):
    out = tmp_path / "BENCH_test.json"
    sample = tmp_path / "sample.jsonl"
    code = bench.main(
        [
            "--scenario", "smoke",
            "--repeats", "1",
            "--out", str(out),
            "--trace-sample", str(sample),
        ]
    )
    assert code == 0
    payload = json.loads(out.read_text())
    assert payload["bench"] == "repro.obs.bench"
    assert "git_rev" in payload and "packages" in payload

    analyzer = TraceAnalyzer.from_jsonl(str(sample))
    info = analyzer.summary()
    assert info["header"] is not None
    assert info["header"]["scenario"] == "smoke"
    assert info["cycles"] > 0
    assert "queries/s" in capsys.readouterr().out


def test_max_overhead_gate_fails_when_exceeded(tmp_path):
    # A negative threshold is unsatisfiable, so the gate must trip.
    code = bench.main(
        [
            "--scenario", "smoke",
            "--repeats", "1",
            "--out", str(tmp_path / "b.json"),
            "--max-overhead", "-1.0",
        ]
    )
    assert code == 1
