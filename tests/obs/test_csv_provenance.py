"""CSV provenance: comment rows, sibling manifests, comment-safe parsing."""

from repro.config import DEFAULTS
from repro.experiments.render import load_csv, parse_csv, sweep_to_csv
from repro.experiments.runner import (
    ExperimentProfile,
    PointResult,
    SweepResult,
    write_sweep_csv,
)
from repro.obs.manifest import load_manifest


def _sweep() -> SweepResult:
    sweep = SweepResult(
        name="unit sweep", x_label="x", xs=[1.0, 2.0], y_label="y"
    )
    for x, y in ((1.0, 0.25), (2.0, 0.5)):
        point = PointResult(scheme="inval", committed=3, attempts=4)
        sweep.add_point("inval", point, y)
    return sweep


def test_sweep_to_csv_provenance_rows_round_trip():
    text = sweep_to_csv(_sweep(), provenance={"manifest": "m.json", "seeds": "1 2"})
    assert text.startswith("# manifest: m.json\n# seeds: 1 2\n")
    provenance, headers, rows = parse_csv(text)
    assert provenance == {"manifest": "m.json", "seeds": "1 2"}
    assert headers == ["x", "inval"]
    assert rows == [["1.0", "0.25"], ["2.0", "0.5"]]


def test_parse_csv_without_provenance_is_backward_compatible():
    provenance, headers, rows = parse_csv(sweep_to_csv(_sweep()))
    assert provenance == {}
    assert headers == ["x", "inval"]
    assert len(rows) == 2


def test_write_sweep_csv_emits_manifest_sibling(tmp_path):
    profile = ExperimentProfile(
        num_cycles=10, warmup_cycles=2, num_clients=2, seeds=(3, 7)
    )
    path = write_sweep_csv(
        _sweep(),
        str(tmp_path / "results" / "unit.csv"),
        params=DEFAULTS,
        profile=profile,
        extra={"axis": "loss"},
    )
    provenance, headers, rows = load_csv(str(path))
    assert provenance["manifest"] == "unit.manifest.json"
    assert provenance["seeds"] == "3 7"
    assert headers == ["x", "inval"]

    manifest = load_manifest(str(path.with_suffix(".manifest.json")))
    assert manifest["seeds"] == [3, 7]
    assert manifest["extra"]["experiment"] == "unit sweep"
    assert manifest["extra"]["num_cycles"] == 10
    assert manifest["extra"]["axis"] == "loss"
    assert manifest["params"]["server"]["broadcast_size"] == (
        DEFAULTS.server.broadcast_size
    )
