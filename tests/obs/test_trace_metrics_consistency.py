"""Trace <-> metrics consistency: the abort accounting must agree exactly.

The acceptance contract of the observability subsystem: for every scheme,
seed, and fault setting, the measured-attempt abort breakdown recovered
from the trace equals the registry's ``abort.<reason>`` counters, and
every traced abort carries a machine-readable cause chain whose terminal
entry names the abort reason.
"""

import pytest

from repro.experiments.schemes import scheme_factory
from repro.obs.analyze import TraceAnalyzer
from repro.obs.trace import RingBufferSink, TraceLevel, Tracer
from repro.runtime import Simulation
from repro.stats.names import ABORT_PREFIX

from tests.helpers import SMALL_WORLD

SCHEMES = ("inval", "sgt+cache", "versioned-cache", "multiversion", "mv-caching")
SEEDS = (3, 7, 11, 23, 42)

#: Enough loss to doom some queries without silencing the channel.
FAULTY = dict(slot_loss=0.05, control_loss=0.03, truncation=0.02)


def _run_traced(scheme: str, seed: int, faults: bool):
    params = SMALL_WORLD.with_sim(
        num_cycles=25, warmup_cycles=3, num_clients=3, seed=seed
    )
    if faults:
        params = params.with_faults(**FAULTY)
    sink = RingBufferSink(1 << 18)
    tracer = Tracer(level=TraceLevel.QUERY, sinks=[sink])
    sim = Simulation(
        params, scheme_factory=scheme_factory(scheme), tracer=tracer
    )
    result = sim.run()
    assert sink.dropped == 0, "ring sized too small for an exact comparison"
    return result, TraceAnalyzer.from_ring(sink)


def _metric_abort_counts(result):
    return {
        name.removeprefix(ABORT_PREFIX): counter.value
        for name, counter in result.metrics.counters()
        if name.startswith(ABORT_PREFIX) and counter.value
    }


@pytest.mark.parametrize("faults", [False, True], ids=["clean", "faulty"])
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scheme", SCHEMES)
def test_trace_abort_breakdown_matches_metrics(scheme, seed, faults):
    result, analyzer = _run_traced(scheme, seed, faults)
    assert analyzer.abort_breakdown(measured_only=True) == _metric_abort_counts(
        result
    )


@pytest.mark.parametrize("faults", [False, True], ids=["clean", "faulty"])
@pytest.mark.parametrize("scheme", SCHEMES)
def test_every_abort_has_a_cause_chain(scheme, faults):
    _, analyzer = _run_traced(scheme, SEEDS[0], faults)
    aborts = analyzer.aborts(measured_only=False)
    for event in aborts:
        chain = event["cause"]
        assert chain, f"abort {event['txn']} has an empty cause chain"
        # abort() always appends a terminal entry naming the reason.
        terminal = next(e for e in chain if e.get("event") != "fault_forced")
        reasons = [e.get("reason") for e in chain if "reason" in e]
        assert event["reason"] in reasons, (terminal, event)


def test_faulty_runs_record_fault_forced_roots():
    """With heavy control loss, some cause chains must bottom out at the
    injected fault, and the trace carries the fault events themselves."""
    found_forced = False
    for seed in SEEDS:
        _, analyzer = _run_traced("inval", seed, faults=True)
        kinds = set(analyzer.kind_counts())
        if "fault.report_missed" in kinds:
            for event in analyzer.aborts(measured_only=False):
                if any(
                    c.get("event") == "fault_forced" for c in event["cause"]
                ):
                    found_forced = True
        if found_forced:
            break
    assert found_forced, "no fault-forced abort observed across any seed"


def test_accept_and_abort_attempts_match_registry_totals():
    result, analyzer = _run_traced("inval", 11, faults=False)
    ratio = result.metrics.get_ratio("attempt.committed")
    info = analyzer.summary()
    assert info["accepted_measured"] == ratio.hits
    assert info["accepted_measured"] + info["aborted_measured"] == ratio.total


def _run_resilient_traced(scheme: str, seed: int):
    from repro.core.control import ReportSchedule

    params = (
        SMALL_WORLD.with_sim(
            num_cycles=50, warmup_cycles=3, num_clients=3, seed=seed
        )
        .with_faults(**FAULTY)
        .with_resilience(
            retry_policy="cause-aware",
            checkpoint_interval=5,
            catchup_window=8,
            crash_rate=0.06,
            crash_length=2.0,
            watchdog_attempts=4,
            deadline_cycles=10,
            degrade_after=3,
        )
    )
    sink = RingBufferSink(1 << 18)
    tracer = Tracer(level=TraceLevel.QUERY, sinks=[sink])
    sim = Simulation(
        params,
        scheme_factory=scheme_factory(scheme),
        tracer=tracer,
        report_schedule=ReportSchedule(window=8),
    )
    result = sim.run()
    assert sink.dropped == 0, "ring sized too small for an exact comparison"
    return result, TraceAnalyzer.from_ring(sink)


@pytest.mark.parametrize("seed", SEEDS[:3])
@pytest.mark.parametrize("scheme", ("inval+cache", "sgt+cache", "mv-caching"))
def test_resilience_trace_events_match_counters_exactly(scheme, seed):
    """Every resilience counter increment emits exactly one trace event
    of the matching kind -- the observability contract extended to the
    recovery machinery."""
    from repro.obs.trace import (
        EV_RESILIENCE_CHECKPOINT,
        EV_RESILIENCE_CRASH,
        EV_RESILIENCE_DEADLINE,
        EV_RESILIENCE_DEGRADE,
        EV_RESILIENCE_RESTART,
        EV_RESILIENCE_RESTORE,
        EV_RESILIENCE_RETRY,
        EV_RESILIENCE_WATCHDOG,
    )
    from repro.stats import names as metric_names

    result, analyzer = _run_resilient_traced(scheme, seed)
    kinds = analyzer.kind_counts()

    def metric(name):
        counter = result.metrics.get_counter(name)
        return counter.value if counter else 0

    pairs = [
        (EV_RESILIENCE_RETRY, metric_names.RESILIENCE_RETRIES),
        (EV_RESILIENCE_CRASH, metric_names.RESILIENCE_CRASHES),
        (EV_RESILIENCE_CHECKPOINT, metric_names.RESILIENCE_CHECKPOINT_SAVES),
        (EV_RESILIENCE_RESTORE, metric_names.RESILIENCE_CHECKPOINT_RESTORES),
        (EV_RESILIENCE_DEADLINE, metric_names.RESILIENCE_DEADLINE_ABANDONED),
        (EV_RESILIENCE_WATCHDOG, metric_names.RESILIENCE_WATCHDOG_ESCALATIONS),
        (
            EV_RESILIENCE_DEGRADE,
            metric_names.RESILIENCE_DEGRADATION_TRANSITIONS,
        ),
    ]
    for kind, name in pairs:
        assert kinds.get(kind, 0) == metric(name), (kind, name)
    # The run must actually exercise the machinery to prove anything.
    assert metric(metric_names.RESILIENCE_CRASHES) > 0
    assert metric(metric_names.RESILIENCE_RETRIES) > 0
    # Restarts happen on the first heard cycle after the outage, so an
    # end-of-run crash may never restart -- but never the reverse.
    assert kinds.get(EV_RESILIENCE_RESTART, 0) <= metric(
        metric_names.RESILIENCE_CRASHES
    )
    # Time-to-recover samples only exist after a restart or reconnect.
    ttr = result.metrics.get_sampler(metric_names.TIME_TO_RECOVER_CYCLES)
    if ttr is not None and ttr.count:
        assert kinds.get(EV_RESILIENCE_RESTART, 0) > 0
