"""Shared test utilities.

The correctness oracles live in the library itself
(:mod:`repro.verify`) so that examples and downstream users can run
them; this module re-exports them for the test suite and adds small
transaction-collection helpers.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.core.transaction import ReadOnlyTransaction, TransactionStatus
from repro.verify import (  # noqa: F401 -- re-exported for tests
    check_transaction,
    is_serializable_with_server,
    readset_matches_snapshot,
    snapshot_cycle_of,
    violations,
)


def committed_transactions(clients: Iterable) -> List[ReadOnlyTransaction]:
    """All committed attempts across clients, completion order."""
    result: List[ReadOnlyTransaction] = []
    for client in clients:
        result.extend(
            txn
            for txn in client.completed
            if txn.status is TransactionStatus.COMMITTED
        )
    return result


def aborted_transactions(clients: Iterable) -> List[ReadOnlyTransaction]:
    result: List[ReadOnlyTransaction] = []
    for client in clients:
        result.extend(
            txn
            for txn in client.completed
            if txn.status is TransactionStatus.ABORTED
        )
    return result
