"""Shared test utilities.

The correctness oracles live in the library itself
(:mod:`repro.verify`) so that examples and downstream users can run
them; this module re-exports them for the test suite and adds small
transaction-collection helpers plus the canonical tiny workloads the
integration tests simulate (one definition instead of per-module
copies).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from repro.config import ModelParameters
from repro.core.base import Scheme
from repro.core.transaction import ReadOnlyTransaction, TransactionStatus
from repro.experiments.runner import ExperimentProfile
from repro.runtime import Simulation
from repro.verify import (  # noqa: F401 -- re-exported for tests
    check_transaction,
    is_serializable_with_server,
    readset_matches_snapshot,
    snapshot_cycle_of,
    violations,
)

#: The standard tiny world most integration tests simulate: 100 items,
#: 10 buckets per cycle, moderate update pressure.
SMALL_WORLD = (
    ModelParameters()
    .with_server(
        broadcast_size=100,
        update_range=50,
        offset=10,
        updates_per_cycle=10,
        transactions_per_cycle=5,
        items_per_bucket=10,
        retention=12,
    )
    .with_client(read_range=40, ops_per_query=4, think_time=0.5, cache_size=20)
)

#: A matching one-seed experiment profile for harness tests.
TINY_PROFILE = ExperimentProfile(
    num_cycles=30, warmup_cycles=3, num_clients=3, seeds=(5,)
)


def make_oracle_params(
    seed: int,
    offset: int = 0,
    updates: int = 8,
    ops: int = 5,
    num_cycles: int = 25,
    num_clients: int = 2,
) -> ModelParameters:
    """An even smaller, higher-contention world for oracle replays."""
    return (
        ModelParameters()
        .with_server(
            broadcast_size=60,
            update_range=30,
            offset=offset,
            updates_per_cycle=updates,
            transactions_per_cycle=3,
            items_per_bucket=6,
            retention=10,
        )
        .with_client(
            read_range=30,
            ops_per_query=ops,
            think_time=0.5,
            cache_size=15,
            max_attempts=4,
        )
        .with_sim(
            num_cycles=num_cycles,
            warmup_cycles=2,
            seed=seed,
            num_clients=num_clients,
        )
    )


def make_faulty_sim(
    scheme_factory: Callable[[], Scheme],
    seed: int = 7,
    params: Optional[ModelParameters] = None,
    keep_history: bool = True,
    **fault_kwargs,
) -> Simulation:
    """One small simulation with fault injection switched on.

    ``fault_kwargs`` go straight into :class:`repro.config.FaultParameters`
    (e.g. ``slot_loss=0.1, control_loss=0.05``); with none, the run is
    fault-free -- the differential baseline.  ``params`` defaults to
    :func:`make_oracle_params` at ``seed``, and history is kept so the
    correctness oracle can replay every commit.
    """
    base = params if params is not None else make_oracle_params(seed=seed)
    return Simulation(
        base.with_sim(seed=seed).with_faults(**fault_kwargs),
        scheme_factory=scheme_factory,
        keep_history=keep_history,
    )


def committed_transactions(clients: Iterable) -> List[ReadOnlyTransaction]:
    """All committed attempts across clients, completion order."""
    result: List[ReadOnlyTransaction] = []
    for client in clients:
        result.extend(
            txn
            for txn in client.completed
            if txn.status is TransactionStatus.COMMITTED
        )
    return result


def aborted_transactions(clients: Iterable) -> List[ReadOnlyTransaction]:
    result: List[ReadOnlyTransaction] = []
    for client in clients:
        result.extend(
            txn
            for txn in client.completed
            if txn.status is TransactionStatus.ABORTED
        )
    return result
