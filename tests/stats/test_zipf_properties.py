"""Property tests for the batch-sampling path the cohort engine uses.

The cohort engine's exact-equality argument needs ``sample_batch`` to be
*bit-identical* to sequential draws under a shared RNG state, and the
shared CDF cache to hand every generator the same table the sequential
path used.
"""

import random
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.zipf import (
    OffsetZipfGenerator,
    ZipfGenerator,
    zipf_cdf,
    zipf_pmf,
)

thetas = st.floats(min_value=0.0, max_value=2.5, allow_nan=False)


class TestBatchEqualsSequential:
    @given(
        n=st.integers(min_value=1, max_value=300),
        theta=thetas,
        count=st.integers(min_value=0, max_value=200),
        seed=st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=80, deadline=None)
    def test_zipf_batch_identical_to_sequential(self, n, theta, count, seed):
        sequential = ZipfGenerator(n, theta, rng=random.Random(seed))
        batched = ZipfGenerator(n, theta, rng=random.Random(seed))
        assert [sequential.sample() for _ in range(count)] == (
            batched.sample_batch(count)
        )

    @given(
        n=st.integers(min_value=1, max_value=300),
        theta=thetas,
        offset=st.integers(min_value=0, max_value=500),
        universe=st.integers(min_value=300, max_value=1000),
        count=st.integers(min_value=0, max_value=200),
        seed=st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=80, deadline=None)
    def test_offset_batch_identical_to_sequential(
        self, n, theta, offset, universe, count, seed
    ):
        sequential = OffsetZipfGenerator(
            n, theta, offset=offset, universe=universe, rng=random.Random(seed)
        )
        batched = OffsetZipfGenerator(
            n, theta, offset=offset, universe=universe, rng=random.Random(seed)
        )
        assert [sequential.sample() for _ in range(count)] == (
            batched.sample_batch(count)
        )


class TestRankMonotonicity:
    @given(n=st.integers(min_value=2, max_value=400), theta=thetas)
    @settings(max_examples=80, deadline=None)
    def test_rank_probabilities_monotone(self, n, theta):
        """The probability mass assigned to rank k (the CDF increments)
        never increases with k."""
        cdf = zipf_cdf(n, theta)
        increments = [cdf[0]] + [
            b - a for a, b in zip(cdf, cdf[1:])
        ]
        # Allow for representation error when differencing the prefix
        # sums: each increment equals the pmf term up to accumulation ulps.
        pmf = zipf_pmf(n, theta)
        for inc, p in zip(increments, pmf):
            assert abs(inc - p) < 1e-12
        for a, b in zip(increments, increments[1:]):
            assert b <= a + 1e-12

    def test_empirical_frequencies_monotone_in_rank(self):
        """With real skew and plenty of draws, hot ranks are observed at
        least as often as cold ones (coarse-grained to dodge noise)."""
        gen = ZipfGenerator(50, 0.95, rng=random.Random(1234))
        counts = Counter(gen.sample_batch(40_000))
        buckets = [
            sum(counts.get(item, 0) for item in range(lo + 1, lo + 11))
            for lo in range(0, 50, 10)
        ]
        assert all(a >= b for a, b in zip(buckets, buckets[1:]))
        assert counts.most_common(1)[0][0] == 1


class TestSharedCdfCache:
    def test_generators_share_one_table(self):
        a = ZipfGenerator(123, 0.77)
        b = ZipfGenerator(123, 0.77)
        assert a._cdf is b._cdf

    def test_cdf_is_immutable_and_complete(self):
        cdf = zipf_cdf(64, 0.95)
        assert isinstance(cdf, tuple)
        assert len(cdf) == 64
        assert cdf[-1] == 1.0
        assert all(x <= y for x, y in zip(cdf, cdf[1:]))
