"""Tests for the statistical comparison helpers, cross-checked against
scipy where a reference implementation exists."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from repro.stats.compare import (
    ComparisonResult,
    rates_differ,
    two_proportion_z,
    welch_t,
    wilson_interval,
)


class TestTwoProportionZ:
    def test_clearly_different_rates(self):
        result = two_proportion_z(90, 100, 50, 100)
        assert result.significant()
        assert result.statistic > 0

    def test_identical_rates_not_significant(self):
        result = two_proportion_z(50, 100, 50, 100)
        assert result.statistic == 0.0
        assert result.p_value == pytest.approx(1.0)
        assert not result.significant()

    def test_degenerate_pooled_rate(self):
        assert two_proportion_z(0, 10, 0, 20).p_value == 1.0
        assert two_proportion_z(10, 10, 20, 20).p_value == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            two_proportion_z(1, 0, 1, 2)
        with pytest.raises(ValueError):
            two_proportion_z(5, 3, 1, 2)

    def test_small_samples_not_significant(self):
        assert not two_proportion_z(2, 3, 1, 3).significant()

    @given(
        hits_a=st.integers(0, 200),
        extra_a=st.integers(1, 200),
        hits_b=st.integers(0, 200),
        extra_b=st.integers(1, 200),
    )
    @settings(max_examples=50)
    def test_property_pvalue_in_unit_interval(self, hits_a, extra_a, hits_b, extra_b):
        result = two_proportion_z(
            hits_a, hits_a + extra_a, hits_b, hits_b + extra_b
        )
        assert 0.0 <= result.p_value <= 1.0

    def test_symmetry(self):
        ab = two_proportion_z(30, 100, 60, 100)
        ba = two_proportion_z(60, 100, 30, 100)
        assert ab.p_value == pytest.approx(ba.p_value)
        assert ab.statistic == pytest.approx(-ba.statistic)


class TestWelchT:
    def test_against_scipy(self):
        a = [2.0, 4.0, 4.0, 5.0, 6.0, 7.0, 3.5, 4.2]
        b = [8.0, 9.0, 7.5, 8.5, 10.0, 9.5, 8.2, 9.8]
        import statistics

        ours = welch_t(
            statistics.fmean(a), statistics.variance(a), len(a),
            statistics.fmean(b), statistics.variance(b), len(b),
        )
        reference = scipy_stats.ttest_ind(a, b, equal_var=False)
        assert ours.statistic == pytest.approx(reference.statistic, rel=1e-9)
        # Our p-value uses the normal approximation; at n=8 it is close
        # but not identical to the t distribution's.
        assert ours.p_value == pytest.approx(reference.pvalue, abs=0.02)
        assert ours.significant()

    def test_identical_constant_samples(self):
        assert welch_t(3.0, 0.0, 5, 3.0, 0.0, 5).p_value == 1.0
        assert welch_t(3.0, 0.0, 5, 4.0, 0.0, 5).p_value == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            welch_t(1.0, 1.0, 1, 2.0, 1.0, 5)
        with pytest.raises(ValueError):
            welch_t(1.0, -1.0, 5, 2.0, 1.0, 5)


class TestWilson:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(30, 100)
        assert low < 0.30 < high

    def test_behaves_at_extremes(self):
        low, high = wilson_interval(0, 50)
        assert low == 0.0 and 0.0 < high < 0.2
        low, high = wilson_interval(50, 50)
        assert 0.8 < low < 1.0 and high == 1.0

    def test_narrows_with_samples(self):
        w_small = wilson_interval(5, 10)
        w_large = wilson_interval(500, 1000)
        assert (w_large[1] - w_large[0]) < (w_small[1] - w_small[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 3)

    @given(hits=st.integers(0, 100), extra=st.integers(0, 100))
    @settings(max_examples=50)
    def test_property_valid_interval(self, hits, extra):
        total = hits + extra
        if total == 0:
            return
        low, high = wilson_interval(hits, total)
        assert 0.0 <= low <= hits / total <= high <= 1.0


def test_rates_differ_wrapper():
    assert rates_differ(90, 100, 50, 100)
    assert not rates_differ(51, 100, 50, 100)


def test_comparison_result_alpha():
    result = ComparisonResult(statistic=2.0, p_value=0.04)
    assert result.significant(alpha=0.05)
    assert not result.significant(alpha=0.01)
