"""Tests for the Zipf access-pattern generators."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.zipf import OffsetZipfGenerator, ZipfGenerator, zipf_pmf


class TestZipfPmf:
    def test_sums_to_one(self):
        assert sum(zipf_pmf(100, 0.95)) == pytest.approx(1.0)

    def test_theta_zero_is_uniform(self):
        pmf = zipf_pmf(10, 0.0)
        assert all(p == pytest.approx(0.1) for p in pmf)

    def test_monotonically_decreasing(self):
        pmf = zipf_pmf(50, 0.95)
        assert all(a >= b for a, b in zip(pmf, pmf[1:]))

    def test_larger_theta_more_skewed(self):
        mild = zipf_pmf(100, 0.5)
        harsh = zipf_pmf(100, 1.5)
        assert harsh[0] > mild[0]
        assert harsh[-1] < mild[-1]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            zipf_pmf(0, 1.0)
        with pytest.raises(ValueError):
            zipf_pmf(10, -0.5)

    @given(
        n=st.integers(min_value=1, max_value=500),
        theta=st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
    )
    @settings(max_examples=50)
    def test_property_valid_distribution(self, n, theta):
        pmf = zipf_pmf(n, theta)
        assert len(pmf) == n
        assert sum(pmf) == pytest.approx(1.0)
        assert all(p >= 0 for p in pmf)


class TestZipfGenerator:
    def test_samples_within_range(self, rng):
        gen = ZipfGenerator(50, 0.95, rng=rng)
        for _ in range(500):
            assert 1 <= gen.sample() <= 50

    def test_first_offsets_the_range(self, rng):
        gen = ZipfGenerator(10, 0.95, rng=rng, first=100)
        samples = gen.sample_many(200)
        assert all(100 <= s <= 109 for s in samples)

    def test_hot_items_sampled_more(self, rng):
        gen = ZipfGenerator(100, 0.95, rng=rng)
        counts = Counter(gen.sample_many(5000))
        assert counts[1] > counts.get(50, 0)
        assert counts[1] > counts.get(100, 0)

    def test_probability_matches_pmf(self):
        gen = ZipfGenerator(10, 0.8)
        pmf = zipf_pmf(10, 0.8)
        for rank in range(1, 11):
            assert gen.probability(rank) == pytest.approx(pmf[rank - 1])
        assert gen.probability(0) == 0.0
        assert gen.probability(11) == 0.0

    def test_sample_distinct_returns_unique_items(self, rng):
        gen = ZipfGenerator(30, 0.95, rng=rng)
        items = gen.sample_distinct(20)
        assert len(items) == 20
        assert len(set(items)) == 20

    def test_sample_distinct_full_range(self, rng):
        gen = ZipfGenerator(10, 0.95, rng=rng)
        items = gen.sample_distinct(10)
        assert sorted(items) == list(range(1, 11))

    def test_sample_distinct_beyond_range_rejected(self, rng):
        gen = ZipfGenerator(5, 0.95, rng=rng)
        with pytest.raises(ValueError):
            gen.sample_distinct(6)

    def test_deterministic_with_seed(self):
        a = ZipfGenerator(100, 0.95, rng=random.Random(5)).sample_many(50)
        b = ZipfGenerator(100, 0.95, rng=random.Random(5)).sample_many(50)
        assert a == b

    @given(count=st.integers(min_value=1, max_value=50))
    @settings(max_examples=25)
    def test_property_distinct_sampling(self, count):
        gen = ZipfGenerator(50, 0.95, rng=random.Random(count))
        items = gen.sample_distinct(count)
        assert len(set(items)) == count
        assert all(1 <= item <= 50 for item in items)


class TestOffsetZipfGenerator:
    def test_zero_offset_matches_base(self, rng):
        gen = OffsetZipfGenerator(20, 0.95, offset=0, universe=100, rng=rng)
        assert all(1 <= s <= 20 for s in gen.sample_many(300))

    def test_offset_shifts_support(self, rng):
        gen = OffsetZipfGenerator(20, 0.95, offset=30, universe=100, rng=rng)
        assert all(31 <= s <= 50 for s in gen.sample_many(300))

    def test_offset_wraps_around_universe(self, rng):
        gen = OffsetZipfGenerator(20, 0.95, offset=90, universe=100, rng=rng)
        support = set(gen.support())
        assert support == set(range(91, 101)) | set(range(1, 11))

    def test_probability_follows_rotation(self):
        gen = OffsetZipfGenerator(10, 0.9, offset=5, universe=100)
        # Rank 1 maps to item 6 after rotation.
        assert gen.probability(6) == pytest.approx(zipf_pmf(10, 0.9)[0])
        assert gen.probability(1) == 0.0

    def test_overlap_shrinks_with_offset(self, rng):
        client = OffsetZipfGenerator(100, 0.95, offset=0, universe=1000)
        overlaps = [
            client.overlap(
                OffsetZipfGenerator(100, 0.95, offset=off, universe=1000)
            )
            for off in (0, 25, 50, 100)
        ]
        assert overlaps[0] == pytest.approx(1.0)
        assert all(a >= b for a, b in zip(overlaps, overlaps[1:]))

    def test_invalid_offset_rejected(self):
        with pytest.raises(ValueError):
            OffsetZipfGenerator(10, 0.95, offset=-1)

    def test_universe_smaller_than_range_rejected(self):
        with pytest.raises(ValueError):
            OffsetZipfGenerator(10, 0.95, offset=0, universe=5)

    def test_sample_distinct_applies_shift(self, rng):
        gen = OffsetZipfGenerator(10, 0.95, offset=50, universe=100, rng=rng)
        items = gen.sample_distinct(10)
        assert sorted(items) == list(range(51, 61))
